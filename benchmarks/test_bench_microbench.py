"""Benchmark regenerating the Section 5.2 PacketOut/PacketIn micro-benchmarks."""

from repro.experiments.microbench import MicrobenchParams, render, run_microbench


def test_microbenchmarks(benchmark, full_scale):
    params = MicrobenchParams.paper() if full_scale else MicrobenchParams.quick()
    result = benchmark.pedantic(run_microbench, args=(params,), rounds=1, iterations=1)
    print()
    print(render(result))
    # Rates land near the paper's measurements (the profile is calibrated to
    # them, the benchmark verifies the model actually delivers them).
    assert abs(result.packet_out_rate - 7006) / 7006 < 0.1
    assert abs(result.packet_in_rate - 5531) / 5531 < 0.1
    # Interference: PacketIn processing keeps >= 96 % of the modification
    # rate; a 5:1 PacketOut load costs at most ~15 %.
    assert result.packet_in_interference >= 0.95
    assert result.packet_out_interference >= 0.82
