"""Benchmark regenerating the Section 5.1 barrier-layer overhead comparison."""

from repro.experiments.common import EndToEndParams
from repro.experiments.barrier_layer_perf import render, run_barrier_layer_perf


def test_barrier_layer_overhead(benchmark, full_scale):
    params = EndToEndParams.paper() if full_scale else EndToEndParams.quick()
    result = benchmark.pedantic(run_barrier_layer_perf, args=(params,), rounds=1, iterations=1)
    print()
    print(render(result))
    durations = result.durations()
    results = result.results
    # The barrier layer never drops packets in any configuration.
    assert all(res.dropped_packets == 0 for res in results.values())
    # On a non-reordering switch the layered update is comparable to plain
    # sequential probing.
    assert (durations["barrier layer / 10 mods (in-order switch)"]
            <= durations["sequential (no barrier layer)"] * 1.6)
    # Buffering for a reordering switch costs real time, and per-command
    # barriers cost even more.
    assert (durations["barrier layer / 10 mods (reordering switch)"]
            >= durations["general (no barrier layer)"])
    assert (durations["barrier layer / every mod (reordering switch)"]
            >= durations["barrier layer / 10 mods (reordering switch)"])
