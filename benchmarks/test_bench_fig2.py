"""Benchmark regenerating the Figure 2 firewall-bypass motivation scenario."""

from repro.experiments.fig2_firewall import render, run_fig2


def test_fig2_firewall_bypass(benchmark, full_scale):
    duration = 4.0 if full_scale else 2.5
    result = benchmark.pedantic(run_fig2, kwargs={"duration": duration}, rounds=1, iterations=1)
    print()
    print(render(result))
    # With barrier acknowledgments the transient hole opens; with RUM it cannot.
    assert result.with_barriers.bypassed_packets > 0
    assert result.with_acks.bypassed_packets == 0
    assert result.with_acks.violations["http_packets_at_firewall"] > 0
