"""Benchmark the scenario engine on generated topologies.

The paper's claims generalize beyond the triangle: on a generated fabric,
barrier acknowledgments still break consistency (dropped packets / safety
violations) while data-plane acknowledgments keep updates safe at a bounded
latency cost.  The benchmark runs the generalized path migration and the
firewall rollout on generated topologies with both techniques.
"""

from repro.scenarios import ScenarioParams, run_scenario


def _params(full_scale, **overrides):
    defaults = dict(flow_count=30 if full_scale else 8,
                    warmup=0.2, grace=0.3)
    defaults.update(overrides)
    return ScenarioParams(**defaults)


def test_path_migration_fat_tree(benchmark, full_scale):
    params = _params(full_scale, topology="fat-tree", seed=3)
    results = benchmark.pedantic(
        lambda: {tech: run_scenario("path-migration", tech, params)
                 for tech in ("barrier", "general")},
        rounds=1, iterations=1,
    )
    for technique, result in results.items():
        print(f"{technique}: {result.as_dict()}")
    assert results["barrier"].completed and results["general"].completed
    # The buggy fabric switches break the barrier-based migration but not
    # the probing-based one (generalized Figure 1b/7).
    assert results["barrier"].dropped_packets > 0
    assert results["general"].dropped_packets == 0
    # Truthfulness costs update latency, as in the paper.
    assert (results["general"].mean_update_time
            > results["barrier"].mean_update_time)


def test_firewall_rollout_generated(benchmark, full_scale):
    params = _params(full_scale, topology="linear", scale=2, seed=1)
    results = benchmark.pedantic(
        lambda: {tech: run_scenario("firewall-rollout", tech, params)
                 for tech in ("barrier", "general")},
        rounds=1, iterations=1,
    )
    for technique, result in results.items():
        print(f"{technique}: {result.metrics}")
    # With truthful acknowledgments the firewall hole cannot open.
    assert results["general"].metrics["http_bypassing_firewall"] == 0
    assert results["general"].metrics["bulk_delivered"] > 0
