"""Benchmark regenerating Figure 8 (data-plane vs control-plane activation)."""

from repro.experiments.common import RuleInstallParams
from repro.experiments.fig8_activation_delay import render, run_fig8


def test_fig8_activation_delay(benchmark, full_scale):
    params = (RuleInstallParams.paper_fig8() if full_scale
              else RuleInstallParams.quick(rule_count=200, max_unconfirmed=200))
    result = benchmark.pedantic(run_fig8, args=(params,), rounds=1, iterations=1)
    print()
    print(render(result))
    delays = result.delays()
    # Barriers acknowledge every rule early; probing never does.
    assert delays["barriers (baseline)"].negative_count > 0
    assert delays["sequential"].never_negative
    assert delays["general"].never_negative
    assert delays["timeout"].negative_count == 0
    # The over-optimistic adaptive model is allowed to (and does) go negative.
    assert delays["adaptive 250"].negative_count >= delays["adaptive 200"].negative_count
    # Timeout wastes more time than general probing at the median.
    assert delays["timeout"].summary().median > delays["general"].summary().median
