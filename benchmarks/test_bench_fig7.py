"""Benchmark regenerating Figure 7 (data-plane probing techniques)."""

from repro.experiments.common import EndToEndParams
from repro.experiments.fig7_probing import render, run_fig7


def test_fig7_probing_techniques(benchmark, full_scale):
    params = EndToEndParams.paper() if full_scale else EndToEndParams.quick()
    result = benchmark.pedantic(run_fig7, args=(params,), rounds=1, iterations=1)
    print()
    print(render(result))
    results = result.results
    # Probing never drops packets.
    assert results["sequential"].dropped_packets == 0
    assert results["general"].dropped_packets == 0
    # General probing lands close to the no-wait lower bound and ahead of
    # (or equal to) sequential probing, which pays for extra rule updates.
    assert results["general"].mean_update_time <= results["sequential"].mean_update_time + 0.02
    assert results["no wait"].mean_update_time <= results["general"].mean_update_time + 0.01
