"""Shared configuration of the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a reduced
default scale (set ``REPRO_FULL_SCALE=1`` for the paper's parameters) and
prints the corresponding rows/series so the output can be compared with the
paper side by side.  ``pytest-benchmark`` measures the wall-clock cost of the
underlying simulation runs; the reproduction targets are the printed shapes,
not the timings.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if os.path.abspath(_SRC) not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

import pytest


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Whether the paper-scale parameters were requested."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")
