"""Benchmark regenerating Figure 6 (control-plane-only techniques)."""

from repro.experiments.common import EndToEndParams
from repro.experiments.fig6_control_plane import render, run_fig6


def test_fig6_control_plane_techniques(benchmark, full_scale):
    params = EndToEndParams.paper() if full_scale else EndToEndParams.quick()
    result = benchmark.pedantic(run_fig6, args=(params,), rounds=1, iterations=1)
    print()
    print(render(result))
    results = result.results
    # Barriers drop packets, the 300 ms timeout and adaptive-200 do not.
    assert results["barriers (baseline)"].dropped_packets > 0
    assert results["timeout"].dropped_packets == 0
    assert results["adaptive 200"].dropped_packets == 0
    # The timeout pays for safety with a slower update than the baseline.
    assert (results["timeout"].mean_update_time
            > results["barriers (baseline)"].mean_update_time)
