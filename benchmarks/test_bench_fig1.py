"""Benchmark regenerating Figure 1b (% of flows vs broken time)."""

from repro.experiments.common import EndToEndParams
from repro.experiments.fig1_broken_time import render, run_fig1


def test_fig1_broken_time(benchmark, full_scale):
    params = EndToEndParams.paper() if full_scale else EndToEndParams.quick()
    result = benchmark.pedantic(run_fig1, args=(params,), rounds=1, iterations=1)
    print()
    print(render(result))
    # Shape assertions mirroring the paper's claim.
    distributions = result.distributions()
    assert distributions["OF barriers"][0.004] > distributions["working acks (RUM)"][0.004]
    assert result.with_acks.dropped_packets == 0
    assert result.with_barriers.dropped_packets > 0
