"""Benchmark regenerating Table 1 (usable update rate, sequential probing)."""

from repro.experiments.common import RuleInstallParams
from repro.experiments.table1_update_rate import render, run_table1


def test_table1_usable_update_rate(benchmark, full_scale):
    if full_scale:
        params = RuleInstallParams.paper_table1()
        frequencies = (1, 2, 5, 10, 20)
        windows = (20, 50, 100)
    else:
        params = RuleInstallParams.quick(rule_count=400)
        frequencies = (1, 5, 10, 20)
        windows = (20, 50, 100)
    result = benchmark.pedantic(
        run_table1,
        kwargs={"params": params, "probe_frequencies": frequencies, "window_sizes": windows},
        rounds=1,
        iterations=1,
    )
    print()
    print(render(result))
    # The usable rate grows with the probing batch size while confirmations
    # still arrive fast enough to keep the window full.  Like the paper's own
    # K = 20 column, the largest batch sizes can dip again once the batch is
    # comparable to the window (the switch idles waiting for confirmations),
    # so only sufficiently-funded windows are required to be monotone.
    for window in windows:
        rates = [result.normalised[(batch, window)] for batch in frequencies]
        assert rates[-1] > rates[0]
        for batch, previous, current in zip(frequencies[1:], rates, rates[1:]):
            if window >= 2 * batch:
                assert current >= previous - 0.08
    for batch in frequencies:
        assert result.normalised[(batch, windows[-1])] >= result.normalised[(batch, windows[0])] - 0.05
