"""The run-store CLI: ``python -m repro.store``.

Subcommands (all against ``--store DIR``, default ``runstore/``)::

    ingest PATH...        ingest results files / record JSONs / directories
    query [filters]       list stored runs (technique/scenario/fault/outcome)
    show DIGEST           dump one stored object
    diff A B              differential run/trace analytics between two runs
    verify                re-check every content pin and outcome digest
    gc                    drop dangling index entries / orphaned artifacts

``A`` and ``B`` of ``diff`` are digest prefixes in the store or paths to
full-record ``.json`` files.  A populated store also feeds the campaign
runner's ``--cache`` flag: cells whose spec encoding already has a
digest-verified record are emitted from the store instead of re-simulated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.diff import diff_runs, render_run_diff
from repro.analysis.report import format_table
from repro.store.store import RunStore, StoreError, diff_inputs

#: Columns of the ``query`` table.
QUERY_HEADERS = ["digest", "scenario", "technique", "fault", "recovery",
                 "outcome", "seed", "parts", "artifacts"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Content-addressed run store and differential analytics.",
    )
    parser.add_argument("--store", type=Path, default=Path("runstore"),
                        metavar="DIR", help="store root (default: runstore/)")
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser(
        "ingest", help="ingest results files, record JSONs or directories")
    ingest.add_argument("paths", type=Path, nargs="+",
                        help="campaign .jsonl results, RunRecord .json "
                             "payloads, or directories of either")

    query = commands.add_parser("query", help="list stored runs")
    query.add_argument("--technique", default=None)
    query.add_argument("--scenario", default=None)
    query.add_argument("--fault", default=None,
                       help="fault-plan string ('none' for fault-free runs)")
    query.add_argument("--outcome", default=None,
                       help="ok / incomplete")
    query.add_argument("--format", choices=("text", "json"), default="text")

    show = commands.add_parser("show", help="dump one stored object")
    show.add_argument("digest", help="digest or unique prefix")

    diff = commands.add_parser(
        "diff", help="compare two runs (first divergent lifecycle event, "
                     "activation-gap/drop/recovery deltas)")
    diff.add_argument("left", help="digest prefix or record .json path")
    diff.add_argument("right", help="digest prefix or record .json path")
    diff.add_argument("--format", choices=("text", "json"), default="text")

    commands.add_parser("verify", help="re-check content pins and digests")
    commands.add_parser("gc", help="drop dangling index/artifact entries")
    return parser


def cmd_ingest(store: RunStore, args: argparse.Namespace) -> int:
    for path in args.paths:
        stats = store.ingest(path)
        print(f"{path}: {stats.describe()}")
    return 0


def cmd_query(store: RunStore, args: argparse.Namespace) -> int:
    rows = store.query(technique=args.technique, scenario=args.scenario,
                       fault=args.fault, outcome=args.outcome)
    if args.format == "json":
        print(json.dumps(rows, indent=1, sort_keys=True))
        return 0
    if not rows:
        print(f"(no stored runs match under {store.root})")
        return 0
    table_rows = [[row.get(key) for key in
                   ("digest", "scenario", "technique", "fault", "recovery",
                    "outcome", "seed", "parts", "artifacts")]
                  for row in rows]
    print(format_table(QUERY_HEADERS, table_rows,
                       title=f"Run store — {store.root} ({len(rows)} runs)"))
    return 0


def cmd_show(store: RunStore, args: argparse.Namespace) -> int:
    digest = store.resolve(args.digest)
    print(json.dumps(store.load(digest), indent=1, sort_keys=True))
    return 0


def cmd_diff(store: RunStore, args: argparse.Namespace) -> int:
    left_label, left_payload, left_trace = diff_inputs(store, args.left)
    right_label, right_payload, right_trace = diff_inputs(store, args.right)
    diff = diff_runs(left_payload, right_payload,
                     left_trace=left_trace, right_trace=right_trace,
                     left_label=left_label, right_label=right_label)
    if args.format == "json":
        print(json.dumps(diff.as_dict(), indent=1, sort_keys=True))
    else:
        print(render_run_diff(diff))
    return 0 if diff.identical else 1


def cmd_verify(store: RunStore) -> int:
    problems = store.verify()
    count = len(store.digests())
    if not problems:
        print(f"store ok: {count} objects, all pins verified")
        return 0
    for problem in problems:
        print(problem)
    print(f"store corrupt: {len(problems)} problems across {count} objects")
    return 1


def cmd_gc(store: RunStore) -> int:
    print(store.gc().describe())
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    store = RunStore(args.store)
    try:
        if args.command == "ingest":
            return cmd_ingest(store, args)
        if args.command == "query":
            return cmd_query(store, args)
        if args.command == "show":
            return cmd_show(store, args)
        if args.command == "diff":
            return cmd_diff(store, args)
        if args.command == "verify":
            return cmd_verify(store)
        return cmd_gc(store)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
