"""Content-addressed run store: digest-keyed archive of run outcomes.

``RunStore`` ingests campaign results files, trace shards and standalone
:class:`~repro.session.record.RunRecord` payloads into a digest-keyed
object layout with a spec-encoding index, so a cell whose exact
configuration has already been simulated is never simulated again
(the campaign runner's ``--cache``).  ``python -m repro.store`` is the
CLI (``ingest`` / ``query`` / ``show`` / ``diff`` / ``verify`` / ``gc``);
:mod:`repro.analysis.diff` supplies the differential analytics behind
``diff``.
"""

from repro.store.store import (  # noqa: F401
    GcStats,
    IngestStats,
    RunStore,
    StoreError,
    canonical_json,
    content_sha1,
    diff_inputs,
    file_sha1,
    spec_key,
)

__all__ = [
    "GcStats",
    "IngestStats",
    "RunStore",
    "StoreError",
    "canonical_json",
    "content_sha1",
    "diff_inputs",
    "file_sha1",
    "spec_key",
]
