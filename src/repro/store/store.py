"""The content-addressed run store.

Every simulated run already carries a stable identity — the
:meth:`~repro.session.record.RunRecord.digest` of its outcome — and every
way of *asking* for a run has a canonical encoding (a campaign cell's
``config()``, a session's ``spec``).  The store keys results by the former
and indexes them by the latter:

* ``objects/<digest[:2]>/<digest>.json`` — one object per distinct outcome,
  holding the full :meth:`~repro.session.record.RunRecord.as_dict` payload
  and/or the flat campaign JSONL record that produced it, each pinned by a
  content SHA-1;
* ``index/specs.json`` — spec encoding → digest.  A campaign cell's index
  key is literally its ``cell_id`` (both are the SHA-1 of the same canonical
  config JSON), which is what lets the campaign runner answer "has this
  exact cell ever been simulated?" with one dict lookup (``--cache``);
* ``artifacts/<digest>/<name>`` — attached shards (Chrome traces), pinned
  by file-content SHA-1.

``verify`` recomputes every pin: content hashes for integrity, and — for
full record payloads — the semantic digest through
:func:`repro.session.record.outcome_digest`, so a store object whose bytes
rotted *or* whose digest discipline drifted is caught the same way.

Nothing here reads wall time or ambient entropy: store contents are a pure
function of what was ingested, so two hosts ingesting the same results
files build byte-identical stores.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.campaign.runner import FINAL_STATUSES, load_records
from repro.session.record import RECORD_SCHEMA, outcome_digest

#: Store layout version stamped into every object.
STORE_SCHEMA = 1

OBJECTS_DIR = "objects"
INDEX_DIR = "index"
ARTIFACTS_DIR = "artifacts"
SPEC_INDEX = "specs.json"

#: Files a directory ingest skips outright: heartbeat telemetry and the
#: run manifest are about *how* a campaign ran, not what it computed.
_SKIPPED_NAMES = ("campaign.json",)
_SKIPPED_SUFFIXES = (".heartbeat.jsonl",)


def canonical_json(payload: object) -> str:
    """The one canonical JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)


def content_sha1(payload: object) -> str:
    """16-hex SHA-1 of the canonical JSON of ``payload`` (integrity pin)."""
    return hashlib.sha1(canonical_json(payload).encode("utf-8")).hexdigest()[:16]


def file_sha1(path: Path) -> str:
    """16-hex SHA-1 of a file's bytes (artifact integrity pin)."""
    return hashlib.sha1(Path(path).read_bytes()).hexdigest()[:16]


def spec_key(encoding: Dict[str, object]) -> str:
    """The index key of a spec encoding.

    For a campaign cell config this reproduces
    :attr:`repro.campaign.grid.CampaignCell.cell_id` exactly — same
    canonical JSON, same SHA-1 truncation — so results files and the store
    agree on cell identity without either importing the other's hashing.
    """
    return hashlib.sha1(
        canonical_json(encoding).encode("utf-8")).hexdigest()[:16]


@dataclass
class IngestStats:
    """What one ingest pass did."""

    files: int = 0
    records: int = 0
    summaries: int = 0
    artifacts: int = 0
    indexed: int = 0
    skipped: int = 0

    def merge(self, other: "IngestStats") -> None:
        self.files += other.files
        self.records += other.records
        self.summaries += other.summaries
        self.artifacts += other.artifacts
        self.indexed += other.indexed
        self.skipped += other.skipped

    def describe(self) -> str:
        return (f"{self.files} files: {self.records} records, "
                f"{self.summaries} campaign cells, {self.artifacts} artifacts, "
                f"{self.indexed} index entries, {self.skipped} skipped")


@dataclass
class GcStats:
    """What one gc pass removed."""

    dangling_index: int = 0
    orphan_artifacts: int = 0

    def describe(self) -> str:
        return (f"removed {self.dangling_index} dangling index entries, "
                f"{self.orphan_artifacts} orphaned artifact trees")


def _meta_from_summary(record: Dict[str, object]) -> Dict[str, object]:
    config = record.get("config") or {}
    return {
        "kind": record.get("kind", "scenario"),
        "scenario": record.get("scenario") or config.get("scenario"),
        "technique": record.get("technique") or config.get("technique"),
        "fault": str(config.get("fault") or "none"),
        "recovery": str(config.get("recovery") or "off"),
        "outcome": record.get("status"),
        "seed": record.get("seed", config.get("seed")),
        "scale": record.get("scale", config.get("scale")),
    }


def _meta_from_record(payload: Dict[str, object]) -> Dict[str, object]:
    spec = payload.get("spec") or {}
    knobs = spec.get("knobs") or {}
    return {
        "kind": payload.get("kind"),
        "scenario": payload.get("scenario"),
        "technique": payload.get("technique"),
        "fault": str(spec.get("faults") or "none"),
        "recovery": str(knobs.get("recovery") or "off"),
        "outcome": "ok" if payload.get("completed") else "incomplete",
        "seed": payload.get("seed"),
        "scale": payload.get("scale"),
    }


class StoreError(ValueError):
    """A lookup or verification problem surfaced to the CLI."""


class RunStore:
    """A content-addressed archive of run outcomes on one directory."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.objects = self.root / OBJECTS_DIR
        self.index_dir = self.root / INDEX_DIR
        self.artifacts = self.root / ARTIFACTS_DIR
        self._index: Optional[Dict[str, str]] = None

    # -- layout ---------------------------------------------------------------
    def object_path(self, digest: str) -> Path:
        return self.objects / digest[:2] / f"{digest}.json"

    def artifact_dir(self, digest: str) -> Path:
        return self.artifacts / digest

    def _load_index(self) -> Dict[str, str]:
        if self._index is None:
            path = self.index_dir / SPEC_INDEX
            if path.exists():
                self._index = dict(json.loads(path.read_text(encoding="utf-8")))
            else:
                self._index = {}
        return self._index

    def _save_index(self) -> None:
        if self._index is None:
            return
        self.index_dir.mkdir(parents=True, exist_ok=True)
        path = self.index_dir / SPEC_INDEX
        ordered = {key: self._index[key] for key in sorted(self._index)}
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(ordered, indent=1, sort_keys=True) + "\n",
                       encoding="utf-8")
        tmp.replace(path)

    # -- objects --------------------------------------------------------------
    def load(self, digest: str) -> Optional[Dict[str, object]]:
        path = self.object_path(digest)
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    def _write(self, obj: Dict[str, object]) -> None:
        # Insertion order is deliberately preserved (no sort_keys): stored
        # summaries must re-serialize byte-identically to the campaign line
        # they came from, or the --cache re-emission path would reorder keys.
        path = self.object_path(str(obj["digest"]))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(obj, indent=1) + "\n", encoding="utf-8")

    def digests(self) -> List[str]:
        """Every stored digest, sorted."""
        if not self.objects.is_dir():
            return []
        return sorted(path.stem for path in self.objects.glob("*/*.json"))

    def iter_objects(self) -> Iterator[Dict[str, object]]:
        for digest in self.digests():
            obj = self.load(digest)
            if obj is not None:
                yield obj

    def resolve(self, prefix: str) -> str:
        """The unique stored digest starting with ``prefix``."""
        matches = [digest for digest in self.digests()
                   if digest.startswith(prefix)]
        if not matches:
            raise StoreError(f"no stored run matches digest {prefix!r}")
        if len(matches) > 1:
            raise StoreError(
                f"digest prefix {prefix!r} is ambiguous: {matches}")
        return matches[0]

    # -- writes ---------------------------------------------------------------
    def put_record(self, payload: Dict[str, object]) -> str:
        """Store a full :meth:`RunRecord.as_dict` payload; returns its digest.

        The digest is *recomputed* here — never trusted from the caller — so
        every full record in the store is digest-verified by construction.
        """
        digest = outcome_digest(payload)
        obj = self.load(digest) or {
            "schema": STORE_SCHEMA, "digest": digest,
            "artifacts": {}, "sha1": {},
        }
        obj["record"] = payload
        obj["sha1"]["record"] = content_sha1(payload)
        meta = dict(obj.get("meta") or {})
        # The summary's meta wins where both exist (it knows the campaign
        # status and fault label verbatim); fill the gaps from the payload.
        fresh = _meta_from_record(payload)
        for key, value in fresh.items():
            meta.setdefault(key, value)
        obj["meta"] = meta
        self._write(obj)
        spec = payload.get("spec") or {}
        if spec:
            self.index_encoding(spec, digest)
        return digest

    def put_summary(self, record: Dict[str, object]) -> Optional[str]:
        """Store one campaign JSONL record (a flat summary line).

        Returns the digest, or ``None`` when the record has no digest to key
        on (errored cells never produced an outcome).  The record is stored
        *verbatim* — key order included — because the ``--cache`` path must
        be able to re-emit it byte-identically.
        """
        digest = record.get("digest")
        if not digest or record.get("status") not in FINAL_STATUSES:
            return None
        digest = str(digest)
        obj = self.load(digest) or {
            "schema": STORE_SCHEMA, "digest": digest,
            "artifacts": {}, "sha1": {},
        }
        obj["summary"] = record
        obj["sha1"]["summary"] = content_sha1(record)
        meta = _meta_from_summary(record)
        for key, value in (obj.get("meta") or {}).items():
            meta.setdefault(key, value)
        obj["meta"] = meta
        self._write(obj)
        config = record.get("config") or {}
        if config:
            self.index_encoding(config, digest)
        session = record.get("session") or {}
        if session:
            self.index_encoding(session, digest)
        return digest

    def attach(self, digest: str, name: str, source: Path) -> str:
        """Attach a file (trace shard, report) to a stored run."""
        obj = self.load(digest)
        if obj is None:
            raise StoreError(f"cannot attach to unknown digest {digest!r}")
        source = Path(source)
        target_dir = self.artifact_dir(digest)
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / name
        target.write_bytes(source.read_bytes())
        pin = file_sha1(target)
        obj["artifacts"][name] = pin
        self._write(obj)
        return pin

    def index_encoding(self, encoding: Dict[str, object], digest: str) -> str:
        """Map a spec encoding to a digest; returns the index key."""
        key = spec_key(encoding)
        index = self._load_index()
        index[key] = digest
        self._save_index()
        return key

    # -- reads ----------------------------------------------------------------
    def lookup(self, encoding: Dict[str, object]) -> Optional[str]:
        """The digest a spec encoding maps to, if any."""
        return self._load_index().get(spec_key(encoding))

    def lookup_key(self, key: str) -> Optional[str]:
        """The digest an index key (e.g. a ``cell_id``) maps to, if any."""
        return self._load_index().get(key)

    def cached_record(self, cell_id: str) -> Optional[Dict[str, object]]:
        """The digest-verified campaign record for a cell, if stored.

        Returns ``None`` unless the stored summary's content pin still
        matches, its own ``digest`` field agrees with the object key, and —
        when a full record payload is also stored — that payload still
        recomputes to the same digest.  A cache hit is therefore always a
        verified one; corruption degrades to a re-simulation, never to a
        silently wrong result.
        """
        digest = self.lookup_key(cell_id)
        if digest is None:
            return None
        obj = self.load(digest)
        if obj is None:
            return None
        summary = obj.get("summary")
        if not summary:
            return None
        pins = obj.get("sha1") or {}
        if content_sha1(summary) != pins.get("summary"):
            return None
        if str(summary.get("digest")) != digest:
            return None
        record = obj.get("record")
        if record is not None and outcome_digest(record) != digest:
            return None
        return json.loads(json.dumps(summary))

    def artifact_path(self, digest: str, name: str) -> Optional[Path]:
        path = self.artifact_dir(digest) / name
        return path if path.exists() else None

    def query(
        self,
        technique: Optional[str] = None,
        scenario: Optional[str] = None,
        fault: Optional[str] = None,
        outcome: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Flat rows of every stored run matching the filters."""
        rows: List[Dict[str, object]] = []
        for obj in self.iter_objects():
            meta = obj.get("meta") or {}
            if technique is not None and meta.get("technique") != technique:
                continue
            if scenario is not None and meta.get("scenario") != scenario:
                continue
            if fault is not None and meta.get("fault") != fault:
                continue
            if outcome is not None and meta.get("outcome") != outcome:
                continue
            rows.append({
                "digest": obj["digest"],
                "parts": "+".join(part for part in ("record", "summary")
                                  if obj.get(part)),
                "artifacts": len(obj.get("artifacts") or {}),
                **meta,
            })
        return rows

    # -- maintenance ----------------------------------------------------------
    def verify(self) -> List[str]:
        """Every integrity or digest-discipline problem, as one line each."""
        problems: List[str] = []
        known = set(self.digests())
        for obj in self.iter_objects():
            digest = str(obj["digest"])
            pins = obj.get("sha1") or {}
            for part in ("record", "summary"):
                payload = obj.get(part)
                if payload is None:
                    continue
                pin = pins.get(part)
                actual = content_sha1(payload)
                if actual != pin:
                    problems.append(
                        f"{digest}: {part} content hash {actual} != stored "
                        f"pin {pin}")
            record = obj.get("record")
            if record is not None:
                if record.get("schema") != RECORD_SCHEMA:
                    problems.append(
                        f"{digest}: record schema {record.get('schema')!r} "
                        f"is not {RECORD_SCHEMA}")
                recomputed = outcome_digest(record)
                if recomputed != digest:
                    problems.append(
                        f"{digest}: record payload recomputes to digest "
                        f"{recomputed} (digest discipline drifted)")
            summary = obj.get("summary")
            if summary is not None and str(summary.get("digest")) != digest:
                problems.append(
                    f"{digest}: summary claims digest "
                    f"{summary.get('digest')!r}")
            for name, pin in sorted((obj.get("artifacts") or {}).items()):
                path = self.artifact_dir(digest) / name
                if not path.exists():
                    problems.append(f"{digest}: artifact {name} is missing")
                elif file_sha1(path) != pin:
                    problems.append(
                        f"{digest}: artifact {name} content hash != pin {pin}")
        for key, digest in sorted(self._load_index().items()):
            if digest not in known:
                problems.append(
                    f"index: spec {key} -> {digest} points at no object")
        return problems

    def gc(self) -> GcStats:
        """Drop index entries and artifact trees with no backing object."""
        stats = GcStats()
        known = set(self.digests())
        index = self._load_index()
        dangling = sorted(key for key, digest in index.items()
                          if digest not in known)
        for key in dangling:
            del index[key]
            stats.dangling_index += 1
        if dangling:
            self._save_index()
        if self.artifacts.is_dir():
            for tree in sorted(self.artifacts.iterdir()):
                if tree.is_dir() and tree.name not in known:
                    for child in sorted(tree.iterdir()):
                        child.unlink()
                    tree.rmdir()
                    stats.orphan_artifacts += 1
        return stats

    # -- ingest ---------------------------------------------------------------
    def ingest(self, path: Path) -> IngestStats:
        """Ingest a results file, record file, or directory of either."""
        path = Path(path)
        if path.is_dir():
            stats = IngestStats()
            for child in sorted(path.rglob("*.jsonl")):
                if not self._skippable(child):
                    stats.merge(self._ingest_results(child))
            for child in sorted(path.rglob("*.json")):
                stats.merge(self._ingest_json(child))
            return stats
        if path.suffix == ".jsonl":
            return self._ingest_results(path)
        if path.suffix == ".json":
            return self._ingest_json(path)
        raise StoreError(f"cannot ingest {path}: not a .jsonl/.json file "
                         "or directory")

    @staticmethod
    def _skippable(path: Path) -> bool:
        if path.name in _SKIPPED_NAMES:
            return True
        return any(path.name.endswith(suffix) for suffix in _SKIPPED_SUFFIXES)

    def _ingest_results(self, path: Path) -> IngestStats:
        """One campaign JSONL results file: one summary object per cell."""
        stats = IngestStats(files=1)
        for record in load_records(path):
            digest = self.put_summary(record)
            if digest is None:
                stats.skipped += 1
                continue
            stats.summaries += 1
            stats.indexed += 1 if record.get("config") else 0
            stats.indexed += 1 if record.get("session") else 0
            trace_path = record.get("trace_path")
            if trace_path and Path(str(trace_path)).exists():
                shard = Path(str(trace_path))
                self.attach(digest, shard.name, shard)
                stats.artifacts += 1
        return stats

    def _ingest_json(self, path: Path) -> IngestStats:
        """One ``.json`` file: a full RunRecord payload, or skipped.

        Chrome-trace shards (``traceEvents``) are skipped here — they enter
        the store as attachments of the record that produced them.
        """
        stats = IngestStats(files=1)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            stats.skipped += 1
            return stats
        if not isinstance(payload, dict) or "traceEvents" in payload:
            stats.skipped += 1
            return stats
        if "schema" not in payload or "kind" not in payload:
            stats.skipped += 1
            return stats
        self.put_record(payload)
        stats.records += 1
        stats.indexed += 1 if payload.get("spec") else 0
        return stats


def diff_inputs(store: RunStore,
                ref: str) -> Tuple[str, Dict[str, object], Optional[Dict]]:
    """Resolve a CLI diff operand to ``(label, flat payload, trace dict)``.

    Accepts a path to a full-record ``.json`` file, or a digest prefix in
    the store.  Stored runs prefer their full payload (which carries the
    trace inline); summary-only objects fall back to an attached
    Chrome-trace shard when one exists.
    """
    as_path = Path(ref)
    if as_path.suffix == ".json" and as_path.exists():
        payload = json.loads(as_path.read_text(encoding="utf-8"))
        return as_path.name, payload, payload.get("trace")
    digest = store.resolve(ref)
    obj = store.load(digest)
    assert obj is not None
    record = obj.get("record")
    if record is not None:
        return digest, record, record.get("trace")
    summary = obj.get("summary")
    if summary is None:
        raise StoreError(f"{digest} holds neither a record nor a summary")
    trace = None
    for name in sorted(obj.get("artifacts") or {}):
        path = store.artifact_path(digest, name)
        if path is None or not name.endswith(".json"):
            continue
        shard = json.loads(path.read_text(encoding="utf-8"))
        if "traceEvents" in shard:
            from repro.obs.export import trace_from_chrome

            trace = trace_from_chrome(shard).as_dict()
            break
    return digest, summary, trace
