"""RUM reproduction: Reliable FIB Update Acknowledgments in SDN (CoNEXT 2014).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel,
* :mod:`repro.packet`, :mod:`repro.openflow` — packets and the OpenFlow
  substrate (matches, messages, flow tables, control channels),
* :mod:`repro.switches` — switch models with separate control and data
  planes, including the buggy hardware switch the paper measures,
* :mod:`repro.net` — topologies, links, hosts, traffic and delivery
  monitoring,
* :mod:`repro.controller` — an SDN controller with dependency-ordered,
  consistent network updates,
* :mod:`repro.probing` — probe-packet generation and switch-value colouring,
* :mod:`repro.core` — **RUM itself**: the transparent proxy, the five
  acknowledgment techniques and the reliable barrier layer,
* :mod:`repro.analysis`, :mod:`repro.experiments` — measurement utilities and
  one experiment module per figure/table of the paper.

Quickstart::

    from repro.sim import Simulator
    from repro.net import Network, triangle_topology
    from repro.core import RumLayer, config_for_technique
    from repro.controller import Controller

    sim = Simulator()
    network = Network(sim, triangle_topology())
    rum = RumLayer(sim, config_for_technique("general"))
    rum.attach_network(network)
    controller = Controller(sim)
    for name in network.switch_names():
        controller.connect_switch(name, rum.controller_endpoint(name))
    rum.prepare(); network.start(); rum.start()
"""

from repro.core import RumConfig, RumLayer, ReliableBarrierLayer, config_for_technique
from repro.controller import Controller
from repro.net import Network, triangle_topology
from repro.session import RunRecord, SessionSpec, run_session
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Controller",
    "Network",
    "ReliableBarrierLayer",
    "RumConfig",
    "RumLayer",
    "RunRecord",
    "SessionSpec",
    "Simulator",
    "config_for_technique",
    "run_session",
    "triangle_topology",
    "__version__",
]
