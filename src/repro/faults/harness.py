"""Attachment machinery: how armed fault models hook into a built network.

One harness per (switch, layer):

* :class:`DataPlaneFaultHarness` redirects a switch's control→data plane
  hook through a chain of :class:`~repro.faults.base.DataPlaneFault` models
  (the mechanism of the historical ``switches.faults.FaultInjector``).
* :class:`ControlChannelHarness` installs an interceptor on the switch's
  control :class:`~repro.openflow.connection.Connection` and offers the
  faults a :class:`ChannelHook` to forward, delay or fabricate messages.

Lifecycle faults need no harness — they schedule timed actions directly
against the :class:`~repro.switches.base.Switch`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.faults.base import ControlChannelFault, DataPlaneFault
from repro.openflow.connection import Connection
from repro.openflow.messages import FlowMod, OFMessage
from repro.sim.rng import SeededRandom

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.switches, which re-exports the legacy fault names)
    from repro.switches.base import Switch

#: Connection side bound to the switch agent (messages *from* this side are
#: switch→controller: barrier replies, PacketIns, errors).
SWITCH_SIDE = 0
#: Connection side a controller or RUM proxy claims (messages *from* this
#: side are controller→switch: FlowMods, barrier requests, PacketOuts).
CONTROLLER_SIDE = 1


class DataPlaneFaultHarness:
    """Installs data-plane faults at a switch's control→data plane boundary."""

    def __init__(self, switch: "Switch", faults: List[DataPlaneFault]) -> None:
        self.switch = switch
        self.faults = list(faults)
        # Capture whatever hook is installed *now* — the raw data-plane
        # apply, or another harness (fig2's legacy FaultInjector): harnesses
        # chain instead of silently disabling each other.
        self._original_apply = switch.controlplane._apply_to_dataplane
        switch.controlplane._apply_to_dataplane = self._apply_with_faults

    def _apply_with_faults(self, flowmod: FlowMod, now: float) -> None:
        original_apply = self._original_apply
        switch = self.switch
        epoch = switch.crash_epoch

        def apply_unless_crash_intervened(flowmod: FlowMod, now: float) -> None:
            # Fault callbacks (a delay spike firing, a reorder buffer
            # flushing) outlive the moment they intercepted; if the switch
            # crashed since — even if it has already restarted — the pending
            # modification died with it and must not reach the wiped table.
            if switch.crashed or switch.crash_epoch != epoch:
                return
            original_apply(flowmod, now)

        for fault in self.faults:
            if fault.intercept(flowmod, apply_unless_crash_intervened):
                return
        original_apply(flowmod, now)

    def remove(self) -> None:
        """Restore the unfaulted behaviour."""
        self.switch.controlplane._apply_to_dataplane = self._original_apply


class FaultInjector(DataPlaneFaultHarness):
    """Deprecated pre-registry API: arm and install faults in one step.

    Kept for existing callers (``switches.faults.FaultInjector``); new code
    should describe faults with a :class:`~repro.faults.plan.FaultPlan` and
    let :func:`~repro.faults.plan.arm_fault_plan` do the wiring.
    """

    def __init__(self, switch: "Switch", faults: List[DataPlaneFault],
                 seed: int = 7) -> None:
        self.rng = SeededRandom(seed)
        for fault in faults:
            fault.arm(switch.sim, self.rng.fork(type(fault).__name__))
        super().__init__(switch, faults)

    def injected_counts(self) -> List[Tuple[str, int]]:
        """``(fault name, activation count)`` pairs for reporting."""
        return [(type(fault).__name__, sum(fault.counters().values()))
                for fault in self.faults]


class ChannelHook:
    """What a control-channel fault may do with a message it intercepted.

    ``forward`` hands the message to the *next* fault of the harness chain —
    not to the wire — so ``+``-composed faults all see it (jitter delaying a
    barrier reply does not shield it from a later ack-loss).  Fabricated
    messages (premature acks, duplicates) enter the chain at the same point.
    Only past the last fault does anything actually get scheduled, with the
    extra latencies accumulated along the way; per-direction delivery stays
    FIFO (extra latency inflates the lag but cannot make a message overtake
    one sent earlier — TCP semantics).
    """

    def __init__(self, harness: "ControlChannelHarness", next_index: int,
                 extra_latency: float = 0.0) -> None:
        self.harness = harness
        self.sim = harness.connection.sim
        self._next_index = next_index
        self._extra_latency = extra_latency

    def forward(self, from_side: int, message: OFMessage,
                extra_latency: float = 0.0) -> None:
        """Pass ``message`` on, optionally adding ``extra_latency``."""
        self.harness._deliver_from(self._next_index, from_side, message,
                                   self._extra_latency + extra_latency)

    def send_to_controller(self, message: OFMessage) -> None:
        """Fabricate a message as if the switch had sent it (premature acks)."""
        self.harness._deliver_from(self._next_index, SWITCH_SIDE, message,
                                   self._extra_latency)

    def send_to_switch(self, message: OFMessage) -> None:
        """Fabricate a message towards the switch agent."""
        self.harness._deliver_from(self._next_index, CONTROLLER_SIDE, message,
                                   self._extra_latency)


class ControlChannelHarness:
    """Installs control-channel faults as a connection interceptor chain."""

    def __init__(self, connection: Connection,
                 faults: List[ControlChannelFault]) -> None:
        self.connection = connection
        self.faults = list(faults)
        connection.install_intercept(self._intercept)

    def _intercept(self, from_side: int, message: OFMessage) -> bool:
        self._deliver_from(0, from_side, message, 0.0)
        # The harness always takes over delivery: a message no fault touched
        # reaches the wire through the chain tail with zero extra latency,
        # identical to normal delivery.
        return True

    def _deliver_from(self, index: int, from_side: int, message: OFMessage,
                      extra_latency: float) -> None:
        """Run ``message`` through ``faults[index:]``, then hit the wire."""
        while index < len(self.faults):
            fault = self.faults[index]
            index += 1
            if fault.on_transmit(ChannelHook(self, index, extra_latency),
                                 from_side, message):
                return  # dropped, or re-entered the chain via the hook
        self.connection._schedule_delivery(from_side, message, extra_latency)

    def remove(self) -> None:
        """Restore the lossless, fixed-latency channel."""
        self.connection.remove_intercept()
