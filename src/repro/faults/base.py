"""Base classes of the fault-model hierarchy.

The paper's misbehaviours live at three distinct layers of a switch, and the
fault subsystem mirrors that split with one base class per layer:

* :class:`DataPlaneFault` — sits at the control→data plane boundary (the
  ``apply_to_dataplane`` hook) and can delay, drop or reorder the moment a
  rule becomes visible to packets while the control plane believes it is
  already active.
* :class:`ControlChannelFault` — sits on the OpenFlow control connection
  (:class:`~repro.openflow.connection.Connection`) and can lose, duplicate,
  delay or fabricate messages: lost acks, duplicated acks, premature acks,
  latency jitter, disconnects.
* :class:`LifecycleFault` — acts on the switch as a whole
  (:meth:`~repro.switches.base.Switch.crash`/``restore``): crash/restart
  with a flow-table wipe.

Every concrete fault is registered with
:func:`~repro.faults.registry.register_fault` and instantiated from a
:class:`~repro.faults.plan.FaultPlan`, one instance per target switch, each
with its own deterministically forked :class:`~repro.sim.rng.SeededRandom`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.obs import tracer as obs_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.sim.rng import SeededRandom
    from repro.switches.base import Switch

#: The three layers a fault model can attach to.
DATA_PLANE = "dataplane"
CONTROL_CHANNEL = "control-channel"
LIFECYCLE = "lifecycle"

FAULT_LAYERS = (DATA_PLANE, CONTROL_CHANNEL, LIFECYCLE)


class FaultModel:
    """One seeded, parameterised fault model instance.

    Subclasses declare ``name`` (the registry key), ``layer`` (one of
    :data:`FAULT_LAYERS`) and ``param_defaults`` (every accepted parameter
    with its default value); the constructor rejects unknown parameters so a
    typo in a :class:`~repro.faults.plan.FaultSpec` fails loudly instead of
    silently running the fault-free behaviour.
    """

    #: Registry key; concrete subclasses must set it.
    name: str = ""
    #: Which layer the fault attaches to (one of :data:`FAULT_LAYERS`).
    layer: str = ""
    #: Accepted parameters and their defaults.
    param_defaults: Mapping[str, object] = {}

    def __init__(self, **params: object) -> None:
        unknown = sorted(set(params) - set(self.param_defaults))
        if unknown:
            raise ValueError(
                f"fault {self.name or type(self).__name__!r} does not accept "
                f"parameter(s) {unknown}; accepted: {sorted(self.param_defaults)}"
            )
        self.params: Dict[str, object] = {**self.param_defaults, **params}
        for key, value in self.params.items():
            setattr(self, key, value)
        self.events: Dict[str, int] = {}
        self.sim: Optional["Simulator"] = None
        self.rng: Optional["SeededRandom"] = None
        self.validate()
        self.setup()

    # -- subclass hooks -------------------------------------------------------
    def validate(self) -> None:
        """Reject out-of-range parameter values (raise ``ValueError``)."""

    def setup(self) -> None:
        """Initialise per-instance state (buffers, pending sets, ...)."""

    # -- lifecycle -------------------------------------------------------------
    def arm(self, sim: "Simulator", rng: "SeededRandom") -> None:
        """Bind to the simulation before first use."""
        self.sim = sim
        self.rng = rng

    # -- counters ---------------------------------------------------------------
    def count(self, event: str, n: int = 1) -> None:
        """Record ``n`` occurrences of ``event`` (reported into the record)."""
        # Lazy access: legacy subclasses (pre-registry ``Fault`` API) may
        # override ``__init__`` without calling ``super().__init__``.
        events = getattr(self, "events", None)
        if events is None:
            events = self.events = {}
        events[event] = events.get(event, 0) + n
        tr = obs_tracer.TRACER
        if tr.active:
            # Every fault model funnels its activations through here, which
            # makes this the one hook the timeline's fault overlay needs.
            sim = getattr(self, "sim", None)
            tr.fault(sim.now if sim is not None else 0.0,
                     switch=getattr(self, "_trace_target", ""),
                     detail=f"{self.name}.{event}")
            tr.count(f"fault.{self.name}.{event}", n)

    def counters(self) -> Dict[str, int]:
        """``event name -> occurrence count`` since arming."""
        return dict(getattr(self, "events", None) or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        params = ", ".join(f"{k}={v!r}" for k, v in
                           sorted(getattr(self, "params", {}).items()))
        return f"<{type(self).__name__} {self.name}({params})>"


class DataPlaneFault(FaultModel):
    """A fault at the control→data plane boundary of one switch.

    Armed by redirecting the switch's ``apply_to_dataplane`` hook through
    :class:`~repro.faults.harness.DataPlaneFaultHarness`; this is the
    (unchanged) contract of the historical ``switches.faults.Fault`` class.
    """

    layer = DATA_PLANE

    def intercept(self, flowmod, apply) -> bool:
        """Handle one data-plane application.

        ``apply`` is the unfaulted ``(flowmod, now) -> None`` hook.  Return
        ``True`` when the fault consumed the application (it will apply — or
        drop — it itself), ``False`` to let it proceed normally.
        """
        raise NotImplementedError


class ControlChannelFault(FaultModel):
    """A fault on one switch's OpenFlow control connection.

    Armed by installing a :class:`~repro.faults.harness.ControlChannelHarness`
    interceptor on the connection; :meth:`on_transmit` sees every message in
    both directions *before* it is scheduled for delivery.
    """

    layer = CONTROL_CHANNEL

    def on_transmit(self, channel, from_side: int, message) -> bool:
        """Handle one message entering the channel.

        ``channel`` is a :class:`~repro.faults.harness.ChannelHook` that can
        forward (optionally with extra latency) or fabricate messages;
        ``from_side`` is :data:`~repro.faults.harness.SWITCH_SIDE` or
        :data:`~repro.faults.harness.CONTROLLER_SIDE`.  Return ``True`` when
        the fault consumed the message (dropped, delayed or replaced it),
        ``False`` to let the next fault — and finally the normal delivery —
        see it.
        """
        raise NotImplementedError


class LifecycleFault(FaultModel):
    """A fault acting on the switch as a whole (crash, restart)."""

    layer = LIFECYCLE

    def schedule(self, switch: "Switch") -> None:
        """Install the fault's timed actions against ``switch``."""
        raise NotImplementedError
