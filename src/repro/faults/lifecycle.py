"""Switch-lifecycle faults: crash and restart with a flow-table wipe.

A power or software failure takes the whole switch down: ports go dark (all
packets in or out are lost), the data-plane table is wiped, and — unless
configured otherwise — the control-plane table with it.  On restart the
switch comes back *empty*: whatever forwarding state the controller had
installed is gone until something reinstalls it, which is exactly the
recovery burden the fault-tolerance literature (and the related Megaphone
migration machinery) puts on the control plane.
"""

from __future__ import annotations

from repro.faults.base import LifecycleFault
from repro.faults.registry import register_fault
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle via repro.switches)
    from repro.switches.base import Switch


@register_fault
class SwitchCrashFault(LifecycleFault):
    """Crash the switch at ``at`` seconds; restart it ``restart_after`` seconds later."""

    name = "switch-crash"
    param_defaults = {
        "at": 0.5,
        #: Seconds down before restarting; ``0`` means the switch stays dead.
        "restart_after": 0.5,
        "wipe_control_plane": True,
    }

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.restart_after < 0:
            raise ValueError("restart_after must be >= 0")

    def schedule(self, switch: "Switch") -> None:
        self.sim.schedule_callback(max(0.0, self.at - self.sim.now),
                                   self._crash, switch)

    def _crash(self, switch: "Switch") -> None:
        switch.crash(wipe_control_plane=bool(self.wipe_control_plane))
        self.count("crashes")
        if self.restart_after > 0:
            self.sim.schedule_callback(self.restart_after, self._restore, switch)

    def _restore(self, switch: "Switch") -> None:
        switch.restore()
        self.count("restarts")


@register_fault
class LinkFlapFault(LifecycleFault):
    """All ports of the switch go dark for a window; its tables survive.

    Models a transient link-layer outage (optics flap, LAG reconvergence):
    for ``duration`` seconds from ``at`` every packet in or out of the
    switch is lost, but — unlike :class:`SwitchCrashFault` — the control
    connection stays up and no table is wiped, so nothing needs
    reinstalling afterwards.  Packets already serialised onto a link when
    the flap starts still arrive.
    """

    name = "link-flap"
    param_defaults = {"at": 0.5, "duration": 0.2}

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")

    def setup(self) -> None:
        self._saved_ports = None

    def schedule(self, switch: "Switch") -> None:
        self.sim.schedule_callback(max(0.0, self.at - self.sim.now),
                                   self._down, switch)

    def _down(self, switch: "Switch") -> None:
        # Outbound: an empty port map makes ``_transmit`` drop silently.
        # Inbound: an instance attribute shadows ``receive_packet`` (links
        # look the receiver method up at delivery time).
        self._saved_ports = switch._ports
        switch._ports = {}
        switch.receive_packet = lambda packet, in_port: None
        self.count("flaps")
        self.sim.schedule_callback(self.duration, self._up, switch)

    def _up(self, switch: "Switch") -> None:
        switch._ports = self._saved_ports
        self._saved_ports = None
        switch.__dict__.pop("receive_packet", None)
        self.count("restores")
