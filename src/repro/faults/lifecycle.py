"""Switch-lifecycle faults: crash and restart with a flow-table wipe.

A power or software failure takes the whole switch down: ports go dark (all
packets in or out are lost), the data-plane table is wiped, and — unless
configured otherwise — the control-plane table with it.  On restart the
switch comes back *empty*: whatever forwarding state the controller had
installed is gone until something reinstalls it, which is exactly the
recovery burden the fault-tolerance literature (and the related Megaphone
migration machinery) puts on the control plane.
"""

from __future__ import annotations

from repro.faults.base import LifecycleFault
from repro.faults.registry import register_fault
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle via repro.switches)
    from repro.switches.base import Switch


@register_fault
class SwitchCrashFault(LifecycleFault):
    """Crash the switch at ``at`` seconds; restart it ``restart_after`` seconds later."""

    name = "switch-crash"
    param_defaults = {
        "at": 0.5,
        #: Seconds down before restarting; ``0`` means the switch stays dead.
        "restart_after": 0.5,
        "wipe_control_plane": True,
    }

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.restart_after < 0:
            raise ValueError("restart_after must be >= 0")

    def schedule(self, switch: "Switch") -> None:
        self.sim.schedule_callback(max(0.0, self.at - self.sim.now),
                                   self._crash, switch)

    def _crash(self, switch: "Switch") -> None:
        switch.crash(wipe_control_plane=bool(self.wipe_control_plane))
        self.count("crashes")
        if self.restart_after > 0:
            self.sim.schedule_callback(self.restart_after, self._restore, switch)

    def _restore(self, switch: "Switch") -> None:
        switch.restore()
        self.count("restarts")
