"""First-class registry of fault models.

Mirrors the acknowledgment-technique registry
(:mod:`repro.core.techniques.registry`): a fault is a value, not a string
every layer interprets on its own.  A :class:`RegisteredFault` owns the
implementation class, the layer it attaches to, and its parameter defaults,
so a fault registered once is immediately sweepable from every entry point —
sessions (``SessionSpec.faults``), scenarios (``ScenarioParams.faults``) and
campaign grids (``CampaignSpec.faults``).

Adding a fault model is one decoration::

    from repro.faults.base import DataPlaneFault
    from repro.faults.registry import register_fault

    @register_fault
    class GhostRuleFault(DataPlaneFault):
        \"\"\"Silently drop every Nth rule on its way to the data plane.\"\"\"

        name = "ghost-rule"
        param_defaults = {"every": 10}

Registration is per-process, exactly like technique registration: parallel
campaign workers only see faults whose registering module they import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Type

from repro.faults.base import FAULT_LAYERS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.base import FaultModel


@dataclass(frozen=True)
class RegisteredFault:
    """One fault model as a first-class registry value."""

    name: str
    implementation: Type["FaultModel"]
    layer: str
    description: str = ""
    param_defaults: Mapping[str, object] = field(default_factory=dict)

    def instantiate(self, **params: object) -> "FaultModel":
        """Create a fresh (unarmed) fault instance with ``params`` applied."""
        return self.implementation(**params)


_REGISTRY: Dict[str, RegisteredFault] = {}


def register_fault(cls: Type["FaultModel"]) -> Type["FaultModel"]:
    """Class decorator: register a :class:`~repro.faults.base.FaultModel`.

    Uses the class's ``name``, ``layer``, first docstring line and
    ``param_defaults``, so a new fault model is defined and registered
    entirely inside its own module.
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.layer not in FAULT_LAYERS:
        raise ValueError(
            f"{cls.__name__}.layer must be one of {FAULT_LAYERS}, "
            f"not {cls.layer!r}"
        )
    if cls.name in _REGISTRY:
        raise ValueError(f"fault {cls.name!r} is already registered")
    doc_lines = (cls.__doc__ or "").strip().splitlines()
    _REGISTRY[cls.name] = RegisteredFault(
        name=cls.name,
        implementation=cls,
        layer=cls.layer,
        description=doc_lines[0] if doc_lines else "",
        param_defaults=dict(cls.param_defaults),
    )
    return cls


def unregister_fault(name: str) -> None:
    """Remove a registered fault (used by tests registering toys)."""
    _REGISTRY.pop(name, None)


def get_fault(name: str) -> RegisteredFault:
    """Look a fault model up by name (``KeyError`` on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r}; available: {available_faults()}"
        ) from None


def available_faults(layer: Optional[str] = None) -> List[str]:
    """Registered fault names, sorted; optionally restricted to one layer."""
    return sorted(
        name for name, entry in _REGISTRY.items()
        if layer is None or entry.layer == layer
    )
