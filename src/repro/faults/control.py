"""Control-channel faults: the OpenFlow connection misbehaving.

The paper's premise is that a switch's *acknowledgments* cannot be trusted;
these models create every flavour of that on the wire itself:

* ``ack-loss`` — barrier replies vanish on their way to the controller, so
  techniques that wait for them stall (the update misses its deadline) while
  data-plane confirmation (probing) is unaffected.
* ``ack-duplicate`` — barrier replies arrive more than once; consumers must
  treat acknowledgments as idempotent.
* ``premature-ack`` — the channel answers a barrier request *itself*, before
  the switch has processed anything: the literal "acks arrive before rules
  are active" failure.  The switch's own (late) reply is suppressed so the
  controller sees exactly one — early — acknowledgment.
* ``channel-jitter`` — per-message latency inflation; FIFO ordering is
  preserved (TCP), only the lag varies.
* ``disconnect`` — the connection is down for a window; every message sent
  in either direction during the outage is lost.

All models attach through a
:class:`~repro.faults.harness.ControlChannelHarness` on the switch side of
the control connection — between the switch agent and whatever claimed the
controller side (the real controller or the RUM proxy), which is exactly
where a flaky management network or a buggy agent TCP stack would sit.
"""

from __future__ import annotations

from typing import Set

from repro.faults.base import ControlChannelFault
from repro.faults.harness import CONTROLLER_SIDE, SWITCH_SIDE
from repro.faults.registry import register_fault
from repro.openflow.messages import BarrierReply, BarrierRequest


@register_fault
class AckLossFault(ControlChannelFault):
    """With probability ``probability`` a barrier reply is lost in transit."""

    name = "ack-loss"
    param_defaults = {"probability": 0.1}

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def on_transmit(self, channel, from_side, message) -> bool:
        if from_side != SWITCH_SIDE or not isinstance(message, BarrierReply):
            return False
        if self.rng.uniform(0.0, 1.0) >= self.probability:
            return False
        self.count("acks_dropped")
        return True


@register_fault
class AckDuplicateFault(ControlChannelFault):
    """With probability ``probability`` a barrier reply is delivered ``copies`` extra times."""

    name = "ack-duplicate"
    param_defaults = {"probability": 0.2, "copies": 1}

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.copies < 1:
            raise ValueError("copies must be >= 1")

    def on_transmit(self, channel, from_side, message) -> bool:
        if from_side != SWITCH_SIDE or not isinstance(message, BarrierReply):
            return False
        if self.rng.uniform(0.0, 1.0) >= self.probability:
            return False
        self.count("acks_duplicated")
        for _ in range(1 + int(self.copies)):
            channel.forward(from_side, message)
        return True


@register_fault
class PrematureAckFault(ControlChannelFault):
    """With probability ``probability`` a barrier is acknowledged before the switch sees it."""

    name = "premature-ack"
    param_defaults = {"probability": 1.0}

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def setup(self) -> None:
        self._answered_early: Set[int] = set()

    def on_transmit(self, channel, from_side, message) -> bool:
        if from_side == CONTROLLER_SIDE and isinstance(message, BarrierRequest):
            if self.rng.uniform(0.0, 1.0) >= self.probability:
                return False
            self.count("premature_acks")
            self._answered_early.add(message.xid)
            # Ack immediately, then still deliver the request so the switch
            # eventually does the work it already "confirmed".
            channel.send_to_controller(BarrierReply(xid=message.xid))
            channel.forward(from_side, message)
            return True
        if (from_side == SWITCH_SIDE and isinstance(message, BarrierReply)
                and message.xid in self._answered_early):
            # Swallow the switch's real (late) reply: the controller must see
            # exactly one acknowledgment — the premature one.
            self._answered_early.discard(message.xid)
            self.count("late_acks_suppressed")
            return True
        return False


@register_fault
class ChannelJitterFault(ControlChannelFault):
    """With probability ``probability`` a message is delayed by up to ``max_jitter`` seconds."""

    name = "channel-jitter"
    param_defaults = {"probability": 1.0, "max_jitter": 0.05}

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_jitter < 0:
            raise ValueError("max_jitter must be >= 0")

    def on_transmit(self, channel, from_side, message) -> bool:
        if self.rng.uniform(0.0, 1.0) >= self.probability:
            return False
        self.count("messages_jittered")
        channel.forward(from_side, message,
                        extra_latency=self.rng.uniform(0.0, self.max_jitter))
        return True


@register_fault
class DisconnectFault(ControlChannelFault):
    """The control connection is down during ``[at, at + outage)``.

    Every message *transmitted* inside the window is lost; a message sent
    just before the outage still arrives (channel latencies are sub-
    millisecond against outage windows of hundreds of milliseconds, so the
    in-flight tail is negligible at this model's granularity).
    """

    name = "disconnect"
    param_defaults = {"at": 0.5, "outage": 0.5}

    def validate(self) -> None:
        if self.at < 0 or self.outage < 0:
            raise ValueError("at and outage must be >= 0")

    def on_transmit(self, channel, from_side, message) -> bool:
        if self.at <= self.sim.now < self.at + self.outage:
            self.count("messages_lost")
            return True
        return False
