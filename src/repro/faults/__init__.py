"""Fault-injection subsystem: registry, fault models, declarative plans.

The paper's central finding is that switches misbehave at the control/data
plane boundary — acknowledgments arrive before rules are active, delays
spike to seconds, updates get applied out of order.  This package turns
"switches lie" from a hardcoded experiment condition into a configurable
axis of every run: a typed fault-model registry
(:func:`~repro.faults.registry.register_fault`, mirroring the acknowledgment
technique registry), seeded composable fault models on all three layers
where the real bugs live, and a declarative
:class:`~repro.faults.plan.FaultPlan` that rides on ``SessionSpec`` so
sessions, scenarios and campaign grids sweep faults with zero per-path
wiring.

Registered fault models:

=================  ===============  ===========================================
``delay-spike``    data plane       control→data plane lag spikes to seconds
``reorder``        data plane       rules applied out of order
``rule-drop``      data plane       a rule silently never becomes active
``ack-loss``       control channel  barrier replies lost in transit
``ack-duplicate``  control channel  barrier replies delivered repeatedly
``premature-ack``  control channel  barriers acked before the switch acts
``channel-jitter`` control channel  per-message latency inflation (FIFO kept)
``disconnect``     control channel  connection down for a window, traffic lost
``switch-crash``   lifecycle        crash + restart with a flow-table wipe
``link-flap``      lifecycle        ports dark for a window, tables survive
=================  ===============  ===========================================

Typical use::

    from repro.faults import FaultPlan
    from repro.session import SessionSpec

    spec = ...                                  # any SessionSpec
    spec.faults = FaultPlan.from_string("ack-loss(probability=0.3)")
    record = spec.run()
    print(record.completed, record.fault_events)

An absent or empty plan arms nothing and is byte-identical (same digests) to
the fault-free path.
"""

from repro.faults.base import (
    CONTROL_CHANNEL,
    DATA_PLANE,
    FAULT_LAYERS,
    LIFECYCLE,
    ControlChannelFault,
    DataPlaneFault,
    FaultModel,
    LifecycleFault,
)
from repro.faults.harness import (
    CONTROLLER_SIDE,
    SWITCH_SIDE,
    ChannelHook,
    ControlChannelHarness,
    DataPlaneFaultHarness,
    FaultInjector,
)
from repro.faults.plan import (
    NO_FAULTS,
    ArmedFaults,
    FaultPlan,
    FaultSpec,
    GroupSpec,
    RollingSpec,
    arm_fault_plan,
    resolve_targets,
)
from repro.faults.registry import (
    RegisteredFault,
    available_faults,
    get_fault,
    register_fault,
    unregister_fault,
)

# Importing the model modules populates the registry.
from repro.faults import control as _control  # noqa: F401
from repro.faults import lifecycle as _lifecycle  # noqa: F401
from repro.faults.dataplane import DelaySpikeFault, ReorderFault, RuleDropFault

__all__ = [
    "ArmedFaults",
    "CONTROLLER_SIDE",
    "CONTROL_CHANNEL",
    "ChannelHook",
    "ControlChannelFault",
    "ControlChannelHarness",
    "DATA_PLANE",
    "DataPlaneFault",
    "DataPlaneFaultHarness",
    "DelaySpikeFault",
    "FAULT_LAYERS",
    "FaultInjector",
    "FaultModel",
    "FaultPlan",
    "FaultSpec",
    "LIFECYCLE",
    "LifecycleFault",
    "NO_FAULTS",
    "RegisteredFault",
    "ReorderFault",
    "RuleDropFault",
    "SWITCH_SIDE",
    "arm_fault_plan",
    "available_faults",
    "get_fault",
    "register_fault",
    "unregister_fault",
]
