"""Declarative fault plans and their arming against a built network.

A :class:`FaultPlan` is the data-only description of "which fault models run
where, with which parameters, under which seed" — encoded like
:class:`~repro.session.spec.StackSpec` as a plain JSON-able structure so it
travels inside ``SessionSpec.config()``, campaign cell configurations and
result records.  Two codecs exist:

* :meth:`FaultPlan.as_dict` / :meth:`FaultPlan.from_dict` — the canonical
  round-tripping JSON form (session/record provenance);
* :meth:`FaultPlan.to_string` / :meth:`FaultPlan.from_string` — a compact
  one-line form for CLI axes and campaign grids, e.g.::

      ack-loss(probability=0.3)
      delay-spike(probability=0.05,spike=2.0)@s1|s2+switch-crash(at=0.4)@s1

  ``+`` separates fault specs, ``(...)`` carries parameters, ``@`` restricts
  the spec to named switches (``|``-separated); no ``@`` means topology-wide.

:func:`arm_fault_plan` instantiates one fault-model instance per (spec,
target switch) pair — each with a deterministically forked RNG, so schedules
are reproducible under a fixed seed regardless of arming order — and
installs the per-layer harnesses.  An empty (or absent) plan arms nothing:
the fault-free path is byte-identical to a build without this subsystem.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.faults.base import CONTROL_CHANNEL, DATA_PLANE, FaultModel
from repro.faults.harness import ControlChannelHarness, DataPlaneFaultHarness
from repro.faults.registry import get_fault
from repro.sim.rng import SeededRandom

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.switches, which re-exports the legacy fault names)
    from repro.net.network import Network
    from repro.sim.kernel import Simulator

#: Spellings of "no faults" accepted wherever a plan string is expected.
NO_FAULTS = ("", "none")

_SPEC_PATTERN = re.compile(
    r"^(?P<name>[a-z0-9][a-z0-9-]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"(?:@(?P<targets>[^()+]+))?$"
)


def split_outside_parens(text: str, separator: str) -> List[str]:
    """Split ``text`` on ``separator`` occurrences outside parentheses.

    Parameter lists carry their own separators — ``spike=1e+20`` holds a
    ``+``, ``ack-loss(probability=0.3,spike=2)`` holds commas — so both the
    ``+`` between fault specs and the ``,`` between CLI axis entries must
    only split at nesting depth zero.  Empty/whitespace items are dropped.
    """
    items, token, depth = [], "", 0
    for char in text:
        if char == separator and depth == 0:
            items.append(token)
            token = ""
            continue
        depth += {"(": 1, ")": -1}.get(char, 0)
        token += char
    items.append(token)
    return [item for item in (token.strip() for token in items) if item]


def _parse_scalar(text: str) -> object:
    """Parse a parameter value: int, then float, then bool, then string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def _encode_scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class FaultSpec:
    """One fault model applied to some (or all) switches."""

    #: Registry name of the fault model.
    fault: str
    #: Parameter overrides (defaults of the model fill the rest).
    params: Dict[str, object] = field(default_factory=dict)
    #: Switch names the fault attaches to; empty means every switch.
    targets: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "fault": self.fault,
            "params": dict(self.params),
            "targets": list(self.targets),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(
            fault=payload["fault"],
            params=dict(payload.get("params") or {}),
            targets=tuple(payload.get("targets") or ()),
        )

    def to_string(self) -> str:
        text = self.fault
        if self.params:
            encoded = ",".join(f"{key}={_encode_scalar(self.params[key])}"
                               for key in sorted(self.params))
            text += f"({encoded})"
        if self.targets:
            text += "@" + "|".join(self.targets)
        return text

    @classmethod
    def from_string(cls, text: str) -> "FaultSpec":
        matched = _SPEC_PATTERN.match(text.strip())
        if not matched:
            raise ValueError(
                f"cannot parse fault spec {text!r} "
                "(expected name(key=value,...)@switch|switch)"
            )
        params: Dict[str, object] = {}
        for item in (matched.group("params") or "").split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"fault parameter {item!r} is not key=value")
            key, _, value = item.partition("=")
            params[key.strip()] = _parse_scalar(value.strip())
        targets = tuple(
            target.strip()
            for target in (matched.group("targets") or "").split("|")
            if target.strip()
        )
        return cls(fault=matched.group("name"), params=params, targets=targets)


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries for one run.

    An empty plan is exactly the fault-free path — ``SessionSpec`` treats
    ``faults=None`` and ``faults=FaultPlan()`` identically.
    """

    specs: List[FaultSpec] = field(default_factory=list)
    #: Root seed of every fault schedule; ``None`` derives it from the
    #: session seed so one seed knob still determines the whole run.
    seed: Optional[int] = None

    def empty(self) -> bool:
        return not self.specs

    def validate(self) -> None:
        """Resolve every fault name and instantiate once to check parameters."""
        for spec in self.specs:
            get_fault(spec.fault).instantiate(**spec.params)

    # -- codecs ---------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON form; :meth:`from_dict` round-trips it exactly."""
        return {
            "specs": [spec.as_dict() for spec in self.specs],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, object]]) -> "FaultPlan":
        if payload is None:
            return cls()
        return cls(
            specs=[FaultSpec.from_dict(entry)
                   for entry in payload.get("specs") or []],
            seed=payload.get("seed"),
        )

    def to_string(self) -> str:
        """Compact one-line form (campaign axes); ``"none"`` when empty."""
        if self.empty():
            return "none"
        return "+".join(spec.to_string() for spec in self.specs)

    @classmethod
    def from_string(cls, text: Optional[str],
                    seed: Optional[int] = None) -> "FaultPlan":
        if text is None or text.strip().lower() in NO_FAULTS:
            return cls(seed=seed)
        return cls(
            specs=[FaultSpec.from_string(part)
                   for part in split_outside_parens(text, "+")],
            seed=seed,
        )

    def describe(self) -> str:
        """Short human-readable label for progress output and reports."""
        return self.to_string()


class ArmedFaults:
    """Handle on every fault instance armed for one run."""

    def __init__(self) -> None:
        #: ``(target switch, fault instance)`` in arming order.
        self.instances: List[Tuple[str, FaultModel]] = []
        self.harnesses: List[object] = []

    def counters(self) -> Dict[str, int]:
        """``"<fault>.<event>" -> count`` aggregated over all target switches."""
        totals: Dict[str, int] = {}
        for _target, fault in self.instances:
            for event, count in fault.counters().items():
                key = f"{fault.name}.{event}"
                totals[key] = totals.get(key, 0) + count
        return totals

    def remove(self) -> None:
        """Detach every harness (lifecycle actions already scheduled remain)."""
        for harness in self.harnesses:
            harness.remove()


def arm_fault_plan(
    sim: "Simulator",
    network: "Network",
    plan: Optional[FaultPlan],
    default_seed: int = 7,
) -> ArmedFaults:
    """Instantiate and install ``plan`` against ``network``.

    Every (spec, target) pair gets its own fault instance and an RNG forked
    by a label — ``fault:<index>:<name>:<target>`` — from the plan seed (or
    ``default_seed``), so schedules are deterministic and independent of both
    arming order and how many other faults the plan carries.
    """
    armed = ArmedFaults()
    if plan is None or plan.empty():
        return armed
    root = SeededRandom(plan.seed if plan.seed is not None else default_seed)
    dataplane_faults: Dict[str, List[FaultModel]] = {}
    control_faults: Dict[str, List[FaultModel]] = {}
    for index, spec in enumerate(plan.specs):
        entry = get_fault(spec.fault)
        targets: Sequence[str] = spec.targets or network.switch_names()
        for target in targets:
            if target not in network.switches:
                raise ValueError(
                    f"fault {spec.fault!r} targets unknown switch {target!r}; "
                    f"switches: {network.switch_names()}"
                )
            fault = entry.instantiate(**spec.params)
            fault.arm(sim, root.fork(f"fault:{index}:{spec.fault}:{target}"))
            fault._trace_target = target  # fault-overlay trace events
            armed.instances.append((target, fault))
            if entry.layer == DATA_PLANE:
                dataplane_faults.setdefault(target, []).append(fault)
            elif entry.layer == CONTROL_CHANNEL:
                control_faults.setdefault(target, []).append(fault)
            else:
                fault.schedule(network.switch(target))
    for name, faults in dataplane_faults.items():
        armed.harnesses.append(DataPlaneFaultHarness(network.switch(name), faults))
    for name, faults in control_faults.items():
        armed.harnesses.append(
            ControlChannelHarness(network.control_connections[name], faults)
        )
    return armed
