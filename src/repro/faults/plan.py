"""Declarative fault plans, the fault-timeline DSL, and plan arming.

A :class:`FaultPlan` is the data-only description of "which fault models run
where, with which parameters, under which seed" — encoded like
:class:`~repro.session.spec.StackSpec` as a plain JSON-able structure so it
travels inside ``SessionSpec.config()``, campaign cell configurations and
result records.  Two codecs exist:

* :meth:`FaultPlan.as_dict` / :meth:`FaultPlan.from_dict` — the canonical
  round-tripping JSON form (session/record provenance);
* :meth:`FaultPlan.to_string` / :meth:`FaultPlan.from_string` — a compact
  one-line form for CLI axes and campaign grids, e.g.::

      ack-loss(probability=0.3)
      delay-spike(probability=0.05,spike=2.0)@s1|s2+switch-crash(at=0.4)@s1

  ``+`` separates plan entries, ``(...)`` carries parameters, ``@`` restricts
  a spec to switches (``|``-separated); no ``@`` means topology-wide.

Beyond plain specs the string form is a small **fault-timeline DSL**:

* **Correlated groups** — ``group(switch-crash@s1,delay-spike@s2)@t=0.5``
  fires its schedulable members together at a common instant (each member's
  own ``at`` becomes an *offset* from the group time); ``phase(...)`` is an
  alias.  Members without a schedule knob (probability faults) are armed
  as-is for the whole run.
* **Rolling waves** — ``rolling(switch-crash(restart_after=0.3)@pod:0,stagger=0.2)``
  expands one schedulable spec across its resolved targets with a per-target
  time stagger: target *j* fires at ``base + j*stagger``.
* **Target selectors** — anywhere a switch name is accepted: ``pod:N``
  (fat-tree pod *N*, i.e. switches named ``A<N>-*`` / ``E<N>-*``),
  ``prefix:P`` (name prefix), ``*`` (every switch), or a literal name.
  Selectors resolve at arm time against the built network.

:func:`arm_fault_plan` expands the plan (:meth:`FaultPlan.expanded`) into
fully-resolved per-(entry, target) instances — each with a deterministically
forked RNG, so schedules are reproducible under a fixed seed regardless of
arming order — and installs the per-layer harnesses.  Plain specs keep their
pre-DSL RNG labels (``fault:<index>:<name>:<target>``) byte-identically.
An empty (or absent) plan arms nothing: the fault-free path is byte-identical
to a build without this subsystem.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.faults.base import CONTROL_CHANNEL, DATA_PLANE, FaultModel
from repro.faults.harness import ControlChannelHarness, DataPlaneFaultHarness
from repro.faults.registry import available_faults, get_fault
from repro.sim.rng import SeededRandom

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.switches, which re-exports the legacy fault names)
    from repro.net.network import Network
    from repro.sim.kernel import Simulator

#: Spellings of "no faults" accepted wherever a plan string is expected.
NO_FAULTS = ("", "none")

_SPEC_PATTERN = re.compile(
    r"^(?P<name>[a-z0-9][a-z0-9-]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"(?:@(?P<targets>[^()+]+))?$"
)

_GROUP_AT_PATTERN = re.compile(r"^@t=(?P<at>[^@]+)$")
_WRAPPER_PATTERN = re.compile(r"^(?P<head>rolling|group|phase)\(")


def split_outside_parens(text: str, separator: str) -> List[str]:
    """Split ``text`` on ``separator`` occurrences outside parentheses.

    Parameter lists carry their own separators — ``spike=1e+20`` holds a
    ``+``, ``ack-loss(probability=0.3,spike=2)`` holds commas — so both the
    ``+`` between fault specs and the ``,`` between CLI axis entries must
    only split at nesting depth zero.  Empty/whitespace items are dropped.
    """
    items, token, depth = [], "", 0
    for char in text:
        if char == separator and depth == 0:
            items.append(token)
            token = ""
            continue
        depth += {"(": 1, ")": -1}.get(char, 0)
        token += char
    items.append(token)
    return [item for item in (token.strip() for token in items) if item]


def _parse_scalar(text: str) -> object:
    """Parse a parameter value: int, then float, then bool, then string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def _encode_scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _check_fault_name(name: str, token: str) -> None:
    """Reject unregistered fault names at parse time, with a suggestion.

    Only enforced when the registry is populated (it always is through the
    :mod:`repro.faults` package; importing this module alone skips the check
    and :meth:`FaultPlan.validate` still catches the name later).
    """
    known = available_faults()
    if not known or name in known:
        return
    close = difflib.get_close_matches(name, known, n=1)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise ValueError(
        f"unknown fault {name!r} in {token!r}{hint} "
        f"(available: {', '.join(known)})"
    )


@dataclass(frozen=True)
class FaultSpec:
    """One fault model applied to some (or all) switches."""

    #: Registry name of the fault model.
    fault: str
    #: Parameter overrides (defaults of the model fill the rest).
    params: Dict[str, object] = field(default_factory=dict)
    #: Target tokens the fault attaches to — literal switch names or the
    #: selectors ``pod:N`` / ``prefix:P`` / ``*``; empty means every switch.
    targets: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "fault": self.fault,
            "params": dict(self.params),
            "targets": list(self.targets),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(
            fault=payload["fault"],
            params=dict(payload.get("params") or {}),
            targets=tuple(payload.get("targets") or ()),
        )

    def to_string(self) -> str:
        text = self.fault
        if self.params:
            encoded = ",".join(f"{key}={_encode_scalar(self.params[key])}"
                               for key in sorted(self.params))
            text += f"({encoded})"
        if self.targets:
            text += "@" + "|".join(self.targets)
        return text

    @classmethod
    def from_string(cls, text: str) -> "FaultSpec":
        token = text.strip()
        matched = _SPEC_PATTERN.match(token)
        if not matched:
            detail = ""
            if token.count("(") != token.count(")"):
                detail = "; parentheses are unbalanced"
            elif " " in token.split("(", 1)[0]:
                detail = "; fault names cannot contain spaces"
            raise ValueError(
                f"cannot parse fault spec {token!r} "
                f"(expected name(key=value,...)@switch|switch){detail}"
            )
        name = matched.group("name")
        _check_fault_name(name, token)
        params: Dict[str, object] = {}
        for raw_item in (matched.group("params") or "").split(","):
            item = raw_item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"fault parameter {item!r} in {token!r} is not key=value"
                )
            key, _, value = item.partition("=")
            params[key.strip()] = _parse_scalar(value.strip())
        targets = tuple(
            target.strip()
            for target in (matched.group("targets") or "").split("|")
            if target.strip()
        )
        return cls(fault=name, params=params, targets=targets)


@dataclass(frozen=True)
class GroupSpec:
    """Correlated fault group: members fire together at a common instant.

    Schedulable members (fault models with an ``at`` parameter) get
    ``at = group.at + member.at`` — the member's own ``at`` acts as an
    offset within the group.  Members without a schedule knob are armed
    unchanged, for the whole run.
    """

    members: Tuple[FaultSpec, ...]
    #: Common fire time as a fraction of the update window (same units as
    #: every fault model's ``at``).
    at: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"group": {
            "members": [member.as_dict() for member in self.members],
            "at": self.at,
        }}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GroupSpec":
        return cls(
            members=tuple(FaultSpec.from_dict(entry)
                          for entry in payload.get("members") or ()),
            at=float(payload.get("at", 0.0)),
        )

    def to_string(self) -> str:
        body = ",".join(member.to_string() for member in self.members)
        suffix = f"@t={_encode_scalar(self.at)}" if self.at else ""
        return f"group({body}){suffix}"

    @classmethod
    def from_string(cls, body: str, suffix: str, token: str) -> "GroupSpec":
        at = 0.0
        if suffix:
            matched = _GROUP_AT_PATTERN.match(suffix)
            if not matched:
                raise ValueError(
                    f"cannot parse group suffix {suffix!r} in {token!r} "
                    "(expected @t=<time>)"
                )
            at = _parse_scalar(matched.group("at").strip())
            if not isinstance(at, (int, float)) or isinstance(at, bool):
                raise ValueError(
                    f"group time {matched.group('at')!r} in {token!r} "
                    "is not a number"
                )
        members = tuple(FaultSpec.from_string(part)
                        for part in split_outside_parens(body, ","))
        if not members:
            raise ValueError(f"group {token!r} has no members")
        return cls(members=members, at=float(at))


@dataclass(frozen=True)
class RollingSpec:
    """Rolling wave: one schedulable spec staggered across its targets.

    Target *j* (in resolved-target order) fires at ``base + j * stagger``
    where ``base`` is :attr:`at`, falling back to the inner spec's own
    ``at`` and then the fault model's default.
    """

    spec: FaultSpec
    #: Per-target fire-time increment.
    stagger: float = 0.1
    #: Fire time of the first target; ``None`` defers to the inner spec.
    at: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {"rolling": {
            "spec": self.spec.as_dict(),
            "stagger": self.stagger,
            "at": self.at,
        }}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RollingSpec":
        at = payload.get("at")
        return cls(
            spec=FaultSpec.from_dict(payload["spec"]),
            stagger=float(payload.get("stagger", 0.1)),
            at=None if at is None else float(at),
        )

    def to_string(self) -> str:
        parts = [self.spec.to_string(), f"stagger={_encode_scalar(self.stagger)}"]
        if self.at is not None:
            parts.append(f"at={_encode_scalar(self.at)}")
        return f"rolling({','.join(parts)})"

    @classmethod
    def from_string(cls, body: str, token: str) -> "RollingSpec":
        parts = split_outside_parens(body, ",")
        if not parts:
            raise ValueError(f"rolling {token!r} has no inner fault spec")
        spec = FaultSpec.from_string(parts[0])
        stagger, at = 0.1, None
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in ("stagger", "at"):
                raise ValueError(
                    f"cannot parse rolling option {part!r} in {token!r} "
                    "(expected stagger=<step> or at=<time>)"
                )
            parsed = _parse_scalar(value.strip())
            if not isinstance(parsed, (int, float)) or isinstance(parsed, bool):
                raise ValueError(
                    f"rolling option {part!r} in {token!r} is not a number"
                )
            if key == "stagger":
                stagger = float(parsed)
            else:
                at = float(parsed)
        return cls(spec=spec, stagger=stagger, at=at)


#: Everything a plan's ``specs`` list may hold.
PlanEntry = Union[FaultSpec, GroupSpec, RollingSpec]


def _parse_entry(token: str) -> PlanEntry:
    """Parse one ``+``-separated plan entry (spec, group or rolling)."""
    wrapped = _WRAPPER_PATTERN.match(token)
    if not wrapped:
        return FaultSpec.from_string(token)
    head = wrapped.group("head")
    depth = 0
    for position in range(len(head), len(token)):
        char = token[position]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                body = token[len(head) + 1:position]
                suffix = token[position + 1:].strip()
                if head == "rolling":
                    if suffix:
                        raise ValueError(
                            f"unexpected trailing {suffix!r} in {token!r} "
                            "(rolling takes no @ suffix; put targets on the "
                            "inner spec)"
                        )
                    return RollingSpec.from_string(body, token)
                return GroupSpec.from_string(body, suffix, token)
    raise ValueError(f"unbalanced parentheses in fault entry {token!r}")


def _entry_from_dict(payload: Dict[str, object]) -> PlanEntry:
    if "group" in payload:
        return GroupSpec.from_dict(payload["group"])
    if "rolling" in payload:
        return RollingSpec.from_dict(payload["rolling"])
    if "fault" in payload:
        return FaultSpec.from_dict(payload)
    raise ValueError(
        f"cannot parse fault plan entry {payload!r} "
        "(expected a 'fault', 'group' or 'rolling' key)"
    )


def resolve_targets(
    tokens: Sequence[str],
    network: "Network",
    context: str = "",
) -> List[str]:
    """Resolve target tokens (names and selectors) against a built network.

    Supports literal switch names, ``pod:N`` (fat-tree pod *N*: switches
    ``A<N>-*`` and ``E<N>-*``), ``prefix:P`` (name prefix) and ``*`` (every
    switch).  Order is deterministic: selector-match order follows
    ``network.switch_names()``; duplicates are dropped.  Unknown names raise
    :class:`ValueError` with a nearest-match suggestion.
    """
    names = network.switch_names()
    if not tokens:
        return list(names)
    where = f"fault {context!r}" if context else "fault"
    resolved: List[str] = []
    seen = set()
    for token in tokens:
        if token == "*":
            matched = list(names)
        elif token.startswith("pod:"):
            pod = re.escape(token.split(":", 1)[1])
            pattern = re.compile(rf"^[AE]{pod}-")
            matched = [name for name in names if pattern.match(name)]
            if not matched:
                raise ValueError(
                    f"{where} selector {token!r} matches no switches "
                    "(pods exist on fat-tree topologies, where pod N holds "
                    f"A{token.split(':', 1)[1]}-* and E{token.split(':', 1)[1]}-*)"
                )
        elif token.startswith("prefix:"):
            prefix = token.split(":", 1)[1]
            matched = [name for name in names if name.startswith(prefix)]
            if not matched:
                raise ValueError(
                    f"{where} selector {token!r} matches no switches; "
                    f"switches: {names}"
                )
        else:
            if token not in network.switches:
                close = difflib.get_close_matches(token, names, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                raise ValueError(
                    f"{where} targets unknown switch {token!r}{hint}; "
                    f"switches: {names}"
                )
            matched = [token]
        for name in matched:
            if name not in seen:
                seen.add(name)
                resolved.append(name)
    return resolved


@dataclass
class FaultPlan:
    """A seeded list of plan entries (specs, groups, rolling waves).

    An empty plan is exactly the fault-free path — ``SessionSpec`` treats
    ``faults=None`` and ``faults=FaultPlan()`` identically.
    """

    specs: List[PlanEntry] = field(default_factory=list)
    #: Root seed of every fault schedule; ``None`` derives it from the
    #: session seed so one seed knob still determines the whole run.
    seed: Optional[int] = None

    def empty(self) -> bool:
        return not self.specs

    def validate(self) -> None:
        """Resolve every fault name and instantiate once to check parameters."""
        for entry in self.specs:
            self._validate_entry(entry)

    @staticmethod
    def _validate_entry(entry: PlanEntry) -> None:
        if isinstance(entry, FaultSpec):
            get_fault(entry.fault).instantiate(**entry.params)
        elif isinstance(entry, GroupSpec):
            if not entry.members:
                raise ValueError("fault group has no members")
            if entry.at < 0:
                raise ValueError(f"group time {entry.at} is negative")
            for member in entry.members:
                get_fault(member.fault).instantiate(**member.params)
        elif isinstance(entry, RollingSpec):
            if entry.stagger < 0:
                raise ValueError(f"rolling stagger {entry.stagger} is negative")
            if entry.at is not None and entry.at < 0:
                raise ValueError(f"rolling time {entry.at} is negative")
            registered = get_fault(entry.spec.fault)
            if "at" not in registered.param_defaults:
                raise ValueError(
                    f"rolling needs a schedulable fault (one with an 'at' "
                    f"parameter); {entry.spec.fault!r} has none"
                )
            registered.instantiate(**entry.spec.params)
        else:  # pragma: no cover - guarded by the codecs
            raise TypeError(f"not a fault plan entry: {entry!r}")

    # -- codecs ---------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON form; :meth:`from_dict` round-trips it exactly."""
        return {
            "specs": [entry.as_dict() for entry in self.specs],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, object]]) -> "FaultPlan":
        if payload is None:
            return cls()
        return cls(
            specs=[_entry_from_dict(entry)
                   for entry in payload.get("specs") or []],
            seed=payload.get("seed"),
        )

    def to_string(self) -> str:
        """Compact one-line form (campaign axes); ``"none"`` when empty."""
        if self.empty():
            return "none"
        return "+".join(entry.to_string() for entry in self.specs)

    @classmethod
    def from_string(cls, text: Optional[str],
                    seed: Optional[int] = None) -> "FaultPlan":
        if text is None or text.strip().lower() in NO_FAULTS:
            return cls(seed=seed)
        return cls(
            specs=[_parse_entry(part)
                   for part in split_outside_parens(text, "+")],
            seed=seed,
        )

    def describe(self) -> str:
        """Short human-readable label for progress output and reports."""
        return self.to_string()

    # -- expansion -------------------------------------------------------------
    def expanded(
        self, network: "Network",
    ) -> List[Tuple[str, str, Dict[str, object], str]]:
        """Fully-resolved ``(slot, fault name, params, target)`` instances.

        The *slot* feeds the RNG fork label ``fault:<slot>:<name>:<target>``.
        Plain specs keep their list index as slot — byte-identical to the
        pre-DSL labels — group member *m* of entry *i* gets ``"i.m"``, and a
        rolling entry reuses its index (the target disambiguates).
        """
        instances: List[Tuple[str, str, Dict[str, object], str]] = []
        for index, entry in enumerate(self.specs):
            if isinstance(entry, FaultSpec):
                for target in resolve_targets(entry.targets, network,
                                              context=entry.fault):
                    instances.append(
                        (str(index), entry.fault, dict(entry.params), target))
            elif isinstance(entry, GroupSpec):
                for position, member in enumerate(entry.members):
                    params = dict(member.params)
                    if "at" in get_fault(member.fault).param_defaults:
                        params["at"] = entry.at + float(params.get("at", 0.0))
                    for target in resolve_targets(member.targets, network,
                                                  context=member.fault):
                        instances.append(
                            (f"{index}.{position}", member.fault,
                             dict(params), target))
            elif isinstance(entry, RollingSpec):
                inner = entry.spec
                defaults = get_fault(inner.fault).param_defaults
                if entry.at is not None:
                    base = entry.at
                else:
                    base = float(inner.params.get("at", defaults.get("at", 0.0)))
                targets = resolve_targets(inner.targets, network,
                                          context=inner.fault)
                for position, target in enumerate(targets):
                    params = dict(inner.params)
                    params["at"] = base + position * entry.stagger
                    instances.append(
                        (str(index), inner.fault, params, target))
            else:  # pragma: no cover - guarded by the codecs
                raise TypeError(f"not a fault plan entry: {entry!r}")
        return instances


class ArmedFaults:
    """Handle on every fault instance armed for one run."""

    def __init__(self) -> None:
        #: ``(target switch, fault instance)`` in arming order.
        self.instances: List[Tuple[str, FaultModel]] = []
        self.harnesses: List[object] = []

    def counters(self) -> Dict[str, int]:
        """``"<fault>.<event>" -> count`` aggregated over all target switches."""
        totals: Dict[str, int] = {}
        for _target, fault in self.instances:
            for event, count in fault.counters().items():
                key = f"{fault.name}.{event}"
                totals[key] = totals.get(key, 0) + count
        return totals

    def remove(self) -> None:
        """Detach every harness (lifecycle actions already scheduled remain)."""
        for harness in self.harnesses:
            harness.remove()


def arm_fault_plan(
    sim: "Simulator",
    network: "Network",
    plan: Optional[FaultPlan],
    default_seed: int = 7,
) -> ArmedFaults:
    """Expand and install ``plan`` against ``network``.

    Every expanded (entry, target) instance gets its own fault object and an
    RNG forked by a label — ``fault:<slot>:<name>:<target>`` — from the plan
    seed (or ``default_seed``), so schedules are deterministic and
    independent of both arming order and how many other faults the plan
    carries.
    """
    armed = ArmedFaults()
    if plan is None or plan.empty():
        return armed
    root = SeededRandom(plan.seed if plan.seed is not None else default_seed)
    dataplane_faults: Dict[str, List[FaultModel]] = {}
    control_faults: Dict[str, List[FaultModel]] = {}
    for slot, name, params, target in plan.expanded(network):
        entry = get_fault(name)
        fault = entry.instantiate(**params)
        fault.arm(sim, root.fork(f"fault:{slot}:{name}:{target}"))
        fault._trace_target = target  # fault-overlay trace events
        armed.instances.append((target, fault))
        if entry.layer == DATA_PLANE:
            dataplane_faults.setdefault(target, []).append(fault)
        elif entry.layer == CONTROL_CHANNEL:
            control_faults.setdefault(target, []).append(fault)
        else:
            fault.schedule(network.switch(target))
    for name, faults in dataplane_faults.items():
        armed.harnesses.append(DataPlaneFaultHarness(network.switch(name), faults))
    for name, faults in control_faults.items():
        armed.harnesses.append(
            ControlChannelHarness(network.control_connections[name], faults)
        )
    return armed
