"""Data-plane activation faults.

These sit exactly at the control/data plane boundary where the paper's real
bugs live: the control plane has processed a FlowMod (and may already have
acknowledged it) but the rule is not yet — or never — what packets hit.

* :class:`DelaySpikeFault` (``delay-spike``) — occasionally the control→data
  plane lag jumps to several seconds ("in hard to predict corner cases, the
  delay may reach several seconds"), which breaks static-timeout techniques.
* :class:`ReorderFault` (``reorder``) — modifications are applied to the data
  plane out of order, which breaks sequential probing but not general probing.
* :class:`RuleDropFault` (``rule-drop``) — a modification is silently never
  applied to the data plane at all: the control plane (and any barrier reply)
  claims success while packets keep missing the rule forever.

``DelaySpikeFault`` and ``ReorderFault`` migrated here from
``repro.switches.faults`` unchanged in behaviour (same parameters, same RNG
draws); that module remains as a deprecated re-export shim.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.faults.base import DataPlaneFault
from repro.faults.registry import register_fault
from repro.openflow.messages import FlowMod


@register_fault
class DelaySpikeFault(DataPlaneFault):
    """With probability ``probability`` delay an application by ``spike`` seconds."""

    name = "delay-spike"
    param_defaults = {"probability": 0.01, "spike": 2.0}

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def setup(self) -> None:
        self.spikes_injected = 0

    def intercept(self, flowmod: FlowMod, apply: Callable[[FlowMod, float], None]) -> bool:
        if self.rng.uniform(0.0, 1.0) >= self.probability:
            return False
        self.spikes_injected += 1
        self.count("delay_spikes")
        self.sim.schedule_callback(self.spike, apply, flowmod, self.sim.now + self.spike)
        return True


@register_fault
class ReorderFault(DataPlaneFault):
    """Hold applications in a small buffer and release them in shuffled order."""

    name = "reorder"
    param_defaults = {"window": 4, "hold_time": 0.02}

    def validate(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")

    def setup(self) -> None:
        # Each buffered item keeps the apply hook it was intercepted with:
        # the hook carries the crash epoch of that moment, so modifications
        # buffered before a switch crash die with it even if the buffer
        # flushes after the restart.
        self._buffer: List[Tuple[FlowMod, Callable[[FlowMod, float], None]]] = []
        self.reorders_performed = 0

    def intercept(self, flowmod: FlowMod, apply: Callable[[FlowMod, float], None]) -> bool:
        self._buffer.append((flowmod, apply))
        if len(self._buffer) >= self.window:
            self._flush()
        else:
            self.sim.schedule_callback(self.hold_time, self._flush_if_stale, len(self._buffer))
        return True

    def _flush_if_stale(self, expected_size: int) -> None:
        if self._buffer and len(self._buffer) <= expected_size:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        shuffled = self.rng.shuffle(batch)
        if shuffled != batch:
            self.reorders_performed += 1
            self.count("reorders")
        for flowmod, apply in shuffled:
            apply(flowmod, self.sim.now)


@register_fault
class RuleDropFault(DataPlaneFault):
    """With probability ``probability`` a rule silently never reaches the data plane."""

    name = "rule-drop"
    param_defaults = {"probability": 0.05}

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def intercept(self, flowmod: FlowMod, apply: Callable[[FlowMod, float], None]) -> bool:
        if self.rng.uniform(0.0, 1.0) >= self.probability:
            return False
        self.count("rules_dropped")
        return True
