"""Lightweight metrics registry: counters, gauges, histograms.

Metrics complement the event trace with *state over time*: queue depths,
table occupancy, packets dropped per fault model.  Gauges and histograms
store ``[ts, value]`` samples (simulation time, not wall time) so they plot
directly against the lifecycle timeline; counters are plain monotonically
increasing integers.

The registry is deliberately tiny — no labels, no exposition format — and
is sampled on the simulated clock via
:meth:`repro.sim.kernel.Simulator.every`, which re-schedules a callback at
a fixed sim-time interval and can be cancelled when the run settles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Sampled level; keeps the full ``[ts, value]`` series."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def set(self, ts: float, value: float) -> None:
        self.samples.append((ts, value))

    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0


class Histogram:
    """Distribution of observations; keeps raw samples plus summary stats.

    Raw retention is the right trade-off here: traced runs are short and
    bounded, and downstream analysis (activation-gap distributions) wants
    exact percentiles, not bucket approximations.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def observe(self, ts: float, value: float) -> None:
        self.samples.append((ts, value))

    def summary(self) -> Dict[str, float]:
        values = sorted(v for _, v in self.samples)
        if not values:
            return {"count": 0}
        n = len(values)
        return {
            "count": n,
            "min": values[0],
            "max": values[-1],
            "mean": sum(values) / n,
            "p50": values[n // 2],
            "p95": values[min(n - 1, int(n * 0.95))],
        }


class MetricsRegistry:
    """Name → instrument, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = [[ts, value] for ts, value in gauge.samples]
        for name, hist in sorted(self._histograms.items()):
            out[name] = {"samples": [[ts, v] for ts, v in hist.samples],
                         "summary": hist.summary()}
        return out


#: A sampler is ``callback() -> float`` paired with the gauge it feeds.
SamplerSpec = Tuple[str, Callable[[], float]]


def sample_into(tracer, samplers: List[SamplerSpec], now: float) -> None:
    """Record one reading of every sampler; used by the periodic sim hook."""
    for name, read in samplers:
        tracer.gauge(name, now, float(read()))
