"""Trace exporters: JSONL for tooling, Chrome trace-event JSON for Perfetto.

The Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON object
understood by ``chrome://tracing`` and https://ui.perfetto.dev) maps
naturally onto the rule lifecycle:

* each lifecycle phase becomes an instant event (``"ph": "i"``) on the
  track (``tid``) of the switch it concerns;
* each completed rule becomes one span (``"ph": "X"``) named
  ``rule <xid>`` stretching from ``update-issued`` to ``hw-activated``,
  so the ack-vs-activation gap is visible as the part of the span after
  the ``ack-received`` marker;
* fault activations land on a dedicated ``faults@<switch>`` track;
* each shadow-replay resync becomes a span named ``resync`` on a
  ``recovery@<switch>`` track, stretching from ``resync-started`` to
  ``resync-complete``, with ``rule-reinstalled`` instants inside it.

Sim-time seconds are scaled to the format's microseconds.
:func:`validate_chrome_trace` is the schema check CI runs against a traced
smoke session.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.events import (
    PHASE_FAULT,
    PHASE_HW_ACTIVATED,
    PHASE_RESYNC_COMPLETE,
    PHASE_RESYNC_STARTED,
    PHASE_RULE_REINSTALLED,
    PHASE_UPDATE_ISSUED,
    TraceEvent,
    TraceLog,
)

#: Phases rendered on the per-switch ``recovery@...`` track.
_RECOVERY_PHASES = frozenset({
    PHASE_RESYNC_STARTED, PHASE_RULE_REINSTALLED, PHASE_RESYNC_COMPLETE,
})

_US = 1_000_000.0  # sim seconds → trace microseconds

#: Process id for all tracks; the sim is single-process by construction.
_PID = 1


def trace_to_jsonl(log: TraceLog) -> str:
    """One JSON object per line: a header line, then one line per event."""
    lines = [json.dumps({"technique": log.technique, "kind": log.kind,
                         "seed": log.seed, "meta": log.meta},
                        sort_keys=True)]
    lines.extend(json.dumps(event.as_dict(), sort_keys=True)
                 for event in log.events)
    return "\n".join(lines) + "\n"


def write_jsonl(log: TraceLog, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(log))


def trace_from_jsonl(text: str) -> TraceLog:
    """Rebuild a :class:`TraceLog` from :func:`trace_to_jsonl` output."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return TraceLog()
    header = json.loads(lines[0])
    return TraceLog(
        technique=header.get("technique", ""),
        kind=header.get("kind", ""),
        seed=header.get("seed"),
        meta=dict(header.get("meta") or {}),
        events=[TraceEvent.from_dict(json.loads(line)) for line in lines[1:]],
    )


def read_jsonl(path) -> TraceLog:
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_jsonl(handle.read())


def _track_name(event) -> str:
    if event.phase == PHASE_FAULT:
        return f"faults@{event.switch}" if event.switch else "faults"
    if event.phase in _RECOVERY_PHASES:
        return f"recovery@{event.switch}" if event.switch else "recovery"
    return event.switch or "controller"


def trace_to_chrome(log: TraceLog) -> Dict[str, Any]:
    """Render the log as a Chrome trace-event JSON object (Perfetto-ready)."""
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    spans: Dict[tuple, Dict[str, float]] = {}
    #: Open resync start timestamp per switch (a switch can resync more than
    #: once — each started/complete pair becomes its own span).
    open_resyncs: Dict[str, float] = {}
    resync_spans: List[tuple] = []

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "ts": 0, "pid": _PID,
                "tid": tid, "args": {"name": track},
            })
        return tid

    for event in log.events:
        track = _track_name(event)
        args: Dict[str, Any] = {}
        if event.xid is not None:
            args["xid"] = event.xid
        if event.detail:
            args["detail"] = event.detail
        if log.technique:
            args["technique"] = log.technique
        events.append({
            "name": event.phase,
            "ph": "i",
            "s": "t",  # instant scoped to its thread/track
            "ts": event.ts * _US,
            "pid": _PID,
            "tid": tid_for(track),
            "args": args,
        })
        if event.switch and event.phase == PHASE_RESYNC_STARTED:
            open_resyncs[event.switch] = event.ts
        elif event.switch and event.phase == PHASE_RESYNC_COMPLETE:
            started = open_resyncs.pop(event.switch, None)
            if started is not None:
                resync_spans.append((event.switch, started, event.ts,
                                     event.detail))
        if event.xid is None or not event.switch:
            continue
        key = (event.switch, event.xid)
        span = spans.setdefault(key, {})
        if event.phase == PHASE_UPDATE_ISSUED:
            span.setdefault("start", event.ts)
        elif event.phase == PHASE_HW_ACTIVATED:
            span["end"] = event.ts

    for (switch, xid), span in sorted(spans.items()):
        if "start" not in span or "end" not in span:
            continue
        events.append({
            "name": f"rule {xid}",
            "ph": "X",
            "ts": span["start"] * _US,
            "dur": max(0.0, span["end"] - span["start"]) * _US,
            "pid": _PID,
            "tid": tid_for(switch),
            "args": {"xid": xid, "switch": switch,
                     "technique": log.technique},
        })

    for switch, started, completed, detail in resync_spans:
        args = {"switch": switch, "technique": log.technique}
        if detail:
            args["detail"] = detail
        events.append({
            "name": "resync",
            "ph": "X",
            "ts": started * _US,
            "dur": max(0.0, completed - started) * _US,
            "pid": _PID,
            "tid": tid_for(f"recovery@{switch}"),
            "args": args,
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "technique": log.technique,
            "kind": log.kind,
            "seed": log.seed,
        },
    }


def write_chrome_trace(log: TraceLog, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_chrome(log), handle, sort_keys=True)


def trace_from_chrome(payload: Dict[str, Any]) -> TraceLog:
    """Rebuild a :class:`TraceLog` from :func:`trace_to_chrome` output.

    The inverse of the instant-event mapping: metadata and the derived
    ``X`` spans are skipped (they are recomputed from the instants), track
    names are folded back into each event's switch, and microseconds return
    to sim seconds.  This is how the run store reads a campaign's per-cell
    Chrome shards back into diffable :class:`TraceLog` form without the
    runner having to persist a second trace encoding.
    """
    other = payload.get("otherData") or {}
    log = TraceLog(
        technique=str(other.get("technique", "")),
        kind=str(other.get("kind", "")),
        seed=other.get("seed"),
    )
    tracks: Dict[int, str] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[int(event["tid"])] = str(
                (event.get("args") or {}).get("name", ""))
            continue
        if event.get("ph") != "i":
            continue
        track = tracks.get(int(event.get("tid", 0)), "")
        if "@" in track:
            # "faults@S2" / "recovery@S2" overlay tracks carry the switch
            # after the at-sign; plain tracks *are* the switch.
            switch = track.split("@", 1)[1]
        elif track == "controller":
            switch = ""
        else:
            switch = track
        args = event.get("args") or {}
        log.events.append(TraceEvent(
            ts=float(event["ts"]) / _US,
            phase=str(event["name"]),
            switch=switch,
            xid=args.get("xid"),
            detail=str(args.get("detail", "")),
        ))
    return log


def read_chrome_trace(path) -> TraceLog:
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_chrome(json.load(handle))


_PHASE_REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}
_VALID_PH = {"B", "E", "X", "i", "I", "M", "C", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(payload: Any) -> Optional[str]:
    """Return ``None`` if ``payload`` is a well-formed Chrome trace, else a
    human-readable reason.  This is the CI schema gate, so it is strict
    about what the exporter promises, not merely what viewers tolerate."""
    if not isinstance(payload, dict):
        return "top level must be a JSON object"
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return "missing traceEvents array"
    if not events:
        return "traceEvents is empty"
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return f"traceEvents[{i}] is not an object"
        missing = _PHASE_REQUIRED_KEYS - set(event)
        if missing:
            return f"traceEvents[{i}] missing keys: {sorted(missing)}"
        if event["ph"] not in _VALID_PH:
            return f"traceEvents[{i}] has unknown phase {event['ph']!r}"
        if event["ph"] != "M" and not isinstance(event["ts"], (int, float)):
            return f"traceEvents[{i}] ts is not numeric"
        if event["ph"] == "X" and not isinstance(event.get("dur"),
                                                 (int, float)):
            return f"traceEvents[{i}] complete event lacks numeric dur"
    return None
