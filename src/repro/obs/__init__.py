"""Observability: rule-lifecycle tracing and a lightweight metrics layer.

The paper's central phenomenon is a *timing gap* — a switch acknowledges a
FIB update before (or without ever) activating it in hardware.  This package
makes that gap a first-class measurement instead of an end-of-run aggregate:

* :mod:`repro.obs.events` — typed trace events for the rule-update
  lifecycle (``update-issued → msg-sent → switch-received → ack-sent →
  ack-received`` on the control path, ``control-applied → hw-activated`` on
  the switch), each stamped with sim-time, switch id, xid and technique,
  collected into a :class:`~repro.obs.events.TraceLog`;
* :mod:`repro.obs.tracer` — the module-level tracer the instrumented code
  consults.  The default is a :class:`~repro.obs.tracer.NullTracer` whose
  ``active`` flag short-circuits every instrumentation site, so runs with
  tracing disarmed stay byte-identical to a build without this package
  (pinned by the existing digest tests);
* :mod:`repro.obs.metrics` — counters/gauges/histograms sampled through
  :meth:`repro.sim.kernel.Simulator.every` hooks (pending-ack queue depth,
  flow-table occupancy, kernel event-loop stats);
* :mod:`repro.obs.export` — JSONL and Chrome trace-event/Perfetto
  exporters plus a schema validator for CI.

Arm tracing declaratively with ``SessionSpec(trace=True)`` (or
``ScenarioParams(trace=True)``, or ``python -m repro.campaign run --trace``);
the :class:`~repro.session.record.RunRecord` then carries the
:class:`TraceLog` and :mod:`repro.analysis.timeline` renders per-rule
activation-gap and fault-overlay reports from it.
"""

from repro.obs.events import (
    LIFECYCLE_PHASES,
    PHASE_ACK_RECEIVED,
    PHASE_ACK_SENT,
    PHASE_CONTROL_APPLIED,
    PHASE_FAULT,
    PHASE_HW_ACTIVATED,
    PHASE_MSG_SENT,
    PHASE_SWITCH_RECEIVED,
    PHASE_UPDATE_ISSUED,
    TraceEvent,
    TraceLog,
)
from repro.obs.export import (
    trace_to_chrome,
    trace_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    ProfileReport,
    Profiler,
    current_profiler,
    install_profiler,
    profiling,
    uninstall_profiler,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LIFECYCLE_PHASES",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "PHASE_ACK_RECEIVED",
    "PHASE_ACK_SENT",
    "PHASE_CONTROL_APPLIED",
    "PHASE_FAULT",
    "PHASE_HW_ACTIVATED",
    "PHASE_MSG_SENT",
    "PHASE_SWITCH_RECEIVED",
    "PHASE_UPDATE_ISSUED",
    "ProfileReport",
    "Profiler",
    "TraceEvent",
    "TraceLog",
    "Tracer",
    "current_profiler",
    "current_tracer",
    "install_profiler",
    "install_tracer",
    "profiling",
    "trace_to_chrome",
    "trace_to_jsonl",
    "tracing",
    "uninstall_profiler",
    "uninstall_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
