"""Module-level sim-profiler with a null-object fast path.

The profiling counterpart of :mod:`repro.obs.tracer`: where the tracer
records *what* the simulation did (rule lifecycles, faults, metrics), the
profiler records *where the wall time went* — per callback site, per event
class, per session phase — which is the attribution the ROADMAP's
"array-batched simulation kernel" item needs before any kernel rewrite can
claim a win.

Call sites read the module-level :data:`PROFILER` once and branch on its
``active`` flag::

    pr = profiler.PROFILER
    if pr.active:
        pr.phase("update")

With the default :class:`NullProfiler` installed that is one attribute load
and one false branch — no allocation, no call — so runs with profiling
disarmed behave (and digest) exactly as if this module did not exist.

An armed :class:`Profiler` additionally rides the kernel's event-observer
hook (:func:`repro.sim.kernel.install_observer`): the observer fires
immediately before each dispatched callback, so the wall time and the
schedule-sequence delta between two consecutive observer calls belong to
the *earlier* callback — per-site wall attribution and a deterministic
heap-churn count (callbacks scheduled while the site ran) without touching
the kernel loop itself.  Observers only read; a profiled run computes the
same outcome (and digest) as the identical unprofiled run.

This module is allowlisted for RL002: reading ``time.perf_counter`` and
``tracemalloc`` is the entire point of a profiler, and nothing it measures
feeds back into simulation state.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional


class NullProfiler:
    """Inert profiler: ``active`` is a class attribute, methods are no-ops."""

    active = False

    def phase(self, name: str) -> None:
        """Open a named session phase (no-op)."""

    def sample(self, name: str, value: float = 1.0) -> None:
        """Accumulate an ad-hoc named quantity (no-op)."""


class ProfileReport:
    """The frozen output of one profiled session.

    ``callbacks`` rows carry ``site`` (module-qualified callback name),
    ``calls``, ``wall_s`` and ``scheduled`` (callbacks the site scheduled —
    its event-heap churn).  ``phases`` rows carry ``name``, ``wall_s``,
    ``events`` and — when tracemalloc was live — ``alloc_kb``/``peak_kb``
    memory splits.  ``calls``, ``scheduled`` and ``events`` are
    deterministic for a fixed seed; wall and memory numbers are measurements
    of the host, which is why the whole report is popped from
    :meth:`repro.session.record.RunRecord.digest`.
    """

    def __init__(self, technique: str = "", kind: str = "",
                 seed: Optional[int] = None,
                 callbacks: Optional[List[Dict[str, object]]] = None,
                 phases: Optional[List[Dict[str, object]]] = None,
                 samples: Optional[Dict[str, float]] = None,
                 totals: Optional[Dict[str, object]] = None,
                 meta: Optional[Dict[str, object]] = None) -> None:
        self.technique = technique
        self.kind = kind
        self.seed = seed
        self.callbacks = list(callbacks or [])
        self.phases = list(phases or [])
        self.samples = dict(samples or {})
        self.totals = dict(totals or {})
        self.meta = dict(meta or {})

    def __bool__(self) -> bool:
        return bool(self.callbacks or self.phases or self.totals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProfileReport):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def by_class(self) -> List[Dict[str, object]]:
        """Callback rows aggregated by event class (owning class or module).

        ``repro.sim.process.Process._resume`` and ``Process._start`` fold
        into one ``Process`` row; module-level functions fold into their
        module's last component.
        """
        grouped: Dict[str, List[float]] = {}
        for row in self.callbacks:
            parts = str(row["site"]).split(".")
            owner = parts[-2] if len(parts) >= 2 else parts[-1]
            stats = grouped.setdefault(owner, [0, 0.0, 0])
            stats[0] += int(row.get("calls", 0))
            stats[1] += float(row.get("wall_s", 0.0))
            stats[2] += int(row.get("scheduled", 0))
        return [
            {"event_class": owner, "calls": stats[0],
             "wall_s": round(stats[1], 6), "scheduled": stats[2]}
            for owner, stats in sorted(grouped.items())
        ]

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form; :meth:`from_dict` round-trips it."""
        payload: Dict[str, object] = {
            "technique": self.technique,
            "kind": self.kind,
            "seed": self.seed,
            "callbacks": [dict(row) for row in self.callbacks],
            "phases": [dict(row) for row in self.phases],
            "totals": dict(self.totals),
        }
        if self.samples:
            payload["samples"] = dict(self.samples)
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProfileReport":
        return cls(
            technique=payload.get("technique", ""),
            kind=payload.get("kind", ""),
            seed=payload.get("seed"),
            callbacks=list(payload.get("callbacks") or []),
            phases=list(payload.get("phases") or []),
            samples=dict(payload.get("samples") or {}),
            totals=dict(payload.get("totals") or {}),
            meta=dict(payload.get("meta") or {}),
        )


class Profiler(NullProfiler):
    """Collecting profiler: attaches to a simulator's event-observer hook."""

    active = True

    def __init__(self, technique: str = "", kind: str = "",
                 seed: Optional[int] = None) -> None:
        self.technique = technique
        self.kind = kind
        self.seed = seed
        self._sim = None
        #: callback function object -> module-qualified site label.  Keyed on
        #: the underlying function (``__func__`` for bound methods) so every
        #: instance of a class folds into one site.
        self._sites: Dict[object, str] = {}
        #: site -> [calls, wall_s, scheduled]
        self._stats: Dict[str, List] = {}
        self._samples: Dict[str, float] = {}
        self._phases: List[Dict[str, object]] = []
        self._phase_name: Optional[str] = None
        self._phase_started = 0.0
        self._phase_events_start = 0
        self._phase_mem_start = 0
        self._pending_site: Optional[str] = None
        self._last_ts = 0.0
        self._last_seq = 0
        self._events = 0
        self._attached_ts: Optional[float] = None
        self._total_wall = 0.0
        self._own_tracemalloc = False

    # -- lifecycle -----------------------------------------------------------
    def attach(self, sim) -> None:
        """Start observing ``sim``'s event stream (kernel observer hook).

        Must run before the session's first ``sim.run(...)`` call:
        :meth:`repro.sim.kernel.Simulator.run` binds the observer locally at
        entry.  Starts ``tracemalloc`` for the per-phase memory splits
        unless an outer consumer is already tracing.
        """
        from repro.sim.kernel import install_observer

        if self._sim is not None:
            raise RuntimeError("profiler is already attached to a simulator")
        self._sim = sim
        install_observer(self._observe)
        self._own_tracemalloc = not tracemalloc.is_tracing()
        if self._own_tracemalloc:
            tracemalloc.start()
        self._attached_ts = perf_counter()
        self._last_ts = self._attached_ts
        self._last_seq = sim.schedule_sequence

    def detach(self) -> None:
        """Stop observing; idempotent (finish and uninstall both call it)."""
        from repro.sim.kernel import uninstall_observer

        if self._sim is None:
            return
        now = perf_counter()
        self._close_pending(now)
        self._close_phase(now)
        if self._attached_ts is not None:
            self._total_wall += now - self._attached_ts
            self._attached_ts = None
        uninstall_observer()
        if self._own_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._own_tracemalloc = False
        self._sim = None

    # -- emission ------------------------------------------------------------
    def phase(self, name: str) -> None:
        """Open the named phase, closing the previous one."""
        now = perf_counter()
        self._close_phase(now)
        self._phase_name = name
        self._phase_started = now
        self._phase_events_start = self._events
        if tracemalloc.is_tracing():
            self._phase_mem_start = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()

    def sample(self, name: str, value: float = 1.0) -> None:
        self._samples[name] = self._samples.get(name, 0.0) + value

    # -- the kernel observer ---------------------------------------------------
    def _observe(self, time: float, callback, args) -> None:
        """Kernel tap: close out the previous callback, open this one.

        The wall/heap-churn window between two observer firings is the
        previous callback plus the kernel-loop overhead that followed it —
        exactly the cost an array-batched kernel could remove.
        """
        now = perf_counter()
        seq = self._sim.schedule_sequence
        self._close_pending(now, seq)
        func = getattr(callback, "__func__", callback)
        site = self._sites.get(func)
        if site is None:
            site = (f"{getattr(func, '__module__', '?')}."
                    f"{getattr(func, '__qualname__', repr(func))}")
            self._sites[func] = site
        self._pending_site = site
        self._last_ts = now
        self._last_seq = seq
        self._events += 1

    def _close_pending(self, now: float, seq: Optional[int] = None) -> None:
        site = self._pending_site
        if site is None:
            return
        if seq is None:
            seq = self._sim.schedule_sequence if self._sim is not None else self._last_seq
        stats = self._stats.get(site)
        if stats is None:
            stats = self._stats[site] = [0, 0.0, 0]
        stats[0] += 1
        stats[1] += now - self._last_ts
        stats[2] += seq - self._last_seq
        self._pending_site = None

    def _close_phase(self, now: float) -> None:
        if self._phase_name is None:
            return
        row: Dict[str, object] = {
            "name": self._phase_name,
            "wall_s": round(now - self._phase_started, 6),
            "events": self._events - self._phase_events_start,
        }
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            row["alloc_kb"] = round((current - self._phase_mem_start) / 1024.0, 1)
            row["peak_kb"] = round(peak / 1024.0, 1)
        self._phases.append(row)
        self._phase_name = None

    # -- output ----------------------------------------------------------------
    def finish(self, meta: Optional[dict] = None) -> ProfileReport:
        """Detach and freeze the attribution into a :class:`ProfileReport`."""
        self.detach()
        callbacks = [
            {"site": site, "calls": stats[0],
             "wall_s": round(stats[1], 6), "scheduled": stats[2]}
            for site, stats in sorted(self._stats.items())
        ]
        totals = {
            "events": self._events,
            "wall_s": round(self._total_wall, 6),
            "scheduled": sum(stats[2] for stats in self._stats.values()),
        }
        return ProfileReport(
            technique=self.technique,
            kind=self.kind,
            seed=self.seed,
            callbacks=callbacks,
            phases=list(self._phases),
            samples=dict(sorted(self._samples.items())),
            totals=totals,
            meta=dict(meta or {}),
        )


#: Shared inert instance; ``PROFILER`` points here unless a session armed
#: profiling.  Hot paths must re-read ``profiler.PROFILER`` per call site
#: (cheap) rather than caching it across sim runs.
NULL_PROFILER = NullProfiler()

PROFILER: NullProfiler = NULL_PROFILER


def current_profiler() -> NullProfiler:
    return PROFILER


def install_profiler(pr: Profiler) -> Profiler:
    """Make ``pr`` the process-wide profiler; returns it for chaining."""
    global PROFILER
    if PROFILER is not NULL_PROFILER:
        raise RuntimeError("a profiler is already installed; "
                           "profiled sessions cannot nest")
    PROFILER = pr
    return pr


def uninstall_profiler() -> None:
    """Restore the null object, detaching any live kernel observer first."""
    global PROFILER
    installed = PROFILER
    PROFILER = NULL_PROFILER
    if isinstance(installed, Profiler):
        installed.detach()


@contextmanager
def profiling(technique: str = "", kind: str = "",
              seed: Optional[int] = None) -> Iterator[Profiler]:
    """Arm a fresh ``Profiler`` for the duration of a ``with`` block."""
    pr = install_profiler(Profiler(technique=technique, kind=kind, seed=seed))
    try:
        yield pr
    finally:
        uninstall_profiler()
