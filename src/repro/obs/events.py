"""Typed trace events for the rule-update lifecycle.

A single FIB update travels ``update-issued → msg-sent → switch-received →
control-applied → ack-sent → ack-received`` on the control path, with the
hardware ground truth arriving (possibly much later, possibly never) as
``hw-activated``.  Every event is stamped with the simulation time, the
switch it concerns, the OpenFlow transaction id tying the phases of one
rule together, and the technique under test.  ``fault`` events record each
activation of an armed fault model so timelines can overlay exactly what
the fault subsystem was doing when a gap opened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

PHASE_UPDATE_ISSUED = "update-issued"
PHASE_MSG_SENT = "msg-sent"
PHASE_SWITCH_RECEIVED = "switch-received"
PHASE_CONTROL_APPLIED = "control-applied"
PHASE_ACK_SENT = "ack-sent"
PHASE_ACK_RECEIVED = "ack-received"
PHASE_HW_ACTIVATED = "hw-activated"
PHASE_FAULT = "fault"
# Recovery overlay (see :mod:`repro.recovery`): a shadow replay after a
# switch reconnect. Deliberately *not* part of LIFECYCLE_PHASES — resync
# spans live beside rule lifecycles, they are not a phase of one rule.
PHASE_RESYNC_STARTED = "resync-started"
PHASE_RULE_REINSTALLED = "rule-reinstalled"
PHASE_RESYNC_COMPLETE = "resync-complete"

#: Lifecycle phases in causal order (``fault`` is an overlay, not a phase).
LIFECYCLE_PHASES: Tuple[str, ...] = (
    PHASE_UPDATE_ISSUED,
    PHASE_MSG_SENT,
    PHASE_SWITCH_RECEIVED,
    PHASE_CONTROL_APPLIED,
    PHASE_ACK_SENT,
    PHASE_ACK_RECEIVED,
    PHASE_HW_ACTIVATED,
)

_KNOWN_PHASES = set(LIFECYCLE_PHASES) | {
    PHASE_FAULT,
    PHASE_RESYNC_STARTED,
    PHASE_RULE_REINSTALLED,
    PHASE_RESYNC_COMPLETE,
}


class TraceEvent:
    """One timestamped observation; slotted — traced runs emit thousands."""

    __slots__ = ("ts", "phase", "switch", "xid", "detail")

    def __init__(self, ts: float, phase: str, switch: str = "",
                 xid: Optional[int] = None, detail: str = "") -> None:
        self.ts = ts
        self.phase = phase
        self.switch = switch
        self.xid = xid
        self.detail = detail

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"ts": self.ts, "phase": self.phase}
        if self.switch:
            out["switch"] = self.switch
        if self.xid is not None:
            out["xid"] = self.xid
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        return cls(ts=payload["ts"], phase=payload["phase"],
                   switch=payload.get("switch", ""),
                   xid=payload.get("xid"),
                   detail=payload.get("detail", ""))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.ts == other.ts and self.phase == other.phase
                and self.switch == other.switch and self.xid == other.xid
                and self.detail == other.detail)

    def __repr__(self) -> str:
        return (f"TraceEvent(ts={self.ts!r}, phase={self.phase!r}, "
                f"switch={self.switch!r}, xid={self.xid!r}, "
                f"detail={self.detail!r})")


@dataclass
class TraceLog:
    """Everything a traced session observed, ready to serialize.

    ``metrics`` holds the sampled time series from the metrics registry
    (name → list of ``[ts, value]`` pairs for gauges/histogram observations,
    or a final count for counters — see :mod:`repro.obs.metrics`).
    """

    technique: str = ""
    kind: str = ""
    seed: Optional[int] = None
    events: List[TraceEvent] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.events or self.metrics)

    def __len__(self) -> int:
        return len(self.events)

    def phases(self) -> Dict[str, int]:
        """Event count per phase — a quick sanity view of coverage."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.phase] = counts.get(event.phase, 0) + 1
        return counts

    def filtered(self, phase: Optional[str] = None,
                 switch: Optional[str] = None,
                 xid: Optional[int] = None) -> Iterable[TraceEvent]:
        for event in self.events:
            if phase is not None and event.phase != phase:
                continue
            if switch is not None and event.switch != switch:
                continue
            if xid is not None and event.xid != xid:
                continue
            yield event

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "technique": self.technique,
            "kind": self.kind,
            "events": [event.as_dict() for event in self.events],
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.metrics:
            out["metrics"] = self.metrics
        if self.meta:
            out["meta"] = self.meta
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceLog":
        return cls(
            technique=payload.get("technique", ""),
            kind=payload.get("kind", ""),
            seed=payload.get("seed"),
            events=[TraceEvent.from_dict(item)
                    for item in payload.get("events", [])],
            metrics=dict(payload.get("metrics", {})),
            meta=dict(payload.get("meta", {})),
        )


def known_phase(phase: str) -> bool:
    return phase in _KNOWN_PHASES
