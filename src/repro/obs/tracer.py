"""Module-level tracer with a null-object fast path.

Instrumentation sites throughout the stack read the module-level
:data:`TRACER` once and branch on its ``active`` flag::

    tr = tracer.TRACER
    if tr.active:
        tr.rule(PHASE_MSG_SENT, self.sim.now, self.name, message.xid)

With the default :class:`NullTracer` installed that is one attribute load
and one false branch — no allocation, no call — so runs with tracing
disarmed behave (and digest) exactly as if this package did not exist.
:func:`install_tracer` rebinds the global for a traced session and
:func:`uninstall_tracer` restores the null object; the session engine wraps
the pair in ``try/finally`` so a crashing run cannot leak an active tracer
into the next one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import PHASE_FAULT, TraceEvent, TraceLog
from repro.obs.metrics import MetricsRegistry


class NullTracer:
    """Inert tracer: ``active`` is a class attribute, methods are no-ops."""

    active = False

    def rule(self, phase: str, ts: float, switch: str = "",
             xid: Optional[int] = None, detail: str = "") -> None:
        """Record a lifecycle event (no-op)."""

    def fault(self, ts: float, switch: str = "", detail: str = "") -> None:
        """Record a fault-model activation (no-op)."""

    def count(self, name: str, n: int = 1) -> None:
        """Bump a counter (no-op)."""

    def gauge(self, name: str, ts: float, value: float) -> None:
        """Record a gauge sample (no-op)."""

    def observe(self, name: str, ts: float, value: float) -> None:
        """Record a histogram observation (no-op)."""


class Tracer(NullTracer):
    """Collecting tracer: appends slotted events, feeds a metrics registry."""

    active = True

    def __init__(self, technique: str = "", kind: str = "",
                 seed: Optional[int] = None) -> None:
        self.technique = technique
        self.kind = kind
        self.seed = seed
        self.events: list = []
        self.metrics = MetricsRegistry()

    def rule(self, phase: str, ts: float, switch: str = "",
             xid: Optional[int] = None, detail: str = "") -> None:
        self.events.append(TraceEvent(ts, phase, switch, xid, detail))

    def fault(self, ts: float, switch: str = "", detail: str = "") -> None:
        self.events.append(TraceEvent(ts, PHASE_FAULT, switch, None, detail))

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, ts: float, value: float) -> None:
        self.metrics.gauge(name).set(ts, value)

    def observe(self, name: str, ts: float, value: float) -> None:
        self.metrics.histogram(name).observe(ts, value)

    def finish(self, meta: Optional[dict] = None) -> TraceLog:
        """Freeze the collected events + metrics into a ``TraceLog``."""
        log = TraceLog(technique=self.technique, kind=self.kind,
                       seed=self.seed, events=self.events,
                       metrics=self.metrics.as_dict())
        if meta:
            log.meta.update(meta)
        return log


#: Shared inert instance; ``TRACER`` points here unless a session armed
#: tracing.  Hot paths must re-read ``tracer.TRACER`` per call site (cheap)
#: rather than caching it across sim runs.
NULL_TRACER = NullTracer()

TRACER: NullTracer = NULL_TRACER


def current_tracer() -> NullTracer:
    return TRACER


def install_tracer(tr: Tracer) -> Tracer:
    """Make ``tr`` the process-wide tracer; returns it for chaining."""
    global TRACER
    if TRACER is not NULL_TRACER:
        raise RuntimeError("a tracer is already installed; "
                           "traced sessions cannot nest")
    TRACER = tr
    return tr


def uninstall_tracer() -> None:
    global TRACER
    TRACER = NULL_TRACER


@contextmanager
def tracing(technique: str = "", kind: str = "",
            seed: Optional[int] = None) -> Iterator[Tracer]:
    """Arm a fresh ``Tracer`` for the duration of a ``with`` block."""
    tr = install_tracer(Tracer(technique=technique, kind=kind, seed=seed))
    try:
        yield tr
    finally:
        uninstall_tracer()
