"""Probe packet generation for the general probing technique.

Given the rule RUM wants to confirm (at switch B) and the control-plane view
of B's flow table, build the header values of a packet that

1. matches the probed rule once the rule is installed,
2. carries the probe-catch value ``S_C`` of the next-hop switch C in the
   reserved field H (so C reports it to the controller),
3. is *not* captured by any higher-priority rule overlapping the probed rule
   (otherwise the probe never exercises the probed rule), and
4. is distinguishable from what happens while the probed rule is still
   absent: the lower-priority rule that would match the probe must have a
   different externally observable forwarding behaviour (different output
   port or different rewrites) — a probe that is forwarded identically either
   way proves nothing.

Exact probe generation is NP-hard in general (the paper cites header-space
work); like those systems we use a heuristic that works for realistic tables:
start from a packet inside the probed rule's match and perturb the fields the
rule leaves wildcarded to escape conflicting higher-priority rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.openflow.actions import Action, actions_signature
from repro.openflow.match import Match
from repro.packet.fields import (
    ETH_TYPE_IP,
    FIELD_REGISTRY,
    HeaderField,
    IP_PROTO_UDP,
)


class ProbeGenerationError(RuntimeError):
    """Raised when no usable probe packet exists for a rule.

    RUM reacts to this by falling back to a control-plane technique for the
    affected rule (Section 3.2.2, "Overlapping rules").
    """


@dataclass(frozen=True)
class RuleView:
    """The minimal view of a flow-table entry probe generation needs."""

    match: Match
    priority: int
    actions: Tuple[Action, ...]

    @classmethod
    def from_flowmod(cls, flowmod) -> "RuleView":
        """Build a view from a FlowMod."""
        return cls(match=flowmod.match, priority=flowmod.priority,
                   actions=tuple(flowmod.actions))

    @classmethod
    def from_entry(cls, entry) -> "RuleView":
        """Build a view from a FlowEntry."""
        return cls(match=entry.match, priority=entry.priority, actions=tuple(entry.actions))

    def forwarding_signature(self) -> Tuple:
        """Hashable summary of the rule's externally observable behaviour."""
        return actions_signature(self.actions)


#: Baseline header values of a probe packet before rule constraints are applied.
_DEFAULT_HEADERS: Dict[HeaderField, int] = {
    HeaderField.ETH_SRC: 0x0000DEADBEEF,
    HeaderField.ETH_DST: 0x0000CAFEBABE,
    HeaderField.ETH_TYPE: ETH_TYPE_IP,
    HeaderField.VLAN_ID: 0,
    HeaderField.VLAN_PCP: 0,
    HeaderField.IP_SRC: 0x0A00FE01,
    HeaderField.IP_DST: 0x0A00FE02,
    HeaderField.IP_PROTO: IP_PROTO_UDP,
    HeaderField.IP_TOS: 0,
    HeaderField.TP_SRC: 40000,
    HeaderField.TP_DST: 40001,
}

#: Fields the perturbation heuristic is allowed to vary when escaping a
#: conflicting higher-priority rule (transport ports and addresses are the
#: fields realistic ACL/forwarding tables discriminate on).
_PERTURBABLE_FIELDS = (
    HeaderField.TP_SRC,
    HeaderField.TP_DST,
    HeaderField.IP_SRC,
    HeaderField.IP_DST,
    HeaderField.VLAN_PCP,
)


def probe_key(headers: Dict[HeaderField, int]) -> Tuple:
    """Canonical hashable identity of a probe packet's headers.

    RUM uses this key to associate a returning PacketIn with the pending rule
    whose probe it is — matching on the packet contents, not on any metadata
    that would not survive a real network.
    """
    interesting = (
        HeaderField.IP_SRC,
        HeaderField.IP_DST,
        HeaderField.IP_PROTO,
        HeaderField.IP_TOS,
        HeaderField.TP_SRC,
        HeaderField.TP_DST,
        HeaderField.VLAN_ID,
    )
    return tuple(headers.get(field, 0) for field in interesting)


def _packet_matches(match: Match, headers: Dict[HeaderField, int]) -> bool:
    for field, (value, mask) in match.fields.items():
        if (headers.get(field, 0) & mask) != value:
            return False
    return True


def _conflicting_rules(
    headers: Dict[HeaderField, int],
    probed: RuleView,
    table: Sequence[RuleView],
) -> List[RuleView]:
    """Higher-priority rules that would capture the probe before the probed rule."""
    return [
        rule
        for rule in table
        if rule.priority > probed.priority
        and not (rule.match.exact_same(probed.match) and rule.priority == probed.priority)
        and _packet_matches(rule.match, headers)
    ]


def _shadowing_rule(
    headers: Dict[HeaderField, int],
    probed: RuleView,
    table: Sequence[RuleView],
) -> Optional[RuleView]:
    """The rule that matches the probe while the probed rule is absent."""
    candidates = [
        rule
        for rule in table
        if _packet_matches(rule.match, headers)
        and not (rule.match.exact_same(probed.match) and rule.priority == probed.priority)
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda rule: rule.priority)


def generate_probe_headers(
    probed: RuleView,
    table: Sequence[RuleView],
    overrides: Optional[Dict[HeaderField, int]] = None,
    max_attempts: int = 16,
) -> Dict[HeaderField, int]:
    """Header values of a probe packet for ``probed`` given B's table.

    ``overrides`` carries the values RUM must force into the packet — the
    probe-catch value of the next-hop switch in the reserved field, for
    example.  Raises :class:`ProbeGenerationError` when the rule cannot be
    probed (covered by higher-priority rules, indistinguishable from a
    lower-priority rule, or conflicting with the required overrides).
    """
    overrides = dict(overrides or {})

    # Requirement: the probed rule must not pin an overridden field to a
    # different value, otherwise the probe cannot both match the rule and
    # carry the catch value.
    for field, value in overrides.items():
        required = probed.match.value_of(field)
        if required is not None and required != value:
            raise ProbeGenerationError(
                f"probed rule constrains {field} to {required}, "
                f"but probing requires value {value}"
            )
        if not probed.match.is_wildcard(field) and probed.match.value_of(field) is None:
            raise ProbeGenerationError(
                f"probed rule uses a masked match on {field}; probing field must be free"
            )

    headers: Dict[HeaderField, int] = dict(_DEFAULT_HEADERS)
    headers.update(probed.match.example_packet_headers())
    headers.update(overrides)

    attempt = 0
    perturb_index = 0
    while attempt < max_attempts:
        attempt += 1
        conflicts = _conflicting_rules(headers, probed, table)
        if not conflicts:
            break
        # Try to escape the first conflict by changing a field the probed
        # rule leaves wildcarded (so the probe still matches the probed rule)
        # and that is not pinned by an override.
        escaped = False
        for field in _PERTURBABLE_FIELDS:
            if field in overrides or not probed.match.is_wildcard(field):
                continue
            spec = FIELD_REGISTRY[field]
            new_value = (headers.get(field, 0) + 7919 + perturb_index) % (spec.max_value + 1)
            perturb_index += 1
            candidate = dict(headers)
            candidate[field] = new_value
            if not _conflicting_rules(candidate, probed, table):
                headers = candidate
                escaped = True
                break
        if not escaped:
            raise ProbeGenerationError(
                "probed rule is covered by higher-priority rules; no probe packet escapes them"
            )
    else:
        raise ProbeGenerationError(
            f"could not find a conflict-free probe packet in {max_attempts} attempts"
        )

    shadow = _shadowing_rule(headers, probed, table)
    if shadow is not None and shadow.forwarding_signature() == probed.forwarding_signature():
        raise ProbeGenerationError(
            "a lower-priority rule forwards the probe identically to the probed rule; "
            "the probe cannot distinguish them"
        )
    return headers
