"""Probing algorithms used by RUM's data-plane acknowledgment techniques.

* :mod:`repro.probing.coloring` — Welsh–Powell vertex colouring of the switch
  adjacency graph, used to assign each switch a probe-catch identifier while
  keeping the number of reserved header-field values small (Section 3.2.2,
  "Reducing the number of switch-specific values").
* :mod:`repro.probing.catch_rules` — constructors for the probe-catch and
  versioned probe rules that the sequential and general techniques preinstall.
* :mod:`repro.probing.probe_packets` — probe packet generation for the general
  technique, including the overlapping-rule checks: the probe must not be
  captured by a higher-priority rule, and it must be distinguishable from the
  lower-priority rules it would hit while the probed rule is absent.
"""

from repro.probing.coloring import assign_switch_values, welsh_powell_coloring
from repro.probing.catch_rules import (
    PROBE_CATCH_PRIORITY,
    PROBE_RULE_PRIORITY,
    general_catch_flowmod,
    sequential_catch_flowmod,
    sequential_probe_rule_flowmod,
)
from repro.probing.probe_packets import (
    ProbeGenerationError,
    RuleView,
    generate_probe_headers,
    probe_key,
)

__all__ = [
    "PROBE_CATCH_PRIORITY",
    "PROBE_RULE_PRIORITY",
    "ProbeGenerationError",
    "RuleView",
    "assign_switch_values",
    "general_catch_flowmod",
    "generate_probe_headers",
    "probe_key",
    "sequential_catch_flowmod",
    "sequential_probe_rule_flowmod",
    "welsh_powell_coloring",
]
