"""Vertex colouring of the switch graph.

The general probing technique assigns every switch ``i`` a value ``S_i`` of
the reserved header field ``H``; the probe-catch rule at switch ``i`` sends
every packet with ``H == S_i`` to the controller.  Correctness only requires
*adjacent* switches to use different values (otherwise the tested switch
would capture its own probe before forwarding it), so the number of distinct
values can be reduced from one-per-switch to the chromatic number of the
switch graph.  The paper points to the classic Welsh–Powell heuristic, which
is what :func:`welsh_powell_coloring` implements.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx


def welsh_powell_coloring(graph: nx.Graph) -> Dict[str, int]:
    """Colour ``graph`` greedily in order of decreasing degree.

    Returns a mapping ``node -> colour`` with colours numbered from 0.  The
    classic Welsh–Powell bound guarantees at most ``max_degree + 1`` colours.
    """
    nodes_by_degree: List[str] = sorted(
        graph.nodes, key=lambda node: (-graph.degree[node], str(node))
    )
    coloring: Dict[str, int] = {}
    next_color = 0
    for node in nodes_by_degree:
        if node in coloring:
            continue
        coloring[node] = next_color
        # Try to reuse the current colour on every other not-yet-coloured
        # node that has no coloured-with-this-colour neighbour.
        for candidate in nodes_by_degree:
            if candidate in coloring:
                continue
            if all(coloring.get(neighbor) != next_color
                   for neighbor in graph.neighbors(candidate)):
                coloring[candidate] = next_color
        next_color += 1
    return coloring


def validate_coloring(graph: nx.Graph, coloring: Dict[str, int]) -> bool:
    """Whether no two adjacent nodes share a colour."""
    return all(coloring[a] != coloring[b] for a, b in graph.edges)


def assign_switch_values(
    graph: nx.Graph,
    *,
    first_value: int = 1,
    max_value: Optional[int] = None,
    unique: bool = False,
) -> Dict[str, int]:
    """Assign each switch the header-field value used by its probe-catch rule.

    Parameters
    ----------
    graph:
        Switch adjacency graph (hosts excluded).
    first_value:
        Smallest value to hand out; value 0 is typically reserved for live
        traffic, which must never collide with a probe-catch value.
    max_value:
        Largest representable value of the chosen header field (e.g. 63 for
        the ToS field the prototype uses).  Raises :class:`ValueError` when
        the assignment does not fit.
    unique:
        Assign a network-wide unique value per switch instead of colouring —
        the naive scheme the colouring optimisation improves on (kept for the
        ablation benchmark).
    """
    if unique:
        values = {node: first_value + index
                  for index, node in enumerate(sorted(graph.nodes, key=str))}
    else:
        coloring = welsh_powell_coloring(graph)
        values = {node: first_value + color for node, color in coloring.items()}
    if max_value is not None and values:
        largest = max(values.values())
        if largest > max_value:
            raise ValueError(
                f"switch value assignment needs values up to {largest}, "
                f"but the probing field only holds {max_value}"
            )
    return values
