"""Constructors for the rules RUM preinstalls to support data-plane probing.

Two families of rules exist (Sections 3.2.1 and 3.2.2 of the paper):

* sequential probing uses two reserved values (*preprobe*, *postprobe*) of a
  header field H1 plus a version stored in H2: every switch carries a
  *probe-catch* rule (``H1 == postprobe -> controller``) and one *probe rule*
  (``H1 == preprobe -> set H1=postprobe, set H2=version, forward to C``)
  whose version RUM rewrites after each batch of real modifications;
* general probing reserves a single field H and gives each switch ``i`` a
  value ``S_i``; the only preinstalled rule is the probe-catch rule
  (``H == S_i -> controller``).

The priorities are chosen so the probing rules win on priority-based switches
and, because RUM installs them before any experiment traffic rules, they also
win on installation-order switches such as the paper's hardware switch.
"""

from __future__ import annotations

from repro.openflow.actions import ControllerAction, OutputAction, SetFieldAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.packet.fields import FIELD_REGISTRY, HeaderField

#: Priority of the probe-catch (send to controller) rules.
PROBE_CATCH_PRIORITY = 65000
#: Priority of the versioned probe (rewrite) rules.
PROBE_RULE_PRIORITY = 64000


def _validate_field_value(field: HeaderField, value: int) -> None:
    FIELD_REGISTRY[HeaderField(field)].validate(value)


def general_catch_flowmod(field: HeaderField | str, switch_value: int,
                          priority: int = PROBE_CATCH_PRIORITY) -> FlowMod:
    """The probe-catch rule of the general technique for one switch.

    Matches every packet whose reserved field carries this switch's value and
    sends it to the controller.
    """
    field = HeaderField(field)
    _validate_field_value(field, switch_value)
    return FlowMod(
        Match(**{field.value: switch_value}),
        [ControllerAction()],
        priority=priority,
    )


def sequential_catch_flowmod(h1_field: HeaderField | str, postprobe_value: int,
                             priority: int = PROBE_CATCH_PRIORITY) -> FlowMod:
    """The probe-catch rule of the sequential technique.

    Matches every post-probe packet (``H1 == postprobe``) regardless of the
    version stored in H2 and sends it to the controller.
    """
    h1_field = HeaderField(h1_field)
    _validate_field_value(h1_field, postprobe_value)
    return FlowMod(
        Match(**{h1_field.value: postprobe_value}),
        [ControllerAction()],
        priority=priority,
    )


def sequential_probe_rule_flowmod(
    h1_field: HeaderField | str,
    preprobe_value: int,
    postprobe_value: int,
    h2_field: HeaderField | str,
    version: int,
    output_port: int,
    priority: int = PROBE_RULE_PRIORITY,
) -> FlowMod:
    """The versioned probe rule installed at (and later modified on) the
    probed switch.

    Matches pre-probe packets, rewrites them into post-probes carrying the
    current ``version`` in H2, and forwards them towards the neighbour whose
    probe-catch rule will report them to the controller.
    """
    h1_field = HeaderField(h1_field)
    h2_field = HeaderField(h2_field)
    if h1_field == h2_field:
        raise ValueError("H1 and H2 must be different header fields")
    _validate_field_value(h1_field, preprobe_value)
    _validate_field_value(h1_field, postprobe_value)
    _validate_field_value(h2_field, version)
    if preprobe_value == postprobe_value:
        raise ValueError("preprobe and postprobe values must differ")
    return FlowMod(
        Match(**{h1_field.value: preprobe_value}),
        [
            SetFieldAction(h1_field, postprobe_value),
            SetFieldAction(h2_field, version),
            OutputAction(output_port),
        ],
        priority=priority,
    )
