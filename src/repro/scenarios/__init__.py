"""Scenario subsystem: topology generators, a scenario registry, an engine.

Importing this package registers the built-in scenarios:

====================  =====================================================
``path-migration``    shortest → next-shortest path migration, any topology
``link-failure``      drain a link of the active path and reroute around it
``firewall-rollout``  roll an HTTP-drop policy hop by hop along a path
``ecmp-rebalance``    spread spine-pinned flows across all spines
``fault-sweep``       path migration under injected faults (``--faults``)
``rolling-upgrade``   staggered crash wave across a fat-tree pod (recovery)
``correlated-tor-outage``  ToR crash + uplink flap, one correlated group
====================  =====================================================

Typical use::

    from repro.scenarios import ScenarioParams, run_scenario

    result = run_scenario("path-migration", "general",
                          ScenarioParams(topology="fat-tree", scale=1))
    print(result.as_dict())
"""

from repro.scenarios.base import (
    SCENARIOS,
    Scenario,
    ScenarioParams,
    available_scenarios,
    get_scenario,
    register,
)
from repro.scenarios.engine import ScenarioRunResult, run_scenario, scenario_session
from repro.scenarios.generators import (
    TOPOLOGY_FAMILIES,
    build_topology,
    fat_tree,
    leaf_spine,
    random_waxman,
    ring,
)

# Importing the scenario modules populates the registry.
from repro.scenarios import failure as _failure  # noqa: F401
from repro.scenarios import fault_sweep as _fault_sweep  # noqa: F401
from repro.scenarios import firewall_rollout as _firewall_rollout  # noqa: F401
from repro.scenarios import migration as _migration  # noqa: F401
from repro.scenarios import rebalance as _rebalance  # noqa: F401
from repro.scenarios import rolling as _rolling  # noqa: F401

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioParams",
    "ScenarioRunResult",
    "TOPOLOGY_FAMILIES",
    "available_scenarios",
    "build_topology",
    "fat_tree",
    "get_scenario",
    "leaf_spine",
    "random_waxman",
    "register",
    "ring",
    "run_scenario",
    "scenario_session",
]
