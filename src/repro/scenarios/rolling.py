"""Recovery-centric outage scenarios: rolling upgrades and correlated failures.

Both scenarios run the generalized path migration of
:class:`~repro.scenarios.migration.PathMigrationScenario` on a fat-tree and
layer a *timeline* of lifecycle faults on top, exercising the controller-side
recovery subsystem (:mod:`repro.recovery`):

* ``rolling-upgrade`` — a staggered crash wave across every switch of pod 0
  (the pod the tracked flows ingress through), the simulated analogue of a
  rolling firmware upgrade.  Each switch crashes, reboots with wiped tables,
  and — when recovery is armed — gets its intended rules replayed from the
  controller's shadow state.
* ``correlated-tor-outage`` — one correlated failure group: the pod-0 edge
  (ToR) switch crashes while its aggregation uplink flaps, the classic
  "power event takes out the rack and wobbles the uplink" incident.

Both default recovery **on** (sweep ``--recovery off`` for the ablation) and
report the convergence accounting through ``RunRecord.recovery``.
"""

from __future__ import annotations

from typing import Dict

from repro.controller.update_plan import UpdatePlan
from repro.faults.plan import FaultPlan
from repro.net.network import Network
from repro.recovery.policy import NO_RECOVERY, RecoveryPolicy
from repro.scenarios.base import register
from repro.scenarios.migration import PathMigrationScenario


#: The stock ``ScenarioParams.grace`` — used to detect "caller kept the
#: default", which is too short to see the whole outage timeline play out.
_STOCK_GRACE = PathMigrationScenario().params.grace


class _RecoveryScenario(PathMigrationScenario):
    """Shared plumbing: recovery defaults on; damage metrics on top."""

    #: Subclasses set the timeline armed when ``params.faults`` is unset.
    default_timeline = ""
    #: Post-update traffic window long enough for every crash in the default
    #: timeline to restore *and* for post-restore forwarding to be observed.
    default_grace = 1.6

    def __init__(self, params=None) -> None:
        super().__init__(params)
        if self.params.grace == _STOCK_GRACE:
            self.params = self.params.scaled(grace=self.default_grace)

    def fault_plan(self) -> FaultPlan:
        return FaultPlan.from_string(self.params.faults or self.default_timeline)

    def recovery_policy(self):
        # Unset means *on* here (the scenarios exist to exercise recovery);
        # every "off" spelling still disables it for the ablation arm.
        if self.params.recovery is None:
            return RecoveryPolicy()
        if self.params.recovery.strip().lower() in NO_RECOVERY:
            return None
        return RecoveryPolicy.from_string(self.params.recovery)

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        metrics = super().metrics(network, plan, executor)
        metrics["fault_plan"] = self.fault_plan().to_string()
        metrics["diverged_switches"] = sum(
            1 for switch in network.switches.values() if not switch.planes_agree()
        )
        metrics["crashed_switches"] = sum(
            1 for switch in network.switches.values() if switch.crashed
        )
        metrics["executor"] = executor.summary()
        return metrics


@register
class RollingUpgradeScenario(_RecoveryScenario):
    """Path migration under a staggered crash wave across fat-tree pod 0."""

    name = "rolling-upgrade"
    description = ("staggered switch-crash wave across pod 0 during a path "
                   "migration; pairs with --recovery on/off")
    default_topology = "fat-tree"
    default_timeline = ("rolling(switch-crash(restart_after=0.2)@pod:0,"
                        "stagger=0.15,at=0.4)")


@register
class CorrelatedTorOutageScenario(_RecoveryScenario):
    """Path migration under a correlated ToR crash + uplink flap."""

    name = "correlated-tor-outage"
    description = ("pod-0 ToR crash correlated with an aggregation uplink "
                   "flap; pairs with --recovery on/off")
    default_topology = "fat-tree"
    default_timeline = ("group(switch-crash(restart_after=0.4)@E0-0,"
                        "link-flap(duration=0.3)@A0-0)@t=0.5")
