"""The ``fault-sweep`` scenario: path migration under injected switch faults.

The workload is the generalized path migration of
:class:`~repro.scenarios.migration.PathMigrationScenario` — the repo's most
sensitive correctness probe, since every lost packet and late rule shows up
in the per-flow statistics — but the run is armed, by default, with a
representative mix of the paper's misbehaviours: occasional multi-second
data-plane delay spikes plus lossy barrier acknowledgments.  Sweeping
``ScenarioParams.faults`` (or the campaign ``--faults`` axis) against this
scenario is how the resilience report compares acknowledgment techniques
under identical fault schedules.
"""

from __future__ import annotations

from typing import Dict

from repro.controller.update_plan import UpdatePlan
from repro.faults.plan import FaultPlan
from repro.net.network import Network
from repro.scenarios.base import register
from repro.scenarios.migration import PathMigrationScenario

#: The mix armed when ``params.faults`` is unset: rare-but-long activation
#: delays (breaks timeout techniques) and lossy barrier replies (breaks
#: barrier techniques), leaving data-plane probing as the robust baseline.
DEFAULT_FAULT_MIX = "delay-spike(probability=0.1,spike=1.0)+ack-loss(probability=0.2)"


@register
class FaultSweepScenario(PathMigrationScenario):
    """Path migration with a fault plan armed (default: delay spikes + ack loss)."""

    name = "fault-sweep"
    description = ("path migration under injected faults; sweep "
                   "ScenarioParams.faults / --faults to compare techniques")
    default_topology = "leaf-spine"

    def fault_plan(self) -> FaultPlan:
        return FaultPlan.from_string(self.params.faults or DEFAULT_FAULT_MIX)

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        metrics = super().metrics(network, plan, executor)
        metrics["fault_plan"] = self.fault_plan().to_string()
        # How much damage is still visible when the run ends: switches whose
        # control- and data-plane tables disagree, and crashed switches.
        metrics["diverged_switches"] = sum(
            1 for switch in network.switches.values() if not switch.planes_agree()
        )
        metrics["crashed_switches"] = sum(
            1 for switch in network.switches.values() if switch.crashed
        )
        return metrics
