"""Many-flows ECMP-style rebalance on a leaf-spine fabric.

All flows between two leaves initially hash onto a single spine (a
degenerate ECMP assignment after, say, a spine came back from maintenance).
The update spreads them round-robin across every spine, one consistent
per-flow migration each: install the new spine's rule, then flip the ingress
leaf.  Per-flow update times show how acknowledgment truthfulness scales
with many independent small migrations; the balance metric reports how
post-update traffic distributed over the spines.
"""

from __future__ import annotations

from typing import Dict, List

from repro.controller.routing import flow_match, install_path_rules, path_flowmods
from repro.controller.update_plan import UpdatePlan
from repro.net.network import Network
from repro.net.traffic import FlowSpec, flows_between
from repro.openflow.actions import OutputAction
from repro.openflow.messages import FlowMod
from repro.scenarios.base import Scenario, register
from repro.scenarios.migration import endpoint_hosts


@register
class EcmpRebalanceScenario(Scenario):
    """Spread flows pinned to one spine across all spines, consistently."""

    name = "ecmp-rebalance"
    description = ("rebalance flows pinned to one spine across every spine "
                   "with per-flow consistent migrations")
    default_topology = "leaf-spine"

    def _fabric(self, network: Network) -> Dict[str, object]:
        """Ingress/egress leaves and the spine list, derived from the graph."""
        if hasattr(self, "_cached_fabric"):
            return self._cached_fabric
        source, dest = endpoint_hosts(network)
        ingress = network.topology.neighbors_of(source)[0]
        egress = network.topology.neighbors_of(dest)[0]
        if ingress == egress:
            raise ValueError("endpoint hosts must sit on different leaves")
        spines = [
            node for node in network.topology.neighbors_of(ingress)
            if node in network.switches
            and egress in network.topology.neighbors_of(node)
        ]
        if len(spines) < 2:
            raise ValueError(
                f"topology {network.topology.name!r} offers {len(spines)} "
                "common spine(s); the rebalance needs at least two"
            )
        self._cached_fabric = {
            "source": source,
            "dest": dest,
            "ingress": ingress,
            "egress": egress,
            "spines": spines,
        }
        return self._cached_fabric

    def _spine_for(self, index: int, spines: List[str]) -> str:
        return spines[index % len(spines)]

    def flows(self, network: Network) -> List[FlowSpec]:
        fabric = self._fabric(network)
        return flows_between(
            network.host(fabric["source"]),
            network.host(fabric["dest"]),
            self.params.flow_count,
            rate_pps=self.params.rate_pps,
        )

    def preinstall(self, network: Network, flows: List[FlowSpec]) -> None:
        fabric = self._fabric(network)
        old_path = [fabric["source"], fabric["ingress"], fabric["spines"][0],
                    fabric["egress"], fabric["dest"]]
        for flow in flows:
            install_path_rules(network, path_flowmods(network, flow, old_path))

    def build_plan(self, network: Network, flows: List[FlowSpec]) -> UpdatePlan:
        fabric = self._fabric(network)
        spines: List[str] = fabric["spines"]
        ingress, egress = fabric["ingress"], fabric["egress"]
        plan = UpdatePlan(name="ecmp-rebalance")
        for index, flow in enumerate(flows):
            target = self._spine_for(index, spines)
            if target == spines[0]:
                continue  # this flow keeps its current spine
            match = flow_match(flow)
            spine_rule = FlowMod(
                match,
                [OutputAction(network.port_between(target, egress))],
                priority=100,
            )
            prepare = plan.add(target, spine_rule, label=flow.flow_id,
                               role="new-path")
            flip = FlowMod(
                match,
                [OutputAction(network.port_between(ingress, target))],
                priority=100,
            )
            plan.add(ingress, flip, after=[prepare], label=flow.flow_id,
                     role="ingress-flip")
        plan.validate()
        return plan

    def new_path_switches(self, network: Network,
                          flows: List[FlowSpec]) -> Dict[str, str]:
        fabric = self._fabric(network)
        spines: List[str] = fabric["spines"]
        return {
            flow.flow_id: self._spine_for(index, spines)
            for index, flow in enumerate(flows)
            if self._spine_for(index, spines) != spines[0]
        }

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        fabric = self._fabric(network)
        spines: List[str] = fabric["spines"]
        finished = executor.finished_at
        share: Dict[str, int] = {spine: 0 for spine in spines}
        if finished is not None:
            for flow_id in network.monitor.flows():
                for record in network.monitor.deliveries(flow_id):
                    if record.received_at <= finished:
                        continue
                    for spine in spines:
                        if spine in record.path:
                            share[spine] += 1
                            break
        rebalanced = len({op.label for op in plan.by_role("ingress-flip")})
        return {
            "spines": len(spines),
            "rebalanced_flows": rebalanced,
            "post_update_spine_share": share,
        }
