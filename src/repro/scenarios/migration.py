"""Generalized multi-path migration: the paper's experiment on any topology.

The paper migrates flows from S1-S3 to S1-S2-S3 on a hand-built triangle.
This scenario does the same thing on an arbitrary generated topology: the
pre-update route is the shortest path between the endpoint hosts, the
post-update route is the next-shortest loop-free path that visits at least
one new switch, and the update is the same dependency-ordered consistent
migration (prepare downstream rules, then flip the shared ingress switch).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controller.consistent import ConsistentPathMigration
from repro.controller.routing import (
    first_distinct_switch,
    install_path_rules,
    k_shortest_paths,
    path_flowmods,
)
from repro.controller.update_plan import UpdatePlan
from repro.net.network import Network
from repro.net.traffic import FlowSpec, flows_between
from repro.scenarios.base import Scenario, register

#: How many loop-free paths to inspect before giving up on a migration target.
_PATH_SEARCH_LIMIT = 64


def endpoint_hosts(network: Network) -> Tuple[str, str]:
    """The scenario's source and destination hosts (first and last declared)."""
    hosts = list(network.topology.hosts)
    if len(hosts) < 2:
        raise ValueError(
            f"topology {network.topology.name!r} needs at least two hosts"
        )
    return hosts[0], hosts[-1]


def migration_paths(network: Network, source_host: str,
                    dest_host: str) -> Tuple[List[str], List[str]]:
    """``(old_path, new_path)`` for a consistent migration between two hosts.

    The old path is the shortest one; the new path is the next loop-free
    path that traverses at least one switch the old path avoids (so that the
    delivery monitor can tell the routes apart).  Both paths necessarily
    share their first switch because hosts have exactly one link, which is
    what :class:`ConsistentPathMigration` requires of its ingress.
    """
    graph = network.topology.full_graph()
    candidates = k_shortest_paths(graph, source_host, dest_host,
                                  _PATH_SEARCH_LIMIT)
    old_path: Optional[List[str]] = None
    for path in candidates:
        if old_path is None:
            old_path = path
            continue
        if first_distinct_switch(old_path, path, network.switches) is not None:
            return old_path, path
    raise ValueError(
        f"topology {network.topology.name!r} offers no alternative path "
        f"between {source_host} and {dest_host}"
    )


@register
class PathMigrationScenario(Scenario):
    """Shortest-path to next-shortest-path migration on any topology."""

    name = "path-migration"
    description = ("migrate all flows from the shortest path to the "
                   "next-shortest alternative (generalized Figure 1a)")
    default_topology = "leaf-spine"

    def _paths(self, network: Network) -> Tuple[List[str], List[str]]:
        if not hasattr(self, "_cached_paths"):
            source, dest = endpoint_hosts(network)
            self._cached_paths = migration_paths(network, source, dest)
        return self._cached_paths

    def flows(self, network: Network) -> List[FlowSpec]:
        source, dest = endpoint_hosts(network)
        return flows_between(
            network.host(source),
            network.host(dest),
            self.params.flow_count,
            rate_pps=self.params.rate_pps,
        )

    def preinstall(self, network: Network, flows: List[FlowSpec]) -> None:
        old_path, _new_path = self._paths(network)
        for flow in flows:
            install_path_rules(network, path_flowmods(network, flow, old_path))

    def build_plan(self, network: Network, flows: List[FlowSpec]) -> UpdatePlan:
        old_path, new_path = self._paths(network)
        return ConsistentPathMigration(network, flows, old_path, new_path).build_plan()

    def new_path_switches(self, network: Network,
                          flows: List[FlowSpec]) -> Dict[str, str]:
        old_path, new_path = self._paths(network)
        # migration_paths guarantees the new path adds a switch.
        marker = first_distinct_switch(old_path, new_path, network.switches)
        return {flow.flow_id: marker for flow in flows}

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        old_path, new_path = self._paths(network)
        return {
            "old_path_hops": len(old_path) - 2,
            "new_path_hops": len(new_path) - 2,
            "path_stretch": len(new_path) - len(old_path),
        }
