"""Link-failure (drain) reroute scenario.

An operator drains a link on the active path — for maintenance, or in
response to a failure alarm — by consistently migrating every flow onto the
shortest path that avoids the link.  The scenario-specific metric counts
deliveries that still crossed the drained link *after* the controller
believed the reroute complete: with truthful data-plane acknowledgments that
number is zero, with control-plane acknowledgments traffic may keep crossing
the supposedly drained link (the maintenance hazard analogue of the paper's
firewall bypass).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.controller.consistent import ConsistentPathMigration
from repro.controller.routing import (
    first_distinct_switch,
    install_path_rules,
    path_flowmods,
    shortest_path_avoiding_edge,
)
from repro.controller.update_plan import UpdatePlan
from repro.net.network import Network
from repro.net.traffic import FlowSpec, flows_between
from repro.scenarios.base import Scenario, register
from repro.scenarios.migration import endpoint_hosts


@register
class LinkFailureRerouteScenario(Scenario):
    """Drain a link of the active path and reroute every flow around it."""

    name = "link-failure"
    description = ("drain one link of the active path and reroute; counts "
                   "packets still crossing the drained link afterwards")
    default_topology = "ring"

    def _setup(self, network: Network) -> Tuple[List[str], List[str], Tuple[str, str]]:
        """``(old_path, new_path, drained_edge)`` — computed once per run."""
        if hasattr(self, "_cached_setup"):
            return self._cached_setup
        source, dest = endpoint_hosts(network)
        graph = network.topology.full_graph()
        old_path = list(nx.shortest_path(graph, source, dest))
        switch_edges = [
            (old_path[index], old_path[index + 1])
            for index in range(len(old_path) - 1)
            if old_path[index] in network.switches
            and old_path[index + 1] in network.switches
        ]
        if not switch_edges:
            raise ValueError(
                f"path {old_path!r} has no switch-to-switch link to drain"
            )
        for edge in switch_edges:
            new_path = shortest_path_avoiding_edge(graph, source, dest, edge)
            if new_path is not None:
                self._cached_setup = (old_path, new_path, edge)
                return self._cached_setup
        raise ValueError(
            f"every link of {old_path!r} is a bridge; nothing can be drained"
        )

    def flows(self, network: Network) -> List[FlowSpec]:
        source, dest = endpoint_hosts(network)
        return flows_between(
            network.host(source),
            network.host(dest),
            self.params.flow_count,
            rate_pps=self.params.rate_pps,
        )

    def preinstall(self, network: Network, flows: List[FlowSpec]) -> None:
        old_path, _new_path, _edge = self._setup(network)
        for flow in flows:
            install_path_rules(network, path_flowmods(network, flow, old_path))

    def build_plan(self, network: Network, flows: List[FlowSpec]) -> UpdatePlan:
        old_path, new_path, _edge = self._setup(network)
        return ConsistentPathMigration(network, flows, old_path, new_path).build_plan()

    def new_path_switches(self, network: Network,
                          flows: List[FlowSpec]) -> Dict[str, str]:
        old_path, new_path, _edge = self._setup(network)
        marker = first_distinct_switch(old_path, new_path, network.switches)
        if marker is None:
            # The reroute reuses only old switches (possible on dense
            # graphs); the scenario is then measured through metrics alone.
            return {}
        return {flow.flow_id: marker for flow in flows}

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        _old_path, _new_path, edge = self._setup(network)
        finished = executor.finished_at
        residual = 0
        if finished is not None:
            for flow_id in network.monitor.flows():
                for record in network.monitor.deliveries(flow_id):
                    if record.received_at <= finished:
                        continue
                    if _crosses(record.path, edge):
                        residual += 1
        return {
            "drained_link": list(edge),
            "residual_drained_deliveries": residual,
        }


def _crosses(path: Tuple[str, ...], edge: Tuple[str, str]) -> bool:
    """Whether a delivery path traversed ``edge`` in either direction."""
    pairs = set(zip(path, path[1:]))
    return edge in pairs or (edge[1], edge[0]) in pairs
