"""The generic scenario engine.

Runs any registered :class:`~repro.scenarios.base.Scenario` against any
acknowledgment technique, reusing the control-stack wiring of
:func:`repro.experiments.common.build_control_stack`: build the topology,
preinstall the scenario's initial state, start traffic, execute the
scenario's update plan through the chosen technique, and collect both the
generic per-flow update statistics and the scenario-specific metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis.flowstats import (
    FlowUpdateStats,
    flow_update_stats,
    mean_update_time,
    update_completion_time,
)
from repro.controller.update_plan import PlanExecutor
from repro.experiments.common import NO_WAIT, build_control_stack
from repro.net.network import Network
from repro.net.traffic import TrafficGenerator
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.scenarios.base import Scenario, ScenarioParams, get_scenario


@dataclass
class ScenarioRunResult:
    """Outcome of one (scenario, technique) run."""

    scenario: str
    technique: str
    topology: str
    params: ScenarioParams
    #: Flows that actually ran (scenarios may ignore ``params.flow_count``).
    flows_run: int
    plan_size: int
    update_duration: Optional[float]
    #: Whether the plan finished within ``params.max_update_duration`` (a
    #: plan may still complete later, during the post-deadline grace window;
    #: ``update_duration`` records the actual time in that case).
    completed: bool
    dropped_packets: int
    mean_update_time: Optional[float]
    completion_time: Optional[float]
    stats: List[FlowUpdateStats] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-able summary (what campaign result files store)."""
        return {
            "scenario": self.scenario,
            "technique": self.technique,
            "topology": self.topology,
            "scale": self.params.scale,
            "seed": self.params.seed,
            "flows": self.flows_run,
            "plan_size": self.plan_size,
            "update_duration": self.update_duration,
            "completed": self.completed,
            "dropped_packets": self.dropped_packets,
            "mean_update_time": self.mean_update_time,
            "completion_time": self.completion_time,
            "tracked_flows": len(self.stats),
            "max_broken_time": max(
                (entry.broken_time for entry in self.stats), default=0.0
            ),
            "metrics": self.metrics,
        }


def run_scenario(
    scenario: Union[str, Scenario],
    technique: str,
    params: Optional[ScenarioParams] = None,
) -> ScenarioRunResult:
    """Run one scenario with one acknowledgment technique.

    ``scenario`` is a registry name or an already-built instance (in which
    case ``params`` is ignored in favour of the instance's own).
    ``technique`` is any RUM technique name, or ``"no-wait"`` for the
    consistency-free lower bound.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario, params)
    params = scenario.params

    sim = Simulator()
    rng = SeededRandom(params.seed)
    topology = scenario.build_topology()
    network = Network(sim, topology, seed=params.seed)

    flows = scenario.flows(network)
    scenario.preinstall(network, flows)

    stack = build_control_stack(sim, network, technique)
    stack.prepare()
    network.start()
    stack.start()

    traffic = TrafficGenerator(sim, flows, rng=rng.fork("traffic"))
    traffic.start()

    plan = scenario.build_plan(network, flows)
    max_unconfirmed = params.max_unconfirmed or max(2 * params.flow_count, 16)
    executor = PlanExecutor(
        sim,
        stack.controller,
        plan,
        max_unconfirmed=max_unconfirmed,
        ignore_dependencies=(technique == NO_WAIT),
    )

    sim.run(until=params.warmup)
    executor.start()
    deadline = params.warmup + params.max_update_duration
    while not executor.done.triggered and sim.now < deadline:
        sim.run(until=min(sim.now + 0.1, deadline))
    finished_by_deadline = executor.done.triggered

    stop_at = sim.now + params.grace
    traffic.stop_all(stop_at)
    sim.run(until=stop_at + 0.05)

    markers = scenario.new_path_switches(network, flows)
    stats: List[FlowUpdateStats] = []
    if markers:
        stats = flow_update_stats(
            network.monitor,
            new_path_switch=markers,
            update_start=params.warmup,
            expected_interval=1.0 / params.rate_pps,
        )

    return ScenarioRunResult(
        scenario=scenario.name,
        technique=technique,
        topology=topology.name,
        params=params,
        flows_run=len(flows),
        plan_size=len(plan),
        update_duration=executor.duration,
        completed=finished_by_deadline,
        dropped_packets=network.monitor.total_dropped(),
        mean_update_time=mean_update_time(stats),
        completion_time=update_completion_time(stats),
        stats=stats,
        metrics=scenario.metrics(network, plan, executor),
    )
