"""The generic scenario engine — a thin adapter over :mod:`repro.session`.

Runs any registered :class:`~repro.scenarios.base.Scenario` against any
registered acknowledgment technique: :func:`scenario_session` maps the
scenario protocol (topology builder, flows, preinstall, plan, markers,
metrics) onto a :class:`~repro.session.spec.SessionSpec`, and
:func:`run_scenario` executes it through ``SessionSpec.run()``.  The result
is the unified :class:`~repro.session.record.RunRecord`; the name
``ScenarioRunResult`` is a deprecated alias of it.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.scenarios.base import Scenario, ScenarioParams, get_scenario
from repro.session.record import RunRecord
from repro.session.spec import SessionKnobs, SessionSpec, Workload

#: Deprecated alias: scenario runs return the unified record schema.
ScenarioRunResult = RunRecord


def scenario_session(
    scenario: Union[str, Scenario],
    technique: str,
    params: Optional[ScenarioParams] = None,
) -> SessionSpec:
    """One (scenario, technique) run as a :class:`SessionSpec`.

    ``scenario`` is a registry name or an already-built instance (in which
    case ``params`` is ignored in favour of the instance's own).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario, params)
    params = scenario.params

    return SessionSpec(
        kind="scenario",
        technique=technique,
        topology=scenario.build_topology,
        workload=Workload(
            flows=scenario.flows,
            preinstall=scenario.preinstall,
            markers=scenario.new_path_switches,
            dropped_from_monitor=True,
        ),
        plan_builder=scenario.build_plan,
        metrics=scenario.metrics,
        faults=scenario.fault_plan(),
        trace=params.trace,
        knobs=SessionKnobs(
            seed=params.seed,
            warmup=params.warmup,
            grace=params.grace,
            settle=0.05,
            poll_interval=0.1,
            max_update_duration=params.max_update_duration,
            max_unconfirmed=params.max_unconfirmed or max(2 * params.flow_count, 16),
            rate_pps=params.rate_pps,
            recovery=scenario.recovery_policy(),
            profile=params.profile,
        ),
        labels={
            "scenario": scenario.name,
            "scale": params.scale,
            "params": params.as_dict(),
        },
    )


def run_scenario(
    scenario: Union[str, Scenario],
    technique: str,
    params: Optional[ScenarioParams] = None,
) -> RunRecord:
    """Run one scenario with one acknowledgment technique.

    ``technique`` is any registered technique name — including ``"no-wait"``
    for the consistency-free lower bound.
    """
    return scenario_session(scenario, technique, params).run()
