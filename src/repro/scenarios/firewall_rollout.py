"""Firewall-rule rollout along an arbitrary path (generalized Figure 2).

The Figure 2 motivation (see :mod:`repro.controller.firewall`) opens a new
route only after the firewall rule on it is confirmed: rules Y and Z at
switch B, then rule X at switch A.  This scenario rolls the same pattern out
along the shortest path of any generated topology: every non-ingress switch
receives its forwarding rule, a designated *firewall switch* on the path
additionally receives a higher-priority HTTP-drop rule, and only once all of
those are acknowledged is the ingress forwarding rule installed, opening the
path.  The policy demands that no HTTP packet ever reaches the destination —
each one that does slipped through because the ingress opened while the
firewall rule was acknowledged but not yet active in the data plane.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.controller.routing import flow_match, path_flowmods
from repro.controller.update_plan import UpdatePlan
from repro.net.network import Network
from repro.net.traffic import FlowSpec
from repro.openflow.actions import DropAction
from repro.openflow.messages import FlowMod
from repro.packet.fields import IP_PROTO_TCP
from repro.scenarios.base import Scenario, register
from repro.scenarios.migration import endpoint_hosts

#: Priority of the path-opening forwarding rules.
_FORWARD_PRIORITY = 100
#: Priority of the HTTP-drop firewall rule (above the forwarding rules).
_POLICY_PRIORITY = 300


@register
class FirewallRolloutScenario(Scenario):
    """Open a firewalled route; the firewall rule must beat the traffic."""

    name = "firewall-rollout"
    description = ("open a new route whose firewall rule must be in effect "
                   "first; counts HTTP packets that bypassed the firewall")
    default_topology = "linear"

    def _path(self, network: Network) -> List[str]:
        if not hasattr(self, "_cached_path"):
            source, dest = endpoint_hosts(network)
            graph = network.topology.full_graph()
            self._cached_path = list(nx.shortest_path(graph, source, dest))
        return self._cached_path

    def _path_switches(self, network: Network) -> List[str]:
        return [node for node in self._path(network) if node in network.switches]

    def firewall_switch(self, network: Network) -> str:
        """The path switch carrying the HTTP-drop rule.

        Prefers a buggy hardware switch among the non-ingress path switches —
        the paper's hazard lives in exactly that combination — and falls back
        to the last path switch on an all-software path.
        """
        switches = self._path_switches(network)
        candidates = switches[1:] or switches
        for name in candidates:
            if network.topology.switches[name].kind == "hardware":
                return name
        return candidates[-1]

    def flows(self, network: Network) -> List[FlowSpec]:
        source, dest = endpoint_hosts(network)
        src_host, dst_host = network.host(source), network.host(dest)
        common = dict(
            source=src_host,
            destination=dst_host,
            ip_src=src_host.ip,
            ip_dst=dst_host.ip,
            rate_pps=self.params.rate_pps,
            ip_proto=IP_PROTO_TCP,
        )
        return [
            FlowSpec(flow_id="http", tp_dst=80, **common),
            FlowSpec(flow_id="bulk", tp_dst=5001, **common),
        ]

    def preinstall(self, network: Network, flows: List[FlowSpec]) -> None:
        """Nothing: the route does not exist before the measured update.

        As in Figure 2, table misses drop every packet, so traffic only
        starts flowing once the update opens the path — correctly, behind
        the firewall rule.
        """

    def build_plan(self, network: Network, flows: List[FlowSpec]) -> UpdatePlan:
        http = flows[0]
        path = self._path(network)
        ingress = self._path_switches(network)[0]
        firewall = self.firewall_switch(network)
        plan = UpdatePlan(name="firewall-rollout")

        forwarding = path_flowmods(network, http, path,
                                   priority=_FORWARD_PRIORITY)
        prerequisites = []
        for node, flowmod in forwarding.flowmods.items():
            if node == ingress:
                continue
            prerequisites.append(
                plan.add(node, flowmod, label="rollout", role="new-path")
            )
        drop_http = FlowMod(
            flow_match(http).extended(ip_proto=IP_PROTO_TCP, tp_dst=80),
            [DropAction()],
            priority=_POLICY_PRIORITY,
        )
        prerequisites.append(
            plan.add(firewall, drop_http, label="rollout", role="policy")
        )
        plan.add(ingress, forwarding.flowmods[ingress], after=prerequisites,
                 label="rollout", role="ingress-flip")
        plan.validate()
        return plan

    def new_path_switches(self, network: Network,
                          flows: List[FlowSpec]) -> Dict[str, str]:
        # The bulk flow's first delivery through the egress switch measures
        # when the route actually opened; HTTP must never arrive at all.
        return {"bulk": self._path_switches(network)[-1]}

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        monitor = network.monitor
        bypassed = (monitor.received_count("http")
                    if "http" in monitor.flows() else 0)
        return {
            "http_bypassing_firewall": bypassed,
            "bulk_delivered": (monitor.received_count("bulk")
                               if "bulk" in monitor.flows() else 0),
            "firewall_switch": self.firewall_switch(network),
            "rollout_switches": len(self._path_switches(network)),
        }
