"""The scenario protocol and the string-keyed scenario registry.

A *scenario* packages one network-update workload: it builds a topology,
installs the forwarding state that exists before the measured update,
produces the flows that traffic the network and the
:class:`~repro.controller.update_plan.UpdatePlan` the controller executes,
and finally extracts per-scenario metrics (policy violations, packets on a
drained link, ...) from the finished run.  The generic engine in
:mod:`repro.scenarios.engine` runs any scenario against any acknowledgment
technique, which is what lets the campaign runner sweep
(scenario × technique × scale × seed) grids over generated topologies.

New scenarios register themselves with :func:`register` and become available
to the campaign CLI by name — workloads are data, not code forks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Type

from repro.controller.update_plan import UpdatePlan
from repro.net.network import Network
from repro.net.topology import Topology
from repro.net.traffic import FlowSpec
from repro.scenarios.generators import (
    DEFAULT_HARDWARE_FRACTION,
    build_topology_cached,
)


@dataclass
class ScenarioParams:
    """Knobs shared by every scenario."""

    #: Topology family (see :func:`repro.scenarios.generators.build_topology`);
    #: ``"auto"`` lets the scenario pick its preferred family.
    topology: str = "auto"
    #: Integer size knob interpreted by the topology family.
    scale: int = 1
    flow_count: int = 8
    rate_pps: float = 250.0
    seed: int = 7
    #: Fraction of generated switches using the buggy hardware profile.
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION
    #: Seconds of traffic before the update starts.
    warmup: float = 0.2
    #: Seconds of traffic kept running after the update finishes.
    grace: float = 0.3
    #: Stop waiting for the update after this many simulated seconds; a plan
    #: that has not finished by then is reported as not completed.
    max_update_duration: float = 15.0
    #: Bound K on unconfirmed modifications (``None``: 2 * flow_count, >= 16).
    max_unconfirmed: Optional[int] = None
    #: Fault plan in its compact string form (see
    #: :meth:`repro.faults.FaultPlan.from_string`); ``None``/``"none"`` runs
    #: fault-free.  A string — not a :class:`~repro.faults.plan.FaultPlan` —
    #: so campaign configs stay hashable and JSON-able.
    faults: Optional[str] = None
    #: Recovery policy in its compact string form (see
    #: :meth:`repro.recovery.RecoveryPolicy.from_string`, e.g. ``"on"`` or
    #: ``"on(max_attempts=6)"``); ``None``/``"off"`` runs without recovery —
    #: the byte-identical pre-recovery path.  A string for the same reason
    #: :attr:`faults` is one.
    recovery: Optional[str] = None
    #: Arm rule-lifecycle tracing (see :mod:`repro.obs`); the run's record
    #: then carries a :class:`~repro.obs.events.TraceLog`.
    trace: bool = False
    #: Arm the sim-profiler (see :mod:`repro.obs.profiler`); the run's record
    #: then carries a :class:`~repro.obs.profiler.ProfileReport` with
    #: per-callback wall/heap-churn attribution and per-phase memory splits.
    profile: bool = False

    def scaled(self, **overrides) -> "ScenarioParams":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (used for campaign config hashing)."""
        return asdict(self)


class Scenario:
    """Base class for scenarios; subclasses override the protocol methods.

    The engine calls the methods in this order::

        topology = scenario.build_topology()
        network  = Network(sim, topology, ...)
        flows    = scenario.flows(network)
        scenario.preinstall(network, flows)
        plan     = scenario.build_plan(network, flows)
        ...run...
        markers  = scenario.new_path_switches(network, flows)
        metrics  = scenario.metrics(network, plan, executor)
    """

    #: Registry key; subclasses must set it.
    name: str = ""
    #: One-line human description shown by ``python -m repro.campaign list``.
    description: str = ""
    #: Topology family used when ``params.topology`` is ``"auto"``.
    default_topology: str = "leaf-spine"

    def __init__(self, params: Optional[ScenarioParams] = None) -> None:
        self.params = params or ScenarioParams()

    # -- protocol ------------------------------------------------------------
    def build_topology(self) -> Topology:
        """The network the scenario runs on (default: the declared family).

        Generation is memoized per process: campaign workers sweeping
        (technique × seed) grids over the same topology parameters reuse
        one generated — read-only — :class:`Topology`.
        """
        family = self.params.topology
        if family == "auto":
            family = self.default_topology
        return build_topology_cached(
            family,
            scale=self.params.scale,
            seed=self.params.seed,
            hardware_fraction=self.params.hardware_fraction,
        )

    def flows(self, network: Network) -> List[FlowSpec]:
        """The application flows that traffic the network during the update."""
        raise NotImplementedError

    def preinstall(self, network: Network, flows: List[FlowSpec]) -> None:
        """Install the forwarding state that predates the measured update."""

    def build_plan(self, network: Network, flows: List[FlowSpec]) -> UpdatePlan:
        """The dependency-ordered update the controller executes."""
        raise NotImplementedError

    def new_path_switches(self, network: Network,
                          flows: List[FlowSpec]) -> Dict[str, str]:
        """Per-flow switch whose traversal marks "this flow reached the new path".

        Flows absent from the mapping are excluded from update-time
        statistics (they are not migrating).  The default — no flow tracked —
        suits scenarios measured purely through :meth:`metrics`.
        """
        return {}

    def metrics(self, network: Network, plan: UpdatePlan,
                executor) -> Dict[str, object]:
        """Scenario-specific result numbers (JSON-able values only)."""
        return {}

    def fault_plan(self):
        """The :class:`~repro.faults.plan.FaultPlan` this run arms.

        Default: parse :attr:`ScenarioParams.faults` (``None`` — the
        fault-free path — when unset).  Scenarios built around faults
        (``fault-sweep``) override this to supply a default mix.
        """
        from repro.faults.plan import FaultPlan

        if self.params.faults:
            return FaultPlan.from_string(self.params.faults)
        return None

    def recovery_policy(self):
        """The :class:`~repro.recovery.RecoveryPolicy` this run arms.

        Default: parse :attr:`ScenarioParams.recovery`; any "off" spelling
        (or an unset knob) returns ``None``, the byte-identical
        pre-recovery path.  Recovery-centric scenarios (``rolling-upgrade``)
        override this to default recovery on.
        """
        from repro.recovery.policy import NO_RECOVERY, RecoveryPolicy

        text = (self.params.recovery or "").strip().lower()
        if text in NO_RECOVERY:
            return None
        return RecoveryPolicy.from_string(self.params.recovery)


#: The registry: scenario name -> scenario class.
SCENARIOS: Dict[str, Type[Scenario]] = {}


def register(cls: Type[Scenario]) -> Type[Scenario]:
    """Class decorator adding a scenario to :data:`SCENARIOS`."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.name in SCENARIOS:
        raise ValueError(f"scenario {cls.name!r} is already registered")
    SCENARIOS[cls.name] = cls
    return cls


def available_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str, params: Optional[ScenarioParams] = None) -> Scenario:
    """Instantiate a registered scenario by name."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    return SCENARIOS[name](params)
