"""Datacenter and WAN topology generators.

Every generator returns a validated :class:`~repro.net.topology.Topology`
whose switches carry a configurable mix of behaviour kinds — by default a
fraction of the switches are the paper's buggy ``hardware`` model
(HP 5406zl acknowledgment semantics) and the rest are well-behaved
``software`` switches, so that generated fabrics exhibit the same
untruthful-acknowledgment hazards as the paper's hand-built triangle.

Generators:

* :func:`fat_tree` — the classic k-ary fat-tree (k pods, (k/2)^2 cores).
* :func:`leaf_spine` — a two-tier leaf/spine fabric.
* :func:`ring` — a WAN-style ring, host pairs at opposite sides.
* :func:`random_waxman` — a seeded Waxman random graph, made connected.

:func:`build_topology` adapts a ``(name, scale)`` pair to concrete generator
arguments; it is what the scenario registry and campaign grids use, so that
"scale" is a single integer knob across all topology families.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.net.topology import (
    SWITCH_KINDS,
    Topology,
    linear_topology,
    triangle_topology,
)

#: Default fraction of switches instantiated with the buggy hardware profile.
DEFAULT_HARDWARE_FRACTION = 1.0 / 3.0


def assign_kinds(
    switch_names: Sequence[str],
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
    seed: int = 0,
    hardware_kind: str = "hardware",
    default_kind: str = "software",
) -> Dict[str, str]:
    """Deterministically assign a kind to each switch.

    ``ceil(hardware_fraction * len(switch_names))`` switches get
    ``hardware_kind``; which ones is a seeded choice so the same
    ``(names, fraction, seed)`` always yields the same mix.
    """
    if not 0.0 <= hardware_fraction <= 1.0:
        raise ValueError("hardware_fraction must be within [0, 1]")
    for kind in (hardware_kind, default_kind):
        if kind not in SWITCH_KINDS:
            raise ValueError(f"unknown switch kind {kind!r}")
    names = list(switch_names)
    hardware_count = math.ceil(hardware_fraction * len(names)) if names else 0
    rng = random.Random(seed)
    hardware_names = set(rng.sample(names, hardware_count))
    return {
        name: hardware_kind if name in hardware_names else default_kind
        for name in names
    }


def _host_addr(index: int) -> Tuple[str, str]:
    """IP and MAC for the ``index``-th generated host (1-based).

    The second IP octet is ``200 + index // 256``, so the format tops out at
    index 14335 (octet 255); the bound keeps every emitted address valid.
    """
    if not 1 <= index <= 14335:
        raise ValueError("host index out of range")
    ip = f"10.{200 + index // 256}.{index % 256}.1"
    mac = f"02:00:00:00:{index // 256:02x}:{index % 256:02x}"
    return ip, mac


def _add_hosts(topo: Topology, attach_switches: Sequence[str],
               link_latency: float) -> None:
    """Attach one host per listed switch (switches may repeat)."""
    for index, switch in enumerate(attach_switches, start=1):
        ip, mac = _host_addr(index)
        name = f"H{index}"
        topo.add_host(name, ip=ip, mac=mac)
        topo.add_link(name, switch, latency=link_latency)


def fat_tree(
    k: int = 4,
    hosts_per_edge: int = 1,
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
    seed: int = 0,
    link_latency: float = 0.0001,
) -> Topology:
    """A k-ary fat-tree: (k/2)^2 cores, k pods of k/2 aggregation + k/2 edge.

    Core switch ``C{g}-{i}`` belongs to core group *g* and connects to the
    *g*-th aggregation switch of every pod; inside pod *p* every aggregation
    switch ``A{p}-{g}`` connects to every edge switch ``E{p}-{e}``.
    ``hosts_per_edge`` hosts hang off each edge switch.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("fat-tree k must be an even integer >= 2")
    if hosts_per_edge < 0:
        raise ValueError("hosts_per_edge must be >= 0")
    half = k // 2
    topo = Topology(f"fat-tree-{k}")

    core = [[f"C{group}-{index}" for index in range(half)] for group in range(half)]
    for group in core:
        for name in group:
            topo.add_switch(name)
    aggregation: List[List[str]] = []
    edge: List[List[str]] = []
    for pod in range(k):
        aggregation.append([f"A{pod}-{group}" for group in range(half)])
        edge.append([f"E{pod}-{index}" for index in range(half)])
        for name in aggregation[pod] + edge[pod]:
            topo.add_switch(name)

    for pod in range(k):
        for group in range(half):
            for core_name in core[group]:
                topo.add_link(core_name, aggregation[pod][group],
                              latency=link_latency)
        for agg_name in aggregation[pod]:
            for edge_name in edge[pod]:
                topo.add_link(agg_name, edge_name, latency=link_latency)

    attach = [name for pod in edge for name in pod for _ in range(hosts_per_edge)]
    _add_hosts(topo, attach, link_latency)
    _apply_kinds(topo, hardware_fraction, seed)
    topo.validate()
    return topo


def leaf_spine(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 1,
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
    seed: int = 0,
    link_latency: float = 0.0001,
) -> Topology:
    """A two-tier fabric: every leaf connects to every spine."""
    if leaves < 1 or spines < 1:
        raise ValueError("need at least one leaf and one spine")
    if hosts_per_leaf < 0:
        raise ValueError("hosts_per_leaf must be >= 0")
    topo = Topology(f"leaf-spine-{leaves}x{spines}")
    spine_names = [f"SP{index}" for index in range(spines)]
    leaf_names = [f"L{index}" for index in range(leaves)]
    for name in spine_names + leaf_names:
        topo.add_switch(name)
    for leaf in leaf_names:
        for spine in spine_names:
            topo.add_link(leaf, spine, latency=link_latency)
    attach = [leaf for leaf in leaf_names for _ in range(hosts_per_leaf)]
    _add_hosts(topo, attach, link_latency)
    _apply_kinds(topo, hardware_fraction, seed)
    topo.validate()
    return topo


def ring(
    switch_count: int = 6,
    host_count: int = 2,
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
    seed: int = 0,
    link_latency: float = 0.0001,
) -> Topology:
    """A WAN-style ring of switches with hosts spread evenly around it.

    A ring gives every host pair exactly two switch-disjoint routes, which is
    the minimal setting for both the migration and the link-failure
    scenarios.
    """
    if switch_count < 3:
        raise ValueError("a ring needs at least three switches")
    if not 0 <= host_count <= switch_count:
        raise ValueError("host_count must be within [0, switch_count]")
    topo = Topology(f"ring-{switch_count}")
    names = [f"R{index}" for index in range(switch_count)]
    for name in names:
        topo.add_switch(name)
    for index in range(switch_count):
        topo.add_link(names[index], names[(index + 1) % switch_count],
                      latency=link_latency)
    attach = [names[(index * switch_count) // host_count]
              for index in range(host_count)]
    _add_hosts(topo, attach, link_latency)
    _apply_kinds(topo, hardware_fraction, seed)
    topo.validate()
    return topo


def random_waxman(
    switch_count: int = 8,
    host_count: int = 2,
    alpha: float = 0.6,
    beta: float = 0.4,
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
    seed: int = 0,
    link_latency: float = 0.0001,
) -> Topology:
    """A seeded Waxman random graph, patched to be connected.

    Switches are placed uniformly in the unit square; a link between two
    switches exists with probability ``alpha * exp(-d / (beta * sqrt(2)))``
    where ``d`` is their Euclidean distance.  Any disconnected components are
    then joined through their closest node pairs, so :meth:`Topology.validate`
    always passes.  The same ``seed`` reproduces the same topology exactly.
    """
    if switch_count < 2:
        raise ValueError("need at least two switches")
    if not 0 <= host_count <= switch_count:
        raise ValueError("host_count must be within [0, switch_count]")
    rng = random.Random(seed)
    topo = Topology(f"waxman-{switch_count}-s{seed}")
    names = [f"W{index}" for index in range(switch_count)]
    positions = {}
    for name in names:
        topo.add_switch(name)
        positions[name] = (rng.random(), rng.random())

    max_distance = math.sqrt(2.0)
    edges = set()
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            ax, ay = positions[name_a]
            bx, by = positions[name_b]
            distance = math.hypot(ax - bx, ay - by)
            if rng.random() < alpha * math.exp(-distance / (beta * max_distance)):
                edges.add((name_a, name_b))

    # Join components through their geometrically closest switch pairs.
    components = _components(names, edges)
    while len(components) > 1:
        best = None
        for name_a in components[0]:
            for name_b in components[1]:
                ax, ay = positions[name_a]
                bx, by = positions[name_b]
                distance = math.hypot(ax - bx, ay - by)
                if best is None or distance < best[0]:
                    best = (distance, name_a, name_b)
        edges.add((best[1], best[2]))
        components = _components(names, edges)

    for name_a, name_b in sorted(edges):
        topo.add_link(name_a, name_b, latency=link_latency)
    attach = rng.sample(names, host_count)
    _add_hosts(topo, attach, link_latency)
    _apply_kinds(topo, hardware_fraction, seed)
    topo.validate()
    return topo


def _components(names: Sequence[str], edges: set) -> List[List[str]]:
    """Connected components (union-find over the edge set)."""
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for name_a, name_b in edges:
        parent[find(name_a)] = find(name_b)
    groups: Dict[str, List[str]] = {}
    for name in names:
        groups.setdefault(find(name), []).append(name)
    return list(groups.values())


def _apply_kinds(topo: Topology, hardware_fraction: float, seed: int) -> None:
    """Overwrite the kind of every switch with a seeded hardware/software mix."""
    kinds = assign_kinds(list(topo.switches), hardware_fraction, seed=seed)
    for name, kind in kinds.items():
        topo.switches[name].kind = kind


# ---------------------------------------------------------------------------
# Scale adapter used by scenarios and campaign grids
# ---------------------------------------------------------------------------

def build_topology(
    name: str,
    scale: int = 1,
    seed: int = 0,
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
) -> Topology:
    """Build a named topology family at an integer scale.

    ========== =================================================
    name       shape at scale *s*
    ========== =================================================
    triangle   the paper's Figure 1a triangle (scale ignored)
    linear     a chain of ``2 + s`` switches
    fat-tree   k-ary fat-tree with ``k = 2 * (s + 1)``
    leaf-spine ``2 + 2s`` leaves over ``1 + s`` spines
    ring       ``2 + 2s`` switches around the ring
    waxman     ``4 * (s + 1)`` switches, seeded random graph
    ========== =================================================
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if name in ("auto", "triangle"):
        return triangle_topology()
    if name == "linear":
        count = 2 + scale
        kinds = assign_kinds([f"S{i + 1}" for i in range(count)],
                             hardware_fraction, seed=seed)
        return linear_topology(count, kinds=[kinds[f"S{i + 1}"] for i in range(count)])
    if name == "fat-tree":
        return fat_tree(k=2 * (scale + 1), hardware_fraction=hardware_fraction,
                        seed=seed)
    if name == "leaf-spine":
        return leaf_spine(leaves=2 + 2 * scale, spines=1 + scale,
                          hosts_per_leaf=1, hardware_fraction=hardware_fraction,
                          seed=seed)
    if name == "ring":
        return ring(switch_count=2 + 2 * scale, host_count=2,
                    hardware_fraction=hardware_fraction, seed=seed)
    if name == "waxman":
        return random_waxman(switch_count=4 * (scale + 1), host_count=2,
                             hardware_fraction=hardware_fraction, seed=seed)
    raise ValueError(
        f"unknown topology family {name!r}; expected one of {sorted(TOPOLOGY_FAMILIES)}"
    )


#: Topology family names accepted by :func:`build_topology`.
TOPOLOGY_FAMILIES = ("triangle", "linear", "fat-tree", "leaf-spine", "ring", "waxman")


@lru_cache(maxsize=128)
def build_topology_cached(
    name: str,
    scale: int = 1,
    seed: int = 0,
    hardware_fraction: float = DEFAULT_HARDWARE_FRACTION,
) -> Topology:
    """Memoized :func:`build_topology` (per-process, keyed by all params).

    Campaign workers run many grid cells that differ only in technique or
    traffic seed while sharing topology parameters; generation — especially
    fat-trees and Waxman graphs — is pure and seeded, so each worker process
    builds every distinct topology once.  The returned object is shared:
    callers must treat it as read-only (the :class:`~repro.net.network.Network`
    construction path does).
    """
    return build_topology(name, scale=scale, seed=seed,
                          hardware_fraction=hardware_fraction)
