"""The declarative recovery policy riding on :class:`SessionKnobs`.

A :class:`RecoveryPolicy` describes how the controller survives switch
failures — shadow-table resync on reconnect plus retransmission of un-acked
FlowMods — the same way :class:`~repro.faults.plan.FaultPlan` describes how
the network misbehaves.  Like a fault plan it has two codecs:

* :meth:`RecoveryPolicy.as_dict` / :meth:`RecoveryPolicy.from_dict` — the
  canonical JSON round trip (session config provenance);
* :meth:`RecoveryPolicy.to_string` / :meth:`RecoveryPolicy.from_string` — a
  compact one-line form for CLI axes and campaign grids::

      off
      on
      on(ack_timeout=0.1,max_attempts=6)

A session whose knobs carry no policy (``recovery=None``) — or a disabled
one — arms nothing: the recovery-off path is byte-identical to a build
without this subsystem.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass
from typing import Dict, Optional

#: Spellings of "no recovery" accepted wherever a policy string is expected.
NO_RECOVERY = ("", "off", "none", "disabled")

_POLICY_PATTERN = re.compile(r"^(?P<head>[a-z-]+)(?:\((?P<params>[^)]*)\))?$")

#: Fields accepted inside ``on(...)`` overrides, with their casts.
_FIELD_CASTS = {
    "resync": bool,
    "retransmit": bool,
    "ack_timeout": float,
    "backoff": float,
    "max_attempts": int,
    "resync_delay": float,
}


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the controller recovers from switch crashes and lost acks."""

    #: Master switch; a disabled policy arms nothing (byte-identical to
    #: ``SessionKnobs.recovery=None``).
    enabled: bool = True
    #: Replay shadow-tracked rules through the technique machinery when a
    #: crashed switch reconnects.
    resync: bool = True
    #: Retransmit un-acked FlowMods with exponential backoff.
    retransmit: bool = True
    #: Seconds before the first retransmission of an un-acked FlowMod.
    ack_timeout: float = 0.25
    #: Multiplier applied to the timeout after every attempt.
    backoff: float = 2.0
    #: Total transmissions (including the first) before the ack is failed.
    max_attempts: int = 4
    #: Seconds after a reconnect before the resync replay starts (lets the
    #: restarted agent come up before rules are pushed at it).
    resync_delay: float = 0.0

    @property
    def active(self) -> bool:
        """Whether this policy arms any machinery at all."""
        return self.enabled and (self.resync or self.retransmit)

    def validate(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be > 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.resync_delay < 0:
            raise ValueError("resync_delay must be >= 0")

    # -- codecs ---------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON form; :meth:`from_dict` round-trips it exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, object]]) -> Optional["RecoveryPolicy"]:
        if payload is None:
            return None
        return cls(**payload)

    def to_string(self) -> str:
        """Compact one-line form (campaign axes); ``"off"`` when disabled."""
        if not self.enabled:
            return "off"
        overrides = []
        defaults = RecoveryPolicy()
        for name in ("resync", "retransmit", "ack_timeout", "backoff",
                     "max_attempts", "resync_delay"):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                encoded = ("true" if value is True else
                           "false" if value is False else str(value))
                overrides.append(f"{name}={encoded}")
        if not overrides:
            return "on"
        return "on(" + ",".join(overrides) + ")"

    @classmethod
    def from_string(cls, text: Optional[str]) -> "RecoveryPolicy":
        """Parse the compact form; ``"off"``/``"none"`` yield a disabled policy."""
        text = (text or "").strip().lower()
        if text in NO_RECOVERY:
            return cls(enabled=False)
        matched = _POLICY_PATTERN.match(text)
        if not matched or matched.group("head") != "on":
            raise ValueError(
                f"cannot parse recovery policy {text!r} "
                "(expected 'off', 'on' or 'on(key=value,...)')"
            )
        overrides: Dict[str, object] = {}
        for raw_item in (matched.group("params") or "").split(","):
            item = raw_item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"recovery parameter {item!r} is not key=value")
            key, _, value = item.partition("=")
            key = key.strip()
            cast = _FIELD_CASTS.get(key)
            if cast is None:
                raise ValueError(
                    f"unknown recovery parameter {key!r} "
                    f"(known: {', '.join(sorted(_FIELD_CASTS))})"
                )
            value = value.strip()
            overrides[key] = (value == "true") if cast is bool else cast(value)
        policy = cls(**overrides)
        policy.validate()
        return policy

    def describe(self) -> str:
        """Short human-readable label for progress output and reports."""
        return self.to_string()
