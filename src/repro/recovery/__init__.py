"""Controller-side recovery: shadow state, resync-on-reconnect, retransmits.

The fault subsystem (:mod:`repro.faults`) makes switches fail; this package
makes failure *survivable*.  A :class:`RecoveryPolicy` rides on
``SessionKnobs.recovery`` exactly like a fault plan rides on
``SessionSpec.faults``:

* the controller keeps a per-switch **shadow table** of intended rules
  (:class:`~repro.recovery.shadow.ShadowStore`, fed from every
  ``send_flowmod``);
* on a switch reconnect the shadow is diffed against the wiped switch and
  the missing rules are **replayed through the active technique's
  machinery** (barriers/probing apply to reinstalls too), traced as
  ``resync-started`` / ``rule-reinstalled`` / ``resync-complete``;
* un-acked FlowMods are **retransmitted with exponential backoff** and
  failed — not left pending forever — after ``max_attempts``.

A session without a policy (or with a disabled one) arms nothing and is
byte-identical to a build without this package.

Typical use::

    from repro.recovery import RecoveryPolicy
    from repro.scenarios import ScenarioParams, run_scenario

    params = ScenarioParams(faults="switch-crash(at=0.5,restart_after=0.5)",
                            recovery="on")
    record = run_scenario("path-migration", "general", params)
    print(record.recovery)   # {'reconverged': True, 'rules_reinstalled': ...}
"""

from repro.recovery.manager import RecoveryManager
from repro.recovery.policy import NO_RECOVERY, RecoveryPolicy
from repro.recovery.shadow import ShadowStore

__all__ = [
    "NO_RECOVERY",
    "RecoveryManager",
    "RecoveryPolicy",
    "ShadowStore",
]
