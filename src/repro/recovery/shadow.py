"""The controller's shadow of intended per-switch forwarding state.

Every FlowMod the controller issues is mirrored into a per-switch
:class:`~repro.openflow.flowtable.FlowTable`, so the shadow carries the same
ADD/MODIFY/DELETE semantics the switch itself applies.  After a crash wipes
a switch, :meth:`ShadowStore.missing_rules` diffs the shadow against the
switch's data plane and yields the rules that must be reinstalled — the
controller's ground truth of "what should be there", independent of any
optimistic acknowledgment the switch sent before dying (which is the
paper's point: those signals cannot be trusted).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.openflow.constants import FlowModCommand
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.messages import FlowMod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.switches.base import Switch


class ShadowStore:
    """Per-switch shadow flow tables fed from ``Controller.send_flowmod``."""

    def __init__(self) -> None:
        self._tables: Dict[str, FlowTable] = {}

    def table(self, switch_name: str) -> FlowTable:
        table = self._tables.get(switch_name)
        if table is None:
            table = FlowTable(name=f"{switch_name}.shadow")
            self._tables[switch_name] = table
        return table

    def record(self, switch_name: str, flowmod: FlowMod, now: float) -> None:
        """Mirror one issued FlowMod into the switch's shadow table."""
        self.table(switch_name).apply_flowmod(flowmod, now=now)

    def rule_count(self, switch_name: str) -> int:
        table = self._tables.get(switch_name)
        return len(table) if table is not None else 0

    def missing_rules(self, switch: "Switch") -> List[FlowEntry]:
        """Shadow entries not currently active in ``switch``'s data plane.

        After a crash-with-wipe this is every intended rule; rules that
        survived (or were re-installed out of band) are skipped so resync
        never double-installs.
        """
        table = self._tables.get(switch.name)
        if table is None:
            return []
        active = switch.dataplane.table.signature_set()
        return [entry for entry in table.entries
                if entry.signature() not in active]

    @staticmethod
    def reinstall_flowmod(entry: FlowEntry) -> FlowMod:
        """A fresh FlowMod (new xid) re-adding one shadow entry.

        Fresh xids keep the reinstall distinct from the original install in
        every xid-keyed structure along the path — the controller's ack
        table, RUM's pending tracker, the trace timeline.
        """
        return FlowMod(
            match=entry.match,
            actions=entry.actions,
            command=FlowModCommand.ADD,
            priority=entry.priority,
            cookie=entry.cookie,
        )
