"""The controller-side recovery engine: retransmits and crash resync.

Armed by the session engine when ``SessionKnobs.recovery`` carries an
enabled :class:`~repro.recovery.policy.RecoveryPolicy`, the manager hangs
off ``Controller.recovery`` (a single ``None``-check on the send/ack paths,
so a build without recovery is byte-identical) and does two things:

* **Retransmission** — every un-acked FlowMod gets a timeout check; on
  expiry the same-xid FlowMod is re-sent (the switch's per-boot xid
  de-duplication makes that idempotent) with exponential backoff, until it
  is acked or ``max_attempts`` transmissions are exhausted — at which point
  the ack is *failed* (see :meth:`Controller.fail_ack`) instead of pending
  forever.

* **Resync** — on a switch reconnect (``Switch.restore`` →
  ``Controller.on_switch_reconnect``) the shadow table is diffed against
  the switch's wiped data plane and the missing rules are replayed with
  fresh xids *through* ``Controller.send_flowmod``, so the active
  technique's barrier/probing/ack semantics cover the reinstalls too.
  ``resync-started`` / ``rule-reinstalled`` / ``resync-complete`` events
  land on the trace timeline of :mod:`repro.obs`.

:meth:`RecoveryManager.report` summarises the whole run — retries, failed
acks, rules reinstalled, time-to-reconvergence, packets dropped inside
outage windows — for ``RunRecord.recovery``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs import tracer as obs_tracer
from repro.obs.events import (
    PHASE_RESYNC_COMPLETE,
    PHASE_RESYNC_STARTED,
    PHASE_RULE_REINSTALLED,
)
from repro.recovery.policy import RecoveryPolicy
from repro.recovery.shadow import ShadowStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.base import Controller, RuleAck
    from repro.net.network import Network
    from repro.sim.kernel import Simulator


class _Resync:
    """Bookkeeping for one in-flight shadow replay on one switch."""

    __slots__ = ("switch", "started_at", "expected", "pending", "issuing", "done")

    def __init__(self, switch: str, started_at: float, expected: int) -> None:
        self.switch = switch
        self.started_at = started_at
        self.expected = expected
        #: Reinstall xids still waiting for their acknowledgment.
        self.pending: set = set()
        #: True while the replay loop is still issuing (an AckMode.NONE send
        #: acks synchronously, mid-loop).
        self.issuing = False
        self.done = False


class RecoveryManager:
    """Per-session recovery state machine (see module docstring)."""

    def __init__(
        self,
        sim: "Simulator",
        controller: "Controller",
        network: "Network",
        policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.network = network
        self.policy = policy or RecoveryPolicy()
        self.policy.validate()
        self.shadow = ShadowStore()

        # Convergence accounting --------------------------------------------
        self.retries = 0
        self.acks_failed = 0
        self.rules_reinstalled = 0
        self.crashes_seen = 0
        self.restores_seen = 0
        self.resyncs_started = 0
        self.resyncs_completed = 0
        self.resyncs_aborted = 0
        self.first_crash_at: Optional[float] = None
        self.last_reconvergence_at: Optional[float] = None
        #: Dropped-packet counter sampled when each switch went down.
        self._outage_baseline: Dict[str, int] = {}
        self.outage_dropped_packets = 0

        self._active_resyncs: Dict[str, _Resync] = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self) -> None:
        """Hook the manager into the controller and every switch's lifecycle."""
        self.controller.recovery = self
        for switch in self.network.switches.values():
            switch.on_lifecycle(self._on_switch_lifecycle)

    def _on_switch_lifecycle(self, switch_name: str, event: str) -> None:
        if event == "crash":
            self.crashes_seen += 1
            if self.first_crash_at is None:
                self.first_crash_at = self.sim.now
            self._outage_baseline[switch_name] = self.network.monitor.total_dropped()
            # A crash mid-resync kills the replay with the switch; the next
            # restore starts a fresh one against the re-wiped tables.
            stale = self._active_resyncs.pop(switch_name, None)
            if stale is not None and not stale.done:
                self.resyncs_aborted += 1
        elif event == "restore":
            self.restores_seen += 1
            self.controller.on_switch_reconnect(switch_name)

    # -- controller send/ack hooks -------------------------------------------
    def flowmod_sent(self, ack: "RuleAck") -> None:
        """Called by ``Controller.send_flowmod`` for every issued FlowMod."""
        self.shadow.record(ack.switch, ack.flowmod, now=self.sim.now)
        if self.policy.retransmit and not ack.acked:
            self.sim.schedule_callback(self.policy.ack_timeout,
                                       self._check_ack, ack, 1)

    def flowmod_acked(self, ack: "RuleAck") -> None:
        """Called by ``Controller._complete_ack`` when an ack resolves."""
        self._resolve_resync_xid(ack.switch, ack.xid)

    def _resolve_resync_xid(self, switch_name: str, xid: int) -> None:
        resync = self._active_resyncs.get(switch_name)
        if resync is None or resync.done:
            return
        resync.pending.discard(xid)
        if not resync.pending and not resync.issuing:
            self._finish_resync(resync)

    def _check_ack(self, ack: "RuleAck", attempt: int) -> None:
        if ack.acked or ack.failed:
            return
        if attempt >= self.policy.max_attempts:
            self.acks_failed += 1
            self.controller.fail_ack(ack)
            # A failed reinstall must not wedge its resync's completion
            # accounting (the failure still shows up in `acks_failed`).
            self._resolve_resync_xid(ack.switch, ack.xid)
            return
        self.retries += 1
        self.controller.retransmit(ack)
        delay = self.policy.ack_timeout * (self.policy.backoff ** attempt)
        self.sim.schedule_callback(delay, self._check_ack, ack, attempt + 1)

    # -- resync ----------------------------------------------------------------
    def on_switch_reconnect(self, switch_name: str) -> None:
        """Schedule the shadow replay for a restored switch."""
        if not self.policy.resync:
            return
        switch = self.network.switch(switch_name)
        epoch = switch.crash_epoch
        if self.policy.resync_delay > 0:
            self.sim.schedule_callback(self.policy.resync_delay,
                                       self._resync, switch, epoch)
        else:
            self._resync(switch, epoch)

    def _resync(self, switch, epoch: int) -> None:
        if switch.crashed or switch.crash_epoch != epoch:
            # Crashed again before the replay started; the next restore
            # schedules a fresh resync.
            return
        missing = self.shadow.missing_rules(switch)
        now = self.sim.now
        resync = _Resync(switch.name, now, expected=len(missing))
        self._active_resyncs[switch.name] = resync
        self.resyncs_started += 1
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_RESYNC_STARTED, now, switch.name,
                    detail=f"missing={len(missing)}")
        if not missing:
            self._finish_resync(resync)
            return
        # Replay through the normal issue path: the technique's ack machinery
        # (RUM probing, barriers, ...) covers reinstalls exactly like
        # first-time installs, and `flowmod_acked` checks them back in.
        resync.issuing = True
        for entry in missing:
            flowmod = self.shadow.reinstall_flowmod(entry)
            self.rules_reinstalled += 1
            resync.pending.add(flowmod.xid)
            if tr.active:
                tr.rule(PHASE_RULE_REINSTALLED, self.sim.now, switch.name,
                        flowmod.xid, detail=f"prio={flowmod.priority}")
            self.controller.send_flowmod(switch.name, flowmod)
        from repro.controller.base import AckMode

        if self.controller.ack_mode == AckMode.BARRIER:
            # Barrier-mode acks only resolve on a barrier reply.
            self.controller.send_barrier(switch.name)
        resync.issuing = False
        if not resync.pending and not resync.done:
            self._finish_resync(resync)

    def _finish_resync(self, resync: _Resync) -> None:
        resync.done = True
        self.resyncs_completed += 1
        self.last_reconvergence_at = self.sim.now
        baseline = self._outage_baseline.pop(resync.switch, None)
        if baseline is not None:
            self.outage_dropped_packets += (
                self.network.monitor.total_dropped() - baseline
            )
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_RESYNC_COMPLETE, self.sim.now, resync.switch,
                    detail=(f"reinstalled={resync.expected} "
                            f"took={self.sim.now - resync.started_at:.4f}"))
        self._active_resyncs.pop(resync.switch, None)

    # -- results ----------------------------------------------------------------
    def reconverged(self) -> bool:
        """Whether every observed outage was fully recovered from."""
        if self.crashes_seen == 0:
            return True
        return (self.restores_seen >= self.crashes_seen
                and self.resyncs_completed == self.resyncs_started
                and not self._active_resyncs
                and not any(sw.crashed for sw in self.network.switches.values()))

    def report(self) -> Dict[str, object]:
        """The ``RunRecord.recovery`` payload (JSON-able, bounded size)."""
        out: Dict[str, object] = {
            "policy": self.policy.to_string(),
            "crashes_seen": self.crashes_seen,
            "restores_seen": self.restores_seen,
            "resyncs_started": self.resyncs_started,
            "resyncs_completed": self.resyncs_completed,
            "rules_reinstalled": self.rules_reinstalled,
            "retries": self.retries,
            "acks_failed": self.acks_failed,
            "outage_dropped_packets": self.outage_dropped_packets,
            "reconverged": self.reconverged(),
        }
        if self.resyncs_aborted:
            out["resyncs_aborted"] = self.resyncs_aborted
        if self.first_crash_at is not None and self.last_reconvergence_at is not None:
            out["time_to_reconvergence"] = (
                self.last_reconvergence_at - self.first_crash_at
            )
        return out


def pending_resyncs(manager: Optional[RecoveryManager]) -> List[str]:
    """Names of switches whose replay has not finished (debug helper)."""
    if manager is None:
        return []
    return sorted(manager._active_resyncs)
