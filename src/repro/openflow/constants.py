"""Protocol constants mirroring OpenFlow 1.0 naming."""

from __future__ import annotations

from enum import IntEnum


#: Pseudo port number meaning "send to the controller" (OFPP_CONTROLLER).
CONTROLLER_PORT = 0xFFFD

#: Pseudo port number meaning "drop" (no real OF equivalent; empty action list).
DROP_PORT = 0xFFFE

#: Pseudo port meaning "flood on all ports but the ingress" (OFPP_FLOOD).
FLOOD_PORT = 0xFFFB

#: Wire protocol version byte advertised in Hello/Features (OpenFlow 1.0).
OFP_VERSION = 0x01


class OFMessageType(IntEnum):
    """Subset of OpenFlow 1.0 message types used by the reproduction."""

    HELLO = 0
    ERROR = 1
    ECHO_REQUEST = 2
    ECHO_REPLY = 3
    FEATURES_REQUEST = 5
    FEATURES_REPLY = 6
    PACKET_IN = 10
    FLOW_REMOVED = 11
    PACKET_OUT = 13
    FLOW_MOD = 14
    STATS_REQUEST = 16
    STATS_REPLY = 17
    BARRIER_REQUEST = 18
    BARRIER_REPLY = 19


class FlowModCommand(IntEnum):
    """FlowMod commands (OFPFC_*)."""

    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


class PacketInReason(IntEnum):
    """Why a switch sent a PacketIn (OFPR_*)."""

    NO_MATCH = 0
    ACTION = 1


class OFErrorType(IntEnum):
    """Error categories (OFPET_*), plus the vendor category RUM reuses."""

    HELLO_FAILED = 0
    BAD_REQUEST = 1
    BAD_ACTION = 2
    FLOW_MOD_FAILED = 3
    PORT_MOD_FAILED = 4
    QUEUE_OP_FAILED = 5
    #: Vendor/experimenter space.  The RUM prototype reuses an error message
    #: with an otherwise-unused code as a *positive* fine-grained rule
    #: acknowledgment (Section 4 of the paper).
    VENDOR = 0xFFFF


class OFErrorCode(IntEnum):
    """Error codes.  Only the ones the reproduction emits are listed."""

    # Standard FLOW_MOD_FAILED codes.
    ALL_TABLES_FULL = 0
    OVERLAP = 1
    EPERM = 2
    BAD_EMERG_TIMEOUT = 3
    BAD_COMMAND = 4
    UNSUPPORTED = 5
    # RUM's repurposed positive acknowledgment code (unused by OF 1.0).
    RUM_RULE_CONFIRMED = 0xF0F0


class StatsType(IntEnum):
    """Statistics request/reply subtypes (OFPST_*)."""

    DESC = 0
    FLOW = 1
    AGGREGATE = 2
    TABLE = 3
    PORT = 4
