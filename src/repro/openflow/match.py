"""OpenFlow 1.0 match structure with wildcards and IPv4 prefixes.

Besides packet classification (:meth:`Match.matches_packet`), the class
implements the set-algebra predicates that RUM's general probing technique
needs when constructing probe packets in the presence of overlapping rules:

* :meth:`Match.overlaps` — is there a packet matched by both rules?
* :meth:`Match.covers` — does this match include every packet of the other?
* :meth:`Match.intersection` — the most general match describing the packets
  matched by both (``None`` when disjoint).

All field values are integers; IP source/destination additionally carry a
prefix length so ``10.0.0.0/24`` style rules work.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.packet.addresses import ip_to_int, mac_to_int, prefix_mask
from repro.packet.fields import (
    FIELD_INDEX,
    FIELD_MAX_BY_INDEX,
    FIELD_REGISTRY,
    HeaderField,
)
from repro.packet.packet import Packet

def _compile_matcher(
    constraints: Tuple[Tuple[int, int, int], ...]
) -> Callable[[List[Optional[int]]], bool]:
    """Build a classifier closure for ``(field_index, value, mask)`` tuples.

    Operates on a packet's fixed-order header value array where ``None``
    means "field absent", which OpenFlow 1.0 treats as zero.  The one- and
    two-constraint shapes (the vast majority of installed rules) get
    specialised closures without loop overhead.
    """
    if not constraints:
        return lambda values: True
    if len(constraints) == 1:
        ((index, want, mask),) = constraints

        def match_one(values, _i=index, _want=want, _mask=mask):
            value = values[_i]
            return ((value or 0) & _mask) == _want

        return match_one
    if len(constraints) == 2:
        (index_a, want_a, mask_a), (index_b, want_b, mask_b) = constraints

        def match_two(values, _ia=index_a, _wa=want_a, _ma=mask_a,
                      _ib=index_b, _wb=want_b, _mb=mask_b):
            value_a = values[_ia]
            if ((value_a or 0) & _ma) != _wa:
                return False
            value_b = values[_ib]
            return ((value_b or 0) & _mb) == _wb

        return match_two

    def match_many(values, _constraints=constraints):
        for index, want, mask in _constraints:
            value = values[index]
            if ((value or 0) & mask) != want:
                return False
        return True

    return match_many


#: Fields that support prefix (masked) matching.
_PREFIX_FIELDS = (HeaderField.IP_SRC, HeaderField.IP_DST)

#: Fields whose human-friendly constructor values may be strings.
_MAC_FIELDS = (HeaderField.ETH_SRC, HeaderField.ETH_DST)


class Match:
    """An immutable OpenFlow match.

    Construct with keyword arguments named after :class:`HeaderField` values::

        Match(ip_src="10.0.0.1", ip_dst="10.0.1.5", ip_proto=17)
        Match(ip_dst=("10.0.0.0", 24))          # prefix match
        Match()                                  # match-all (all wildcards)

    Internally every constrained field is stored as ``(value, mask)`` where
    ``mask`` selects the significant bits.  Non-prefix fields always use the
    full-width mask.
    """

    __slots__ = ("_fields", "_compiled")

    def __init__(self, **kwargs) -> None:
        self._compiled: Optional[Callable[[List[Optional[int]]], bool]] = None
        fields: Dict[HeaderField, Tuple[int, int]] = {}
        for name, raw in kwargs.items():
            if raw is None:
                continue
            field = HeaderField(name)
            spec = FIELD_REGISTRY[field]
            full_mask = spec.max_value
            if field in _PREFIX_FIELDS:
                value, mask = self._parse_ip_constraint(raw)
            elif field in _MAC_FIELDS:
                value, mask = mac_to_int(raw), full_mask
            else:
                value, mask = int(raw), full_mask
            spec.validate(value & spec.max_value)
            fields[field] = (value & mask, mask)
        self._fields = fields

    @staticmethod
    def _parse_ip_constraint(raw) -> Tuple[int, int]:
        """Accept ``"a.b.c.d"``, ``("a.b.c.d", prefix)`` or ``"a.b.c.d/prefix"``."""
        if isinstance(raw, tuple):
            address, prefix = raw
        elif isinstance(raw, str) and "/" in raw:
            address, prefix_text = raw.split("/", 1)
            prefix = int(prefix_text)
        else:
            address, prefix = raw, 32
        mask = prefix_mask(int(prefix))
        return ip_to_int(address) & mask, mask

    # -- introspection -------------------------------------------------------
    @property
    def fields(self) -> Dict[HeaderField, Tuple[int, int]]:
        """Constrained fields as ``{field: (value, mask)}`` (a copy)."""
        return dict(self._fields)

    def constrained_fields(self) -> Iterable[HeaderField]:
        """The header fields this match constrains."""
        return self._fields.keys()

    def is_wildcard(self, field: HeaderField | str) -> bool:
        """Whether ``field`` is unconstrained by this match."""
        return HeaderField(field) not in self._fields

    def value_of(self, field: HeaderField | str) -> Optional[int]:
        """The exact value required for ``field``, or ``None`` if wildcarded/masked."""
        field = HeaderField(field)
        if field not in self._fields:
            return None
        value, mask = self._fields[field]
        if mask != FIELD_REGISTRY[field].max_value:
            return None
        return value

    @property
    def is_match_all(self) -> bool:
        """True when no field is constrained (matches every packet)."""
        return not self._fields

    def specificity(self) -> int:
        """Total number of constrained bits — a rough specificity measure."""
        return sum(bin(mask).count("1") for _value, mask in self._fields.values())

    # -- classification -----------------------------------------------------
    def matches_packet(self, packet: Packet) -> bool:
        """Whether ``packet`` satisfies every constraint of this match.

        Dispatches to the compiled matcher (see :meth:`compiled`); the
        original dict-walking implementation is kept as
        :meth:`matches_packet_reference` for equivalence testing.
        """
        matcher = self._compiled
        if matcher is None:
            matcher = self.compiled()
        return matcher(packet._values)

    def matches_packet_reference(self, packet: Packet) -> bool:
        """Reference (unoptimized) matcher: walk the constraint dict.

        Kept verbatim from the original implementation so property tests can
        assert the compiled matcher classifies identically.
        """
        for field, (value, mask) in self._fields.items():
            if (packet.get(field) & mask) != value:
                return False
        return True

    def compiled_constraints(self) -> Tuple[Tuple[int, int, int], ...]:
        """The constraints as ``(field_index, value, mask)`` tuples.

        Field indices follow :data:`~repro.packet.fields.FIELD_ORDER`, i.e.
        they index directly into a packet's header value array.
        """
        return tuple(sorted(
            (FIELD_INDEX[field], value, mask)
            for field, (value, mask) in self._fields.items()
        ))

    @property
    def is_exact(self) -> bool:
        """True when every constrained field uses its full-width mask.

        Exact matches are eligible for the flow table's hash-lookup fast
        path (no prefix/masked fields).
        """
        return all(
            mask == FIELD_MAX_BY_INDEX[FIELD_INDEX[field]]
            for field, (_value, mask) in self._fields.items()
        )

    def compiled(self) -> Callable[[List[Optional[int]]], bool]:
        """A compiled classifier closure over the packet header value array.

        The closure takes a fixed-order value array (``packet._values``) and
        returns whether it satisfies every constraint.  Compiled once per
        match and cached; ``Match`` is immutable after construction so the
        cache never goes stale.
        """
        matcher = self._compiled
        if matcher is None:
            matcher = _compile_matcher(self.compiled_constraints())
            self._compiled = matcher
        return matcher

    # -- set algebra -----------------------------------------------------------
    def covers(self, other: "Match") -> bool:
        """True when every packet matching ``other`` also matches ``self``."""
        for field, (value, mask) in self._fields.items():
            if field not in other._fields:
                return False
            other_value, other_mask = other._fields[field]
            # self's constrained bits must be a subset of other's and agree.
            if (mask & other_mask) != mask:
                return False
            if (other_value & mask) != value:
                return False
        return True

    def overlaps(self, other: "Match") -> bool:
        """True when at least one packet matches both ``self`` and ``other``."""
        return self.intersection(other) is not None

    def intersection(self, other: "Match") -> Optional["Match"]:
        """The match describing packets matched by both, or ``None`` if disjoint."""
        merged: Dict[HeaderField, Tuple[int, int]] = {}
        # Canonical field order: set-union iteration follows the randomized
        # per-process string hash of the enum members, which would build
        # ``merged`` (and the resulting match's field order) differently run
        # to run.
        for field in sorted(set(self._fields) | set(other._fields),
                            key=lambda f: f.value):
            mine = self._fields.get(field)
            theirs = other._fields.get(field)
            if mine is None:
                merged[field] = theirs  # type: ignore[assignment]
                continue
            if theirs is None:
                merged[field] = mine
                continue
            value_a, mask_a = mine
            value_b, mask_b = theirs
            common = mask_a & mask_b
            if (value_a & common) != (value_b & common):
                return None
            merged[field] = (value_a | value_b, mask_a | mask_b)
        result = Match()
        result._fields = merged
        return result

    def exact_same(self, other: "Match") -> bool:
        """Field-for-field equality (used for *_STRICT FlowMod semantics)."""
        return self._fields == other._fields

    # -- construction helpers ---------------------------------------------------
    def extended(self, **kwargs) -> "Match":
        """A new match with additional/overridden exact-value constraints."""
        combined = Match(**kwargs)
        merged = dict(self._fields)
        merged.update(combined._fields)
        result = Match()
        result._fields = merged
        return result

    def example_packet_headers(self, default: int = 0) -> Dict[HeaderField, int]:
        """Header values of one concrete packet satisfying this match.

        Wildcarded fields take ``default`` (clamped to the field width); masked
        fields take the constrained bits with zeros elsewhere.
        """
        headers: Dict[HeaderField, int] = {}
        for field, (value, _mask) in self._fields.items():
            headers[field] = value
        return headers

    # -- dunder -------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Match) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(tuple(sorted((field.value, value, mask)
                                 for field, (value, mask) in self._fields.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if not self._fields:
            return "Match(*)"
        parts = []
        for field, (value, mask) in sorted(self._fields.items(), key=lambda kv: kv[0].value):
            spec = FIELD_REGISTRY[field]
            if mask == spec.max_value:
                parts.append(f"{field.value}={value}")
            else:
                parts.append(f"{field.value}={value}/{bin(mask).count('1')}")
        return "Match(" + ", ".join(parts) + ")"
