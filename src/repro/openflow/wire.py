"""Binary (struct-packed) encode/decode of OpenFlow messages.

The simulated control channels deliver Python objects directly, but a
reproduction of a *protocol* layer should demonstrate that every message the
system exchanges survives a round trip through bytes — the same way it would
through a real TCP connection.  The codec below packs messages into an
OpenFlow-1.0-style framing: an 8-byte header ``(version, type, length, xid)``
followed by a message-specific body.

The body encodings are self-describing rather than bit-compatible with the
OpenFlow 1.0 wire format (matches and packets are encoded as field lists),
which keeps the codec exact and lossless for every field the reproduction
uses, including RUM's repurposed error code.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.openflow.actions import (
    Action,
    ControllerAction,
    DropAction,
    OutputAction,
    SetFieldAction,
)
from repro.openflow.constants import (
    FlowModCommand,
    OFErrorType,
    OFMessageType,
    OFP_VERSION,
    PacketInReason,
    StatsType,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    OFMessage,
    PacketIn,
    PacketOut,
    StatsReply,
    StatsRequest,
)
from repro.packet.fields import HeaderField
from repro.packet.packet import Packet

_HEADER = struct.Struct("!BBHI")

#: Stable numeric ids for header fields on the wire.
_FIELD_IDS: Dict[HeaderField, int] = {
    field: index for index, field in enumerate(HeaderField)
}
_FIELD_BY_ID = {index: field for field, index in _FIELD_IDS.items()}

_ACTION_OUTPUT = 0
_ACTION_CONTROLLER = 1
_ACTION_DROP = 2
_ACTION_SET_FIELD = 3


class WireError(ValueError):
    """Raised when a byte buffer cannot be decoded."""


# ---------------------------------------------------------------------------
# primitive encoders
# ---------------------------------------------------------------------------

def _encode_match(match: Match) -> bytes:
    fields = match.fields
    parts = [struct.pack("!B", len(fields))]
    for field, (value, mask) in sorted(fields.items(), key=lambda kv: _FIELD_IDS[kv[0]]):
        parts.append(struct.pack("!BQQ", _FIELD_IDS[field], value, mask))
    return b"".join(parts)


def _decode_match(buffer: bytes, offset: int) -> Tuple[Match, int]:
    (count,) = struct.unpack_from("!B", buffer, offset)
    offset += 1
    match = Match()
    fields = {}
    for _ in range(count):
        field_id, value, mask = struct.unpack_from("!BQQ", buffer, offset)
        offset += 17
        fields[_FIELD_BY_ID[field_id]] = (value, mask)
    match._fields = fields
    return match, offset


def _encode_packet(packet: Packet) -> bytes:
    headers = packet.headers
    parts = [
        struct.pack(
            "!BIHd",
            1 if packet.is_probe else 0,
            packet.payload_size,
            packet.sequence & 0xFFFF,
            packet.created_at,
        )
    ]
    flow_id = (packet.flow_id or "").encode("utf-8")
    parts.append(struct.pack("!H", len(flow_id)))
    parts.append(flow_id)
    parts.append(struct.pack("!B", len(headers)))
    for field, value in sorted(headers.items(), key=lambda kv: _FIELD_IDS[kv[0]]):
        parts.append(struct.pack("!BQ", _FIELD_IDS[field], value))
    return b"".join(parts)


def _decode_packet(buffer: bytes, offset: int) -> Tuple[Packet, int]:
    is_probe, payload_size, sequence, created_at = struct.unpack_from("!BIHd", buffer, offset)
    offset += struct.calcsize("!BIHd")
    (flow_id_length,) = struct.unpack_from("!H", buffer, offset)
    offset += 2
    flow_id = buffer[offset:offset + flow_id_length].decode("utf-8") or None
    offset += flow_id_length
    (count,) = struct.unpack_from("!B", buffer, offset)
    offset += 1
    headers = {}
    for _ in range(count):
        field_id, value = struct.unpack_from("!BQ", buffer, offset)
        offset += 9
        headers[_FIELD_BY_ID[field_id]] = value
    packet = Packet(
        headers,
        payload_size=payload_size,
        flow_id=flow_id,
        created_at=created_at,
        sequence=sequence,
        is_probe=bool(is_probe),
    )
    return packet, offset


def _encode_actions(actions: List[Action]) -> bytes:
    parts = [struct.pack("!B", len(actions))]
    for action in actions:
        if isinstance(action, OutputAction):
            parts.append(struct.pack("!BHQ", _ACTION_OUTPUT, action.port, 0))
        elif isinstance(action, ControllerAction):
            parts.append(struct.pack("!BHQ", _ACTION_CONTROLLER, 0, 0))
        elif isinstance(action, DropAction):
            parts.append(struct.pack("!BHQ", _ACTION_DROP, 0, 0))
        elif isinstance(action, SetFieldAction):
            parts.append(
                struct.pack("!BHQ", _ACTION_SET_FIELD, _FIELD_IDS[action.field], action.value)
            )
        else:  # pragma: no cover - defensive
            raise WireError(f"cannot encode action {action!r}")
    return b"".join(parts)


def _decode_actions(buffer: bytes, offset: int) -> Tuple[List[Action], int]:
    (count,) = struct.unpack_from("!B", buffer, offset)
    offset += 1
    actions: List[Action] = []
    for _ in range(count):
        kind, arg, value = struct.unpack_from("!BHQ", buffer, offset)
        offset += 11
        if kind == _ACTION_OUTPUT:
            actions.append(OutputAction(arg))
        elif kind == _ACTION_CONTROLLER:
            actions.append(ControllerAction())
        elif kind == _ACTION_DROP:
            actions.append(DropAction())
        elif kind == _ACTION_SET_FIELD:
            actions.append(SetFieldAction(_FIELD_BY_ID[arg], value))
        else:
            raise WireError(f"unknown action kind {kind}")
    return actions, offset


# ---------------------------------------------------------------------------
# message codec
# ---------------------------------------------------------------------------

def encode(message: OFMessage) -> bytes:
    """Serialise ``message`` to bytes (header + body)."""
    body = _encode_body(message)
    header = _HEADER.pack(
        OFP_VERSION, int(message.message_type), _HEADER.size + len(body), message.xid
    )
    return header + body


def _encode_body(message: OFMessage) -> bytes:
    if isinstance(message, (Hello, FeaturesRequest, BarrierRequest, BarrierReply)):
        return b""
    if isinstance(message, (EchoRequest, EchoReply)):
        return struct.pack("!H", len(message.payload)) + message.payload
    if isinstance(message, FeaturesReply):
        ports = struct.pack(f"!{len(message.ports)}H", *message.ports)
        return struct.pack("!QBH", message.datapath_id, message.n_tables,
                           len(message.ports)) + ports
    if isinstance(message, FlowMod):
        head = struct.pack(
            "!BHQHH",
            int(message.command),
            message.priority,
            message.cookie,
            message.idle_timeout,
            message.hard_timeout,
        )
        return head + _encode_match(message.match) + _encode_actions(message.actions)
    if isinstance(message, PacketOut):
        return (
            struct.pack("!H", message.in_port)
            + _encode_actions(message.actions)
            + _encode_packet(message.packet)
        )
    if isinstance(message, PacketIn):
        head = struct.pack(
            "!HBIQ", message.in_port, int(message.reason), message.buffer_id,
            message.datapath_id,
        )
        return head + _encode_packet(message.packet)
    if isinstance(message, FlowRemoved):
        head = struct.pack("!HQd", message.priority, message.cookie, message.duration)
        return head + _encode_match(message.match)
    if isinstance(message, ErrorMessage):
        return struct.pack("!HHQ", int(message.error_type), message.error_code, message.data)
    if isinstance(message, StatsRequest):
        return struct.pack("!H", int(message.stats_type)) + _encode_match(message.match)
    if isinstance(message, StatsReply):
        import json

        body = json.dumps(message.body).encode("utf-8")
        return struct.pack("!HI", int(message.stats_type), len(body)) + body
    raise WireError(f"cannot encode message {message!r}")


def decode(buffer: bytes) -> OFMessage:
    """Deserialise one message from ``buffer`` (which must hold exactly one)."""
    if len(buffer) < _HEADER.size:
        raise WireError("buffer shorter than OpenFlow header")
    version, message_type, length, xid = _HEADER.unpack_from(buffer, 0)
    if version != OFP_VERSION:
        raise WireError(f"unsupported OpenFlow version {version}")
    if length != len(buffer):
        raise WireError(f"length field {length} does not match buffer size {len(buffer)}")
    body = buffer[_HEADER.size:]
    message = _decode_body(OFMessageType(message_type), body)
    message.xid = xid
    return message


def _decode_body(message_type: OFMessageType, body: bytes) -> OFMessage:
    if message_type == OFMessageType.HELLO:
        return Hello()
    if message_type == OFMessageType.FEATURES_REQUEST:
        return FeaturesRequest()
    if message_type == OFMessageType.BARRIER_REQUEST:
        return BarrierRequest()
    if message_type == OFMessageType.BARRIER_REPLY:
        return BarrierReply()
    if message_type in (OFMessageType.ECHO_REQUEST, OFMessageType.ECHO_REPLY):
        (length,) = struct.unpack_from("!H", body, 0)
        payload = body[2:2 + length]
        cls = EchoRequest if message_type == OFMessageType.ECHO_REQUEST else EchoReply
        return cls(payload=payload)
    if message_type == OFMessageType.FEATURES_REPLY:
        datapath_id, n_tables, port_count = struct.unpack_from("!QBH", body, 0)
        offset = struct.calcsize("!QBH")
        ports = list(struct.unpack_from(f"!{port_count}H", body, offset))
        return FeaturesReply(datapath_id, ports, n_tables=n_tables)
    if message_type == OFMessageType.FLOW_MOD:
        command, priority, cookie, idle_timeout, hard_timeout = struct.unpack_from(
            "!BHQHH", body, 0
        )
        offset = struct.calcsize("!BHQHH")
        match, offset = _decode_match(body, offset)
        actions, _offset = _decode_actions(body, offset)
        return FlowMod(
            match,
            actions,
            command=FlowModCommand(command),
            priority=priority,
            cookie=cookie,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
        )
    if message_type == OFMessageType.PACKET_OUT:
        (in_port,) = struct.unpack_from("!H", body, 0)
        actions, offset = _decode_actions(body, 2)
        packet, _offset = _decode_packet(body, offset)
        return PacketOut(packet, actions, in_port=in_port)
    if message_type == OFMessageType.PACKET_IN:
        in_port, reason, buffer_id, datapath_id = struct.unpack_from("!HBIQ", body, 0)
        offset = struct.calcsize("!HBIQ")
        packet, _offset = _decode_packet(body, offset)
        return PacketIn(
            packet, in_port, reason=PacketInReason(reason), buffer_id=buffer_id,
            datapath_id=datapath_id,
        )
    if message_type == OFMessageType.FLOW_REMOVED:
        priority, cookie, duration = struct.unpack_from("!HQd", body, 0)
        offset = struct.calcsize("!HQd")
        match, _offset = _decode_match(body, offset)
        return FlowRemoved(match, priority, cookie=cookie, duration=duration)
    if message_type == OFMessageType.ERROR:
        error_type, error_code, data = struct.unpack_from("!HHQ", body, 0)
        return ErrorMessage(OFErrorType(error_type), error_code, data=data)
    if message_type == OFMessageType.STATS_REQUEST:
        (stats_type,) = struct.unpack_from("!H", body, 0)
        match, _offset = _decode_match(body, 2)
        return StatsRequest(StatsType(stats_type), match=match)
    if message_type == OFMessageType.STATS_REPLY:
        import json

        stats_type, length = struct.unpack_from("!HI", body, 0)
        payload = body[6:6 + length]
        return StatsReply(StatsType(stats_type), body=json.loads(payload.decode("utf-8")))
    raise WireError(f"cannot decode message type {message_type}")


def roundtrip(message: OFMessage) -> OFMessage:
    """Encode then decode ``message`` (convenience for tests)."""
    return decode(encode(message))
