"""Flow table with OpenFlow 1.0 add/modify/delete semantics.

Two lookup disciplines are supported:

* ``priority`` (default) — the highest-priority matching entry wins; ties are
  broken by installation order (older entry wins), which is how Open vSwitch
  behaves for equal priorities.
* ``install_order`` — priorities are ignored and the *most recently installed*
  matching entry wins.  This replicates the hardware switch used in the
  paper's prototype, which "does not support priorities but takes the rule
  installation order to define the rule importance"; the paper's prototype
  therefore "carefully place[s] the low priority rules early" so that later
  installations take precedence (Section 4).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.openflow.actions import Action, actions_signature
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.packet.packet import Packet

_entry_ids = itertools.count(1)


class FlowEntry:
    """One installed rule."""

    __slots__ = (
        "entry_id",
        "match",
        "actions",
        "priority",
        "cookie",
        "installed_at",
        "packet_count",
        "byte_count",
        "source_xid",
    )

    def __init__(
        self,
        match: Match,
        actions: Sequence[Action],
        priority: int = 32768,
        cookie: int = 0,
        installed_at: float = 0.0,
        source_xid: int = 0,
    ) -> None:
        self.entry_id = next(_entry_ids)
        self.match = match
        self.actions: List[Action] = list(actions)
        self.priority = int(priority)
        self.cookie = int(cookie)
        self.installed_at = installed_at
        self.packet_count = 0
        self.byte_count = 0
        self.source_xid = source_xid

    def record_hit(self, packet: Packet) -> None:
        """Update per-rule counters when a packet matches."""
        self.packet_count += 1
        self.byte_count += packet.total_size

    def signature(self) -> Tuple:
        """Hashable identity used to compare control- and data-plane state."""
        return (self.match, self.priority, actions_signature(self.actions))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<FlowEntry #{self.entry_id} prio={self.priority} {self.match!r} "
            f"-> {self.actions!r}>"
        )


class FlowTable:
    """A single-table OpenFlow pipeline."""

    __slots__ = (
        "mode",
        "capacity",
        "name",
        "_entries",
        "_install_counter",
        "_lookup_index",
    )

    def __init__(
        self,
        mode: str = "priority",
        capacity: Optional[int] = None,
        name: str = "table0",
    ) -> None:
        if mode not in ("priority", "install_order"):
            raise ValueError(f"unknown flow table mode {mode!r}")
        self.mode = mode
        self.capacity = capacity
        self.name = name
        self._entries: List[FlowEntry] = []
        self._install_counter = 0
        #: Compiled lookup structure, built lazily and dropped on mutation.
        #: ``priority`` mode: priority-descending buckets, each with an
        #: exact-match hash fast path plus compiled wildcard matchers.
        #: ``install_order`` mode: recency-ordered ``(entry, matcher)`` list.
        self._lookup_index = None

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(list(self._entries))

    @property
    def entries(self) -> List[FlowEntry]:
        """A copy of the current entries (stable order: installation order)."""
        return list(self._entries)

    def entries_sorted_for_lookup(self) -> List[FlowEntry]:
        """Entries in the order the lookup algorithm considers them."""
        if self.mode == "install_order":
            # Most recently installed first: priorities are ignored and later
            # installations take precedence over earlier ones.
            return sorted(
                self._entries, key=lambda entry: (-entry.installed_at, -entry.entry_id)
            )
        return sorted(
            self._entries, key=lambda entry: (-entry.priority, entry.installed_at, entry.entry_id)
        )

    def find(self, predicate: Callable[[FlowEntry], bool]) -> List[FlowEntry]:
        """All entries satisfying ``predicate``."""
        return [entry for entry in self._entries if predicate(entry)]

    def occupancy(self) -> int:
        """Number of installed rules (alias of ``len``)."""
        return len(self._entries)

    # -- mutation ------------------------------------------------------------
    def apply_flowmod(self, flowmod: FlowMod, now: float = 0.0) -> List[FlowEntry]:
        """Apply a FlowMod and return the entries that were added or modified.

        Raises :class:`TableFullError` when an ADD would exceed the capacity.
        """
        command = flowmod.command
        if command == FlowModCommand.ADD:
            return [self._add(flowmod, now)]
        if command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            return self._modify(flowmod, strict=command == FlowModCommand.MODIFY_STRICT, now=now)
        if command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            self._delete(flowmod, strict=command == FlowModCommand.DELETE_STRICT)
            return []
        raise ValueError(f"unsupported FlowMod command {command}")

    def _add(self, flowmod: FlowMod, now: float) -> FlowEntry:
        self._invalidate_index()
        # OpenFlow ADD semantics: an identical match at the same priority is
        # replaced rather than duplicated.
        for index, entry in enumerate(self._entries):
            if entry.priority == flowmod.priority and entry.match.exact_same(flowmod.match):
                replacement = FlowEntry(
                    flowmod.match,
                    flowmod.actions,
                    priority=flowmod.priority,
                    cookie=flowmod.cookie,
                    installed_at=entry.installed_at if self.mode == "install_order" else now,
                    source_xid=flowmod.xid,
                )
                self._entries[index] = replacement
                return replacement
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise TableFullError(
                f"flow table {self.name!r} full ({self.capacity} entries)"
            )
        entry = FlowEntry(
            flowmod.match,
            flowmod.actions,
            priority=flowmod.priority,
            cookie=flowmod.cookie,
            installed_at=now,
            source_xid=flowmod.xid,
        )
        self._install_counter += 1
        self._entries.append(entry)
        return entry

    def _modify(self, flowmod: FlowMod, strict: bool, now: float) -> List[FlowEntry]:
        self._invalidate_index()
        touched: List[FlowEntry] = []
        for entry in self._entries:
            if self._selected(entry, flowmod.match, flowmod.priority, strict):
                entry.actions = list(flowmod.actions)
                entry.cookie = flowmod.cookie
                entry.source_xid = flowmod.xid
                touched.append(entry)
        if not touched:
            # OpenFlow 1.0: MODIFY with no matching entry behaves like ADD.
            touched.append(self._add(flowmod, now))
        return touched

    def _delete(self, flowmod: FlowMod, strict: bool) -> None:
        self._invalidate_index()
        self._entries = [
            entry
            for entry in self._entries
            if not self._selected(entry, flowmod.match, flowmod.priority, strict)
        ]

    @staticmethod
    def _selected(entry: FlowEntry, match: Match, priority: int, strict: bool) -> bool:
        if strict:
            return entry.priority == priority and entry.match.exact_same(match)
        # Non-strict: the FlowMod match acts as a wildcard filter that must
        # cover the entry's match.
        return match.covers(entry.match) or match.is_match_all

    def remove_entry(self, entry: FlowEntry) -> None:
        """Remove a specific entry object (used by timeout expiry)."""
        self._invalidate_index()
        self._entries = [candidate for candidate in self._entries if candidate is not entry]

    def clear(self) -> None:
        """Remove all entries."""
        self._invalidate_index()
        self._entries.clear()

    # -- lookup -----------------------------------------------------------------
    def _invalidate_index(self) -> None:
        self._lookup_index = None

    def _build_priority_index(self):
        """Priority-descending buckets with an exact-match dict fast path.

        Each bucket holds the entries of one priority as
        ``(exact_groups, wildcard)`` where ``exact_groups`` maps a field
        signature (tuple of constrained field indices) to a hash table
        ``{field values: (order, entry)}`` for fully-specified rules, and
        ``wildcard`` lists the remaining entries as compiled matchers in
        tie-break order (``order`` is ``(installed_at, entry_id)`` — the
        equal-priority "older entry wins" rule).
        """
        by_priority: Dict[int, list] = {}
        for entry in self._entries:
            by_priority.setdefault(entry.priority, []).append(
                ((entry.installed_at, entry.entry_id), entry)
            )
        buckets = []
        for priority in sorted(by_priority, reverse=True):
            exact_groups: Dict[tuple, dict] = {}
            wildcard = []
            for order, entry in sorted(by_priority[priority]):
                match = entry.match
                constraints = match.compiled_constraints()
                if constraints and match.is_exact:
                    signature = tuple(item[0] for item in constraints)
                    group = exact_groups.setdefault(signature, {})
                    key = tuple(item[1] for item in constraints)
                    # Oldest entry wins among identical (priority, match)
                    # duplicates, mirroring the linear reference scan.
                    group.setdefault(key, (order, entry))
                else:
                    wildcard.append((order, entry, match.compiled()))
            buckets.append((list(exact_groups.items()), wildcard))
        return buckets

    def _build_install_order_index(self):
        """Recency-first compiled entry list (hardware table semantics)."""
        ordered = sorted(
            self._entries, key=lambda entry: (-entry.installed_at, -entry.entry_id)
        )
        return [(entry, entry.match.compiled()) for entry in ordered]

    def lookup_values(self, values) -> Optional[FlowEntry]:
        """Classify a fixed-order header value array (the hot path).

        ``values`` follows :data:`~repro.packet.fields.FIELD_ORDER` with
        ``None`` for absent fields (read as zero), exactly like
        ``packet._values`` with ``in_port`` filled in.
        """
        index = self._lookup_index
        if self.mode == "install_order":
            if index is None:
                index = self._lookup_index = self._build_install_order_index()
            for entry, matcher in index:
                if matcher(values):
                    return entry
            return None
        if index is None:
            index = self._lookup_index = self._build_priority_index()
        for exact_groups, wildcard in index:
            best_order = None
            best_entry = None
            for signature, group in exact_groups:
                key = tuple((values[i] or 0) for i in signature)
                hit = group.get(key)
                if hit is not None and (best_order is None or hit[0] < best_order):
                    best_order, best_entry = hit
            for order, entry, matcher in wildcard:
                if best_order is not None and order > best_order:
                    break
                if matcher(values):
                    best_order, best_entry = order, entry
                    break
            if best_entry is not None:
                return best_entry
        return None

    def lookup(self, packet: Packet) -> Optional[FlowEntry]:
        """The entry that would forward ``packet``, or ``None`` (table miss)."""
        return self.lookup_values(packet._values)

    def lookup_reference(self, packet: Packet) -> Optional[FlowEntry]:
        """Reference (unoptimized) lookup: sorted linear scan.

        The original implementation, kept for equivalence testing against
        :meth:`lookup_values`' compiled index.
        """
        for entry in self.entries_sorted_for_lookup():
            if entry.match.matches_packet_reference(packet):
                return entry
        return None

    def lookup_all(self, packet: Packet) -> List[FlowEntry]:
        """Every entry matching ``packet`` in lookup order (diagnostics only)."""
        return [entry for entry in self.entries_sorted_for_lookup()
                if entry.match.matches_packet(packet)]

    # -- comparison ----------------------------------------------------------------
    def signature_set(self) -> set:
        """Set of entry signatures — used to diff control vs. data plane state."""
        return {entry.signature() for entry in self._entries}

    def dump(self) -> List[Dict]:
        """A JSON-able dump of the table (tests and debugging)."""
        return [
            {
                "priority": entry.priority,
                "match": repr(entry.match),
                "actions": [repr(action) for action in entry.actions],
                "packets": entry.packet_count,
            }
            for entry in self.entries_sorted_for_lookup()
        ]


class TableFullError(RuntimeError):
    """Raised when an ADD exceeds the flow table capacity."""


def diff_tables(reference: FlowTable, other: FlowTable) -> Tuple[set, set]:
    """Entries present only in ``reference`` and only in ``other`` (by signature)."""
    ref = reference.signature_set()
    oth = other.signature_set()
    return ref - oth, oth - ref
