"""OpenFlow 1.0-style substrate.

This package models the parts of OpenFlow that RUM manipulates:

* :mod:`repro.openflow.match` — the 12-tuple match with wildcards and IPv4
  prefixes, plus the overlap/covering predicates probe generation needs,
* :mod:`repro.openflow.actions` — output / set-field / controller actions,
* :mod:`repro.openflow.messages` — FlowMod, Barrier, PacketIn/PacketOut,
  Error, Stats and session messages with monotonically increasing xids,
* :mod:`repro.openflow.wire` — binary (struct-packed) encode/decode so that a
  message survives a round trip through a byte buffer like it would through a
  real TCP connection,
* :mod:`repro.openflow.flowtable` — a priority flow table with OpenFlow add /
  modify / delete semantics and an installation-order mode replicating the
  paper's hardware switch that ignores priorities,
* :mod:`repro.openflow.connection` — simulated controller↔switch channels the
  RUM proxy can transparently interpose on.
"""

from repro.openflow.constants import (
    CONTROLLER_PORT,
    FlowModCommand,
    OFErrorCode,
    OFErrorType,
    OFMessageType,
    PacketInReason,
)
from repro.openflow.match import Match
from repro.openflow.actions import (
    Action,
    ControllerAction,
    DropAction,
    OutputAction,
    SetFieldAction,
)
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    OFMessage,
    PacketIn,
    PacketOut,
    StatsReply,
    StatsRequest,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.connection import Connection, ConnectionEndpoint

__all__ = [
    "Action",
    "BarrierReply",
    "BarrierRequest",
    "CONTROLLER_PORT",
    "Connection",
    "ConnectionEndpoint",
    "ControllerAction",
    "DropAction",
    "EchoReply",
    "EchoRequest",
    "ErrorMessage",
    "FeaturesReply",
    "FeaturesRequest",
    "FlowEntry",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "FlowTable",
    "Hello",
    "Match",
    "OFErrorCode",
    "OFErrorType",
    "OFMessage",
    "OFMessageType",
    "OutputAction",
    "PacketIn",
    "PacketInReason",
    "PacketOut",
    "SetFieldAction",
    "StatsReply",
    "StatsRequest",
]
