"""OpenFlow actions.

An action list is applied to a packet by the switch data plane, in order.
The reproduction needs only four kinds:

* :class:`OutputAction` — forward out of a physical port,
* :class:`ControllerAction` — encapsulate in a PacketIn and send to the
  controller (this is what RUM's probe-catch rules do),
* :class:`SetFieldAction` — rewrite a header field (used by the versioned
  probe rule: ``H1 <- postprobe, H2 <- version``),
* :class:`DropAction` — explicit drop (OpenFlow expresses this with an empty
  action list; we keep an explicit action for readability in rule dumps).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.openflow.constants import CONTROLLER_PORT, DROP_PORT
from repro.packet.fields import FIELD_REGISTRY, HeaderField
from repro.packet.packet import Packet


class Action:
    """Base class for all actions."""

    #: Discriminator used by the wire codec.
    kind = "action"

    def apply(self, packet: Packet) -> None:
        """Mutate ``packet`` in place (only rewrite actions do anything)."""

    def forwarding_signature(self) -> Tuple:
        """A hashable summary of the action's externally observable effect.

        Probe generation compares signatures to decide whether two rules are
        distinguishable from the data plane (same output port *and* same
        rewrites means a probe cannot tell them apart).
        """
        return (self.kind,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Action) and self.forwarding_signature() == other.forwarding_signature()

    def __hash__(self) -> int:
        return hash(self.forwarding_signature())


class OutputAction(Action):
    """Forward the packet out of ``port``."""

    kind = "output"

    def __init__(self, port: int) -> None:
        if port < 0:
            raise ValueError(f"invalid port {port}")
        self.port = int(port)

    def forwarding_signature(self) -> Tuple:
        return (self.kind, self.port)

    def __repr__(self) -> str:
        return f"Output({self.port})"


class ControllerAction(Action):
    """Send the packet to the controller inside a PacketIn message."""

    kind = "controller"

    def __init__(self, max_length: int = 0xFFFF) -> None:
        self.port = CONTROLLER_PORT
        self.max_length = max_length

    def forwarding_signature(self) -> Tuple:
        return (self.kind,)

    def __repr__(self) -> str:
        return "ToController()"


class DropAction(Action):
    """Explicitly drop the packet."""

    kind = "drop"

    def __init__(self) -> None:
        self.port = DROP_PORT

    def forwarding_signature(self) -> Tuple:
        return (self.kind,)

    def __repr__(self) -> str:
        return "Drop()"


class SetFieldAction(Action):
    """Rewrite one header field to a fixed value before forwarding."""

    kind = "set_field"

    def __init__(self, field: HeaderField | str, value: int) -> None:
        self.field = HeaderField(field)
        spec = FIELD_REGISTRY[self.field]
        if not spec.rewritable:
            raise ValueError(f"field {self.field.value} is not rewritable")
        spec.validate(value)
        self.value = int(value)

    def apply(self, packet: Packet) -> None:
        packet.set(self.field, self.value)

    def forwarding_signature(self) -> Tuple:
        return (self.kind, self.field.value, self.value)

    def __repr__(self) -> str:
        return f"SetField({self.field.value}={self.value})"


def apply_actions(packet: Packet, actions: Sequence[Action]) -> List[int]:
    """Apply an action list to ``packet`` and return the list of output ports.

    Rewrites take effect in order, so a ``SetField`` before an ``Output``
    affects what is sent, matching OpenFlow semantics.  The returned list may
    contain :data:`CONTROLLER_PORT`; an empty list means the packet is dropped.
    """
    outputs: List[int] = []
    for action in actions:
        if isinstance(action, SetFieldAction):
            action.apply(packet)
        elif isinstance(action, OutputAction):
            outputs.append(action.port)
        elif isinstance(action, ControllerAction):
            outputs.append(CONTROLLER_PORT)
        elif isinstance(action, DropAction):
            return []
    return outputs


def actions_signature(actions: Sequence[Action]) -> Tuple:
    """Hashable signature of a whole action list (order preserving)."""
    return tuple(action.forwarding_signature() for action in actions)
