"""Simulated OpenFlow control channels.

A :class:`Connection` joins two :class:`ConnectionEndpoint` objects (for
example a switch agent and a controller, or a switch and the RUM proxy).
Messages sent on one endpoint are delivered to the other endpoint's receive
handler after the configured one-way latency, preserving ordering — exactly
the guarantee a TCP connection gives a real controller.

The RUM prototype in the paper is a TCP proxy: switches connect to it as if
it were the controller, and it opens upstream connections to the real
controller, impersonating each switch.  The same topology is expressed here
by creating one Connection between each switch and the proxy and another
between the proxy and the controller, and letting the proxy forward (or
buffer, rewrite, inject, drop) messages between its two endpoints.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs import tracer as obs_tracer
from repro.obs.events import PHASE_MSG_SENT
from repro.openflow.messages import OFMessage
from repro.sim.kernel import Simulator

MessageHandler = Callable[[OFMessage], None]
#: A fault interceptor: ``(from_side, message) -> consumed``.  Returning
#: ``True`` means the interceptor took over delivery (dropped, delayed or
#: replaced the message); ``False`` lets normal delivery proceed.
TransmitIntercept = Callable[[int, OFMessage], bool]


class ConnectionEndpoint:
    """One side of a control channel."""

    def __init__(self, name: str, connection: "Connection", side: int) -> None:
        self.name = name
        self.connection = connection
        self._side = side
        self._handler: Optional[MessageHandler] = None
        self._backlog: List[OFMessage] = []
        self.sent_count = 0
        self.received_count = 0

    # -- wiring -------------------------------------------------------------
    def on_message(self, handler: MessageHandler) -> None:
        """Register the receive handler; drains any messages that arrived early."""
        self._handler = handler
        backlog, self._backlog = self._backlog, []
        for message in backlog:
            self._deliver(message)

    # -- I/O -----------------------------------------------------------------
    def send(self, message: OFMessage) -> None:
        """Send ``message`` to the peer endpoint (asynchronous, ordered)."""
        self.sent_count += 1
        self.connection._transmit(self._side, message)

    def _deliver(self, message: OFMessage) -> None:
        self.received_count += 1
        if self._handler is None:
            self._backlog.append(message)
        else:
            self._handler(message)

    @property
    def peer(self) -> "ConnectionEndpoint":
        """The endpoint on the other side of the connection."""
        return self.connection.endpoint(1 - self._side)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Endpoint {self.name} of {self.connection.name}>"


class Connection:
    """A bidirectional, ordered, lossless control channel with fixed latency."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "channel",
        latency: float = 0.0005,
        name_a: str = "a",
        name_b: str = "b",
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.name = name
        self.latency = latency
        self._endpoints = (
            ConnectionEndpoint(name_a, self, 0),
            ConnectionEndpoint(name_b, self, 1),
        )
        #: Per-direction delivery time of the last message, used to preserve
        #: FIFO ordering even if latency were to change mid-run.
        self._last_delivery = [0.0, 0.0]
        self.messages_in_flight = 0
        self.total_messages = 0
        #: Optional fault interceptor (see :mod:`repro.faults.control`);
        #: ``None`` — the default — is the lossless fixed-latency channel.
        self._intercept: Optional[TransmitIntercept] = None

    # -- endpoints -----------------------------------------------------------
    def endpoint(self, side: int) -> ConnectionEndpoint:
        """Endpoint 0 (the ``name_a`` side) or 1 (the ``name_b`` side)."""
        return self._endpoints[side]

    @property
    def side_a(self) -> ConnectionEndpoint:
        """The first endpoint (conventionally the switch side)."""
        return self._endpoints[0]

    @property
    def side_b(self) -> ConnectionEndpoint:
        """The second endpoint (conventionally the controller side)."""
        return self._endpoints[1]

    # -- fault interception --------------------------------------------------
    def install_intercept(self, intercept: TransmitIntercept) -> None:
        """Route every transmission through ``intercept`` (fault injection).

        Only one interceptor can be installed; the fault harness chains
        multiple fault models behind a single callable.
        """
        if self._intercept is not None:
            raise ValueError(f"connection {self.name!r} already has an interceptor")
        self._intercept = intercept

    def remove_intercept(self) -> None:
        """Restore the lossless, fixed-latency behaviour."""
        self._intercept = None

    # -- transmission -----------------------------------------------------------
    def _transmit(self, from_side: int, message: OFMessage) -> None:
        tr = obs_tracer.TRACER
        if tr.active:
            # The channel is named after what it connects (``ctl-<switch>``,
            # ``rum-<switch>``); the timeline maps it back to the switch.
            tr.rule(PHASE_MSG_SENT, self.sim.now, self.name,
                    getattr(message, "xid", None),
                    detail=type(message).__name__)
        if self._intercept is not None and self._intercept(from_side, message):
            return
        self._schedule_delivery(from_side, message)

    def _schedule_delivery(self, from_side: int, message: OFMessage,
                           extra_latency: float = 0.0) -> None:
        to_side = 1 - from_side
        deliver_at = max(self.sim.now + self.latency + extra_latency,
                         self._last_delivery[to_side])
        self._last_delivery[to_side] = deliver_at
        self.messages_in_flight += 1
        self.total_messages += 1
        self.sim.schedule_callback(
            deliver_at - self.sim.now, self._complete_delivery, to_side, message
        )

    def _complete_delivery(self, to_side: int, message: OFMessage) -> None:
        self.messages_in_flight -= 1
        self._endpoints[to_side]._deliver(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Connection {self.name} latency={self.latency * 1000:.2f}ms>"
