"""OpenFlow message classes.

Each message carries a transaction id (``xid``).  RUM relies heavily on xids:
it must remember which FlowMod/Barrier a given reply or probe confirmation
corresponds to, and it must be able to inject messages with fresh xids that
never collide with the controller's.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.openflow.actions import Action
from repro.openflow.constants import (
    FlowModCommand,
    OFErrorCode,
    OFErrorType,
    OFMessageType,
    OFP_VERSION,
    PacketInReason,
    StatsType,
)
from repro.openflow.match import Match
from repro.packet.packet import Packet

_xid_counter = itertools.count(1)


def next_xid() -> int:
    """Allocate a process-wide unique transaction id."""
    return next(_xid_counter)


class OFMessage:
    """Base class of every OpenFlow message."""

    message_type: OFMessageType = OFMessageType.HELLO

    def __init__(self, xid: Optional[int] = None) -> None:
        self.xid = next_xid() if xid is None else int(xid)
        self.version = OFP_VERSION

    @property
    def type_name(self) -> str:
        """Human-readable message type name."""
        return self.message_type.name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} xid={self.xid}>"


class Hello(OFMessage):
    """Session establishment message."""

    message_type = OFMessageType.HELLO


class EchoRequest(OFMessage):
    """Liveness check request."""

    message_type = OFMessageType.ECHO_REQUEST

    def __init__(self, payload: bytes = b"", xid: Optional[int] = None) -> None:
        super().__init__(xid)
        self.payload = payload


class EchoReply(OFMessage):
    """Liveness check reply (echoes the request payload)."""

    message_type = OFMessageType.ECHO_REPLY

    def __init__(self, payload: bytes = b"", xid: Optional[int] = None) -> None:
        super().__init__(xid)
        self.payload = payload


class FeaturesRequest(OFMessage):
    """Ask the switch for its datapath id and port list."""

    message_type = OFMessageType.FEATURES_REQUEST


class FeaturesReply(OFMessage):
    """Switch capabilities announcement."""

    message_type = OFMessageType.FEATURES_REPLY

    def __init__(
        self,
        datapath_id: int,
        ports: Sequence[int],
        n_tables: int = 1,
        capabilities: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.datapath_id = int(datapath_id)
        self.ports = list(ports)
        self.n_tables = n_tables
        self.capabilities = capabilities


class FlowMod(OFMessage):
    """Install, modify or delete a flow-table rule."""

    message_type = OFMessageType.FLOW_MOD

    def __init__(
        self,
        match: Match,
        actions: Sequence[Action] = (),
        command: FlowModCommand = FlowModCommand.ADD,
        priority: int = 32768,
        cookie: int = 0,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.match = match
        self.actions: List[Action] = list(actions)
        self.command = FlowModCommand(command)
        self.priority = int(priority)
        self.cookie = int(cookie)
        self.idle_timeout = int(idle_timeout)
        self.hard_timeout = int(hard_timeout)

    @property
    def is_delete(self) -> bool:
        """Whether this FlowMod removes rules."""
        return self.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<FlowMod xid={self.xid} {self.command.name} prio={self.priority} "
            f"{self.match!r} actions={self.actions!r}>"
        )


class BarrierRequest(OFMessage):
    """Ask the switch to finish all previous commands before replying."""

    message_type = OFMessageType.BARRIER_REQUEST


class BarrierReply(OFMessage):
    """Reply to a BarrierRequest; carries the request's xid."""

    message_type = OFMessageType.BARRIER_REPLY


class PacketOut(OFMessage):
    """Controller-originated packet injection."""

    message_type = OFMessageType.PACKET_OUT

    def __init__(
        self,
        packet: Packet,
        actions: Sequence[Action],
        in_port: int = 0xFFFF,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.packet = packet
        self.actions: List[Action] = list(actions)
        self.in_port = in_port


class PacketIn(OFMessage):
    """Switch-originated packet delivery to the controller."""

    message_type = OFMessageType.PACKET_IN

    def __init__(
        self,
        packet: Packet,
        in_port: int,
        reason: PacketInReason = PacketInReason.ACTION,
        buffer_id: int = 0xFFFFFFFF,
        datapath_id: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.packet = packet
        self.in_port = in_port
        self.reason = PacketInReason(reason)
        self.buffer_id = buffer_id
        self.datapath_id = datapath_id


class FlowRemoved(OFMessage):
    """Notification that a rule expired or was deleted."""

    message_type = OFMessageType.FLOW_REMOVED

    def __init__(
        self,
        match: Match,
        priority: int,
        cookie: int = 0,
        duration: float = 0.0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.match = match
        self.priority = priority
        self.cookie = cookie
        self.duration = duration


class ErrorMessage(OFMessage):
    """Error notification.

    RUM reuses an error message with the otherwise-unused code
    :data:`OFErrorCode.RUM_RULE_CONFIRMED` (type :data:`OFErrorType.VENDOR`)
    as a positive, fine-grained rule acknowledgment, because OpenFlow 1.0 has
    no message for "this FlowMod succeeded".  The ``data`` field then carries
    the xid of the confirmed FlowMod.
    """

    message_type = OFMessageType.ERROR

    def __init__(
        self,
        error_type: OFErrorType,
        error_code: int,
        data: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.error_type = OFErrorType(error_type)
        self.error_code = int(error_code)
        self.data = int(data)

    @property
    def is_rum_confirmation(self) -> bool:
        """Whether this error message is actually RUM's positive rule ack."""
        return (
            self.error_type == OFErrorType.VENDOR
            and self.error_code == int(OFErrorCode.RUM_RULE_CONFIRMED)
        )

    @classmethod
    def rule_confirmation(cls, flowmod_xid: int) -> "ErrorMessage":
        """Build the positive acknowledgment for the FlowMod with ``flowmod_xid``."""
        return cls(OFErrorType.VENDOR, int(OFErrorCode.RUM_RULE_CONFIRMED), data=flowmod_xid)


class StatsRequest(OFMessage):
    """Statistics request (flow / aggregate / port)."""

    message_type = OFMessageType.STATS_REQUEST

    def __init__(
        self,
        stats_type: StatsType = StatsType.FLOW,
        match: Optional[Match] = None,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.stats_type = StatsType(stats_type)
        self.match = match if match is not None else Match()


class StatsReply(OFMessage):
    """Statistics reply carrying an opaque body (list of dicts)."""

    message_type = OFMessageType.STATS_REPLY

    def __init__(
        self,
        stats_type: StatsType = StatsType.FLOW,
        body: Optional[list] = None,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid)
        self.stats_type = StatsType(stats_type)
        self.body = body if body is not None else []
