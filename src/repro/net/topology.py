"""Declarative topology descriptions.

A :class:`Topology` lists switches (each with a behaviour kind or an explicit
profile), hosts, and links.  :class:`~repro.net.network.Network` turns a
topology into a running simulation.  The module also provides the two
topologies used by the paper's evaluation and by the examples:

* :func:`triangle_topology` — S1 (software), S2 (hardware), S3 (software) in
  a triangle, host H1 on S1 and host H2 on S3.  The old per-flow paths go
  H1-S1-S3-H2, the post-update paths go H1-S1-S2-S3-H2 (Figure 1a).
* :func:`linear_topology` — a configurable chain, useful for probing tests
  and for the firewall scenario of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.switches.profiles import (
    SwitchProfile,
    correct_hardware_profile,
    hp5406zl_profile,
    reordering_switch_profile,
    software_switch_profile,
)

#: Known switch kinds and their profile factories.
SWITCH_KINDS = {
    "software": software_switch_profile,
    "hardware": hp5406zl_profile,
    "reordering": reordering_switch_profile,
    "correct-hardware": correct_hardware_profile,
}


@dataclass
class SwitchSpec:
    """A switch to be instantiated."""

    name: str
    kind: str = "software"
    profile: Optional[SwitchProfile] = None

    def resolve_profile(self) -> SwitchProfile:
        """The profile to instantiate the switch with."""
        if self.profile is not None:
            return self.profile
        if self.kind not in SWITCH_KINDS:
            raise ValueError(
                f"unknown switch kind {self.kind!r}; expected one of {sorted(SWITCH_KINDS)}"
            )
        return SWITCH_KINDS[self.kind]()


@dataclass
class HostSpec:
    """A host to be instantiated."""

    name: str
    ip: str
    mac: str


@dataclass
class LinkSpec:
    """A link between two named nodes (switches or hosts)."""

    node_a: str
    node_b: str
    latency: float = 0.0001
    bandwidth_bps: Optional[float] = 1e9


class Topology:
    """A named collection of switch, host and link specifications."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.switches: Dict[str, SwitchSpec] = {}
        self.hosts: Dict[str, HostSpec] = {}
        self.links: List[LinkSpec] = []
        #: Lazily-built ``node -> neighbours`` map; invalidated on mutation.
        self._adjacency: Optional[Dict[str, List[str]]] = None

    # -- construction ----------------------------------------------------------
    def add_switch(self, name: str, kind: str = "software",
                   profile: Optional[SwitchProfile] = None) -> "Topology":
        """Add a switch (chainable)."""
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        self.switches[name] = SwitchSpec(name, kind=kind, profile=profile)
        return self

    def add_host(self, name: str, ip: str, mac: str) -> "Topology":
        """Add a host (chainable)."""
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name!r}")
        self.hosts[name] = HostSpec(name, ip=ip, mac=mac)
        return self

    def add_link(self, node_a: str, node_b: str, latency: float = 0.0001,
                 bandwidth_bps: Optional[float] = 1e9) -> "Topology":
        """Add a link between two previously-added nodes (chainable)."""
        for node in (node_a, node_b):
            if node not in self.switches and node not in self.hosts:
                raise ValueError(f"link endpoint {node!r} is not a known node")
        if node_a == node_b:
            raise ValueError("self-links are not supported")
        self.links.append(LinkSpec(node_a, node_b, latency=latency,
                                   bandwidth_bps=bandwidth_bps))
        self._adjacency = None
        return self

    # -- queries --------------------------------------------------------------------
    def node_names(self) -> List[str]:
        """All node names (switches then hosts)."""
        return list(self.switches) + list(self.hosts)

    def switch_graph(self) -> nx.Graph:
        """The switch-to-switch adjacency graph (hosts excluded).

        Used by the vertex-colouring optimisation of the general probing
        technique, which only needs adjacent *switches* to differ in their
        probe-catch identifier.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.switches)
        for link in self.links:
            if link.node_a in self.switches and link.node_b in self.switches:
                graph.add_edge(link.node_a, link.node_b)
        return graph

    def full_graph(self) -> nx.Graph:
        """Adjacency graph over all nodes, including hosts."""
        graph = nx.Graph()
        graph.add_nodes_from(self.node_names())
        for link in self.links:
            graph.add_edge(link.node_a, link.node_b, latency=link.latency)
        return graph

    def neighbors_of(self, name: str) -> List[str]:
        """Names of the nodes directly linked to ``name`` (link insertion order).

        Backed by an adjacency map built once per topology mutation, so
        repeated per-node queries — validation, routing, probe colouring — do
        not rescan the whole link list on fat-tree-sized topologies.
        """
        if self._adjacency is None:
            adjacency: Dict[str, List[str]] = {node: [] for node in self.node_names()}
            for link in self.links:
                adjacency[link.node_a].append(link.node_b)
                adjacency[link.node_b].append(link.node_a)
            self._adjacency = adjacency
        return list(self._adjacency.get(name, []))

    def validate(self) -> None:
        """Check the topology is connected and every host has exactly one link."""
        if not self.switches:
            raise ValueError("topology has no switches")
        graph = self.full_graph()
        if self.links and not nx.is_connected(graph):
            raise ValueError("topology is not connected")
        for host in self.hosts:
            degree = len(self.neighbors_of(host))
            if degree != 1:
                raise ValueError(f"host {host!r} must have exactly one link, has {degree}")


def triangle_topology(
    hardware_profile: Optional[SwitchProfile] = None,
    software_profile: Optional[SwitchProfile] = None,
    link_latency: float = 0.0001,
) -> Topology:
    """The paper's Figure 1a topology.

    S1 and S3 are software switches, S2 is the (buggy) hardware switch; H1
    hangs off S1 and H2 off S3.
    """
    topo = Topology("triangle")
    topo.add_switch("S1", kind="software", profile=software_profile)
    topo.add_switch("S2", kind="hardware", profile=hardware_profile)
    topo.add_switch("S3", kind="software", profile=software_profile)
    topo.add_host("H1", ip="10.0.0.1", mac="00:00:00:00:00:01")
    topo.add_host("H2", ip="10.0.0.2", mac="00:00:00:00:00:02")
    topo.add_link("H1", "S1", latency=link_latency)
    topo.add_link("S1", "S2", latency=link_latency)
    topo.add_link("S2", "S3", latency=link_latency)
    topo.add_link("S1", "S3", latency=link_latency)
    topo.add_link("S3", "H2", latency=link_latency)
    topo.validate()
    return topo


def linear_topology(
    switch_count: int = 3,
    kinds: Optional[List[str]] = None,
    link_latency: float = 0.0001,
) -> Topology:
    """A chain H1 - S1 - S2 - ... - Sn - H2.

    ``kinds`` optionally gives the switch kind of each position; the default
    is all software switches.
    """
    if switch_count < 1:
        raise ValueError("need at least one switch")
    kinds = kinds or ["software"] * switch_count
    if len(kinds) != switch_count:
        raise ValueError("kinds must have one entry per switch")
    topo = Topology(f"linear-{switch_count}")
    for index in range(switch_count):
        topo.add_switch(f"S{index + 1}", kind=kinds[index])
    topo.add_host("H1", ip="10.0.0.1", mac="00:00:00:00:00:01")
    topo.add_host("H2", ip="10.0.0.2", mac="00:00:00:00:00:02")
    topo.add_link("H1", "S1", latency=link_latency)
    for index in range(switch_count - 1):
        topo.add_link(f"S{index + 1}", f"S{index + 2}", latency=link_latency)
    topo.add_link(f"S{switch_count}", "H2", latency=link_latency)
    topo.validate()
    return topo
