"""Delivery monitoring.

The monitor is the measurement instrument of the end-to-end experiments: for
every flow it records when each packet was sent and when (and via which
switch path) it arrived at its destination.  The analysis layer turns these
records into the quantities the paper plots — per-flow broken time
(Figure 1b), old-path/new-path switchover times (Figures 6 and 7) and
data-plane activation times (Figure 8).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class DeliveryRecord:
    """One packet arrival at its destination host."""

    flow_id: str
    sent_at: float
    received_at: float
    sequence: int
    path: Tuple[str, ...]

    @property
    def latency(self) -> float:
        """One-way delay experienced by the packet."""
        return self.received_at - self.sent_at


class DeliveryMonitor:
    """Collects per-flow send and delivery events."""

    def __init__(self) -> None:
        self._sent: Dict[str, List[Tuple[float, int]]] = defaultdict(list)
        self._received: Dict[str, List[DeliveryRecord]] = defaultdict(list)
        self.probe_arrivals: List[Tuple[float, Tuple[str, ...]]] = []

    # -- recording -------------------------------------------------------------
    def record_sent(self, flow_id: str, time: float, sequence: int) -> None:
        """Register a packet handed to the network by its source host."""
        self._sent[flow_id].append((time, sequence))

    def record_delivery(self, flow_id: Optional[str], record: DeliveryRecord) -> None:
        """Register a packet arriving at its destination host."""
        if flow_id is None:
            return
        self._received[flow_id].append(record)

    def record_probe(self, time: float, path: Tuple[str, ...]) -> None:
        """Register a RUM probe packet reaching a host (diagnostics only)."""
        self.probe_arrivals.append((time, path))

    # -- per-flow queries ----------------------------------------------------------
    def flows(self) -> List[str]:
        """All flow ids that sent at least one packet."""
        return sorted(self._sent.keys())

    def delivered_flows(self) -> List[str]:
        """All flow ids with at least one delivery (includes controller-injected
        packets that were never registered as sent by a host)."""
        return sorted(self._received.keys())

    def sent_count(self, flow_id: str) -> int:
        """Packets sent by ``flow_id``."""
        return len(self._sent[flow_id])

    def received_count(self, flow_id: str) -> int:
        """Packets delivered for ``flow_id``."""
        return len(self._received[flow_id])

    def dropped_count(self, flow_id: str) -> int:
        """Packets sent but never delivered for ``flow_id``."""
        return self.sent_count(flow_id) - self.received_count(flow_id)

    def total_dropped(self) -> int:
        """Packets lost across all flows."""
        return sum(self.dropped_count(flow_id) for flow_id in self.flows())

    def total_sent(self) -> int:
        """Packets sent across all flows."""
        return sum(self.sent_count(flow_id) for flow_id in self.flows())

    def deliveries(self, flow_id: str) -> List[DeliveryRecord]:
        """All delivery records of a flow, ordered by arrival time."""
        return sorted(self._received[flow_id], key=lambda record: record.received_at)

    def send_times(self, flow_id: str) -> List[float]:
        """Send timestamps of a flow, ordered."""
        return sorted(time for time, _sequence in self._sent[flow_id])

    # -- path-based queries -----------------------------------------------------------
    def arrivals_via(self, flow_id: str, via_switch: str) -> List[DeliveryRecord]:
        """Deliveries of ``flow_id`` whose path traversed ``via_switch``."""
        return [record for record in self.deliveries(flow_id) if via_switch in record.path]

    def arrivals_not_via(self, flow_id: str, via_switch: str) -> List[DeliveryRecord]:
        """Deliveries of ``flow_id`` whose path avoided ``via_switch``."""
        return [record for record in self.deliveries(flow_id) if via_switch not in record.path]

    def last_arrival_via(self, flow_id: str, via_switch: str) -> Optional[float]:
        """Time of the last delivery that traversed ``via_switch`` (or ``None``)."""
        records = self.arrivals_via(flow_id, via_switch)
        return records[-1].received_at if records else None

    def first_arrival_via(self, flow_id: str, via_switch: str) -> Optional[float]:
        """Time of the first delivery that traversed ``via_switch`` (or ``None``)."""
        records = self.arrivals_via(flow_id, via_switch)
        return records[0].received_at if records else None

    def first_arrival_after(self, flow_id: str, time: float) -> Optional[float]:
        """Time of the first delivery at or after ``time`` (or ``None``)."""
        for record in self.deliveries(flow_id):
            if record.received_at >= time:
                return record.received_at
        return None

    # -- gap analysis -------------------------------------------------------------------
    def largest_gap(self, flow_id: str, expected_interval: float) -> float:
        """The largest silent period of ``flow_id`` beyond its normal spacing.

        Computed over consecutive deliveries; a flow that loses packets for
        250 ms at 4 ms spacing reports a gap of about 0.25 s.  Returns 0.0
        when no gap exceeds the expected interval.
        """
        deliveries = self.deliveries(flow_id)
        if len(deliveries) < 2:
            return 0.0
        largest = 0.0
        previous = deliveries[0].received_at
        for record in deliveries[1:]:
            gap = record.received_at - previous - expected_interval
            largest = max(largest, gap)
            previous = record.received_at
        return max(largest, 0.0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-flow sent/received/dropped counters (JSON-able)."""
        return {
            flow_id: {
                "sent": self.sent_count(flow_id),
                "received": self.received_count(flow_id),
                "dropped": self.dropped_count(flow_id),
            }
            for flow_id in self.flows()
        }
