"""Network simulation layer: topologies, links, hosts, traffic and delivery
monitoring.

The end-to-end experiments of the paper run on a triangle of switches with a
host on each side; :func:`~repro.net.topology.triangle_topology` builds
exactly that.  Arbitrary topologies can be described with
:class:`~repro.net.topology.Topology` and instantiated into a running
simulation with :class:`~repro.net.network.Network`.
"""

from repro.net.link import Link
from repro.net.host import Host
from repro.net.monitor import DeliveryMonitor, DeliveryRecord
from repro.net.topology import Topology, triangle_topology, linear_topology
from repro.net.traffic import FlowSpec, TrafficGenerator, flows_between
from repro.net.network import Network

__all__ = [
    "DeliveryMonitor",
    "DeliveryRecord",
    "FlowSpec",
    "Host",
    "Link",
    "Network",
    "Topology",
    "TrafficGenerator",
    "flows_between",
    "linear_topology",
    "triangle_topology",
]
