"""Point-to-point links.

A link joins two attachment points ``(node, port)``.  It delivers packets in
order after a fixed propagation latency plus a serialisation delay derived
from the configured bandwidth.  Links never drop packets — all loss in the
experiments comes from flow-table misses, which is exactly the failure mode
the paper studies.

Packet trains
-------------
High-rate traffic sends long runs of back-to-back packets down the same
link direction.  Scheduling one kernel event per packet makes the event
heap the bottleneck, so by default each direction coalesces its pending
deliveries into a *train*: one flush callback delivers consecutive packets
inline, advancing the simulation clock to each packet's exact delivery
time, as long as no other scheduled event (and no active ``run(until=...)``
bound) falls in between.  Per-packet delivery timestamps are exact, so
measured statistics match the unbatched per-packet scheduling bit for bit
(pinned by ``tests/integration/test_batching_equivalence.py``); only the
number of heap operations changes.  The single caveat: when an unrelated
event is scheduled at *exactly* a packet's delivery timestamp (float
equality), the flush conservatively defers to the kernel and the tie
resolves in kernel order rather than by the original per-packet sequence
number.  Set ``batching=False`` (or flip :data:`TRAIN_BATCHING_DEFAULT`)
to fall back to one event per packet.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Protocol

from repro.packet.packet import Packet
from repro.sim.kernel import Simulator

#: Default for :class:`Link` packet-train coalescing (on unless a link or
#: network overrides it).
TRAIN_BATCHING_DEFAULT = True


class PacketSink(Protocol):
    """Anything that can receive a packet on a port (switches and hosts)."""

    name: str

    def receive_packet(self, packet: Packet, in_port: int) -> None:
        """Handle an arriving packet."""


class Link:
    """A bidirectional point-to-point link."""

    __slots__ = (
        "sim",
        "node_a",
        "port_a",
        "node_b",
        "port_b",
        "latency",
        "bandwidth_bps",
        "name",
        "batching",
        "packets_carried",
        "bytes_carried",
        "events_coalesced",
        "_busy_until",
        "_trains",
        "_flush_scheduled",
        "_receivers",
        "_in_ports",
    )

    def __init__(
        self,
        sim: Simulator,
        node_a: PacketSink,
        port_a: int,
        node_b: PacketSink,
        port_b: int,
        latency: float = 0.0001,
        bandwidth_bps: Optional[float] = 1e9,
        name: str = "",
        batching: Optional[bool] = None,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.node_a = node_a
        self.port_a = port_a
        self.node_b = node_b
        self.port_b = port_b
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.name = name or f"{node_a.name}:{port_a}<->{node_b.name}:{port_b}"
        self.batching = TRAIN_BATCHING_DEFAULT if batching is None else batching
        self.packets_carried = 0
        self.bytes_carried = 0
        #: Kernel callbacks saved by train coalescing (diagnostics).
        self.events_coalesced = 0
        # Per-direction time at which the link is free again (serialisation).
        self._busy_until = [0.0, 0.0]
        # Per-direction pending (deliver_at, packet) trains and whether a
        # flush callback is currently scheduled for the direction.
        self._trains = (deque(), deque())
        self._flush_scheduled = [False, False]
        # Direction 0 delivers to node_b, direction 1 to node_a.
        self._receivers = (node_b, node_a)
        self._in_ports = (port_b, port_a)

    def _serialisation_delay(self, packet: Packet) -> float:
        if not self.bandwidth_bps:
            return 0.0
        return (packet.total_size * 8) / self.bandwidth_bps

    def transmit_from(self, sender: PacketSink, packet: Packet) -> None:
        """Send ``packet`` from ``sender`` towards the other end."""
        if sender is self.node_a:
            direction = 0
        elif sender is self.node_b:
            direction = 1
        else:
            raise ValueError(f"{sender.name} is not attached to link {self.name}")
        self.packets_carried += 1
        self.bytes_carried += packet.total_size
        sim = self.sim
        now = sim._now
        busy = self._busy_until[direction]
        start = busy if busy > now else now
        finish = start + self._serialisation_delay(packet)
        self._busy_until[direction] = finish
        deliver_at = finish + self.latency
        if not self.batching:
            sim.schedule_callback(
                deliver_at - now,
                self._receivers[direction].receive_packet,
                packet,
                self._in_ports[direction],
            )
            return
        self._trains[direction].append((deliver_at, packet))
        if not self._flush_scheduled[direction]:
            self._flush_scheduled[direction] = True
            sim.schedule_callback(deliver_at - now, self._flush_train, direction)

    def _flush_train(self, direction: int) -> None:
        """Deliver every due packet of ``direction``'s train.

        Packets are handed to the receiver at their *exact* per-packet
        delivery time: after each delivery the clock is advanced inline to
        the next packet's timestamp — but only when that timestamp strictly
        precedes every other scheduled event and does not cross an active
        ``run(until=...)`` bound; otherwise the flush re-schedules itself
        and the kernel interleaves events in normal order.
        """
        train = self._trains[direction]
        sim = self.sim
        receiver = self._receivers[direction]
        in_port = self._in_ports[direction]
        receive = receiver.receive_packet
        heap = sim._heap
        try:
            while train:
                deliver_at, packet = train[0]
                if deliver_at > sim._now:
                    until = sim._until
                    # ``<=``: on an exact-timestamp tie with another event
                    # the flush defers to the kernel, which runs the other
                    # event first (unbatched mode would deliver first, the
                    # delivery event's sequence number being older) — the
                    # one place coalescing can reorder float-equal ties.
                    if (heap and heap[0][0] <= deliver_at) or (
                            until is not None and deliver_at > until):
                        # Another event (or the run bound) comes first: hand
                        # control back to the kernel and resume at deliver_at.
                        sim.schedule_callback(deliver_at - sim._now,
                                              self._flush_train, direction)
                        return
                    sim._advance_inline(deliver_at)
                    self.events_coalesced += 1
                train.popleft()
                receive(packet, in_port)
            self._flush_scheduled[direction] = False
        except BaseException:
            # A receiver raised (e.g. StopSimulation stopping the run):
            # keep the remaining deliveries alive for the next run() call
            # instead of wedging the direction with no flush scheduled.
            if train:
                sim.schedule_callback(max(0.0, train[0][0] - sim._now),
                                      self._flush_train, direction)
            else:
                self._flush_scheduled[direction] = False
            raise

    def transmitter_for(self, sender: PacketSink):
        """A ``(packet) -> None`` callable bound to ``sender`` (switch port hook)."""
        if sender not in (self.node_a, self.node_b):
            raise ValueError(f"{sender.name} is not attached to link {self.name}")

        def _transmit(packet: Packet) -> None:
            self.transmit_from(sender, packet)

        return _transmit

    def other_end(self, node: PacketSink) -> PacketSink:
        """The node on the opposite side of ``node``."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Link {self.name} latency={self.latency * 1000:.3f}ms>"
