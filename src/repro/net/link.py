"""Point-to-point links.

A link joins two attachment points ``(node, port)``.  It delivers packets in
order after a fixed propagation latency plus a serialisation delay derived
from the configured bandwidth.  Links never drop packets — all loss in the
experiments comes from flow-table misses, which is exactly the failure mode
the paper studies.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.packet.packet import Packet
from repro.sim.kernel import Simulator


class PacketSink(Protocol):
    """Anything that can receive a packet on a port (switches and hosts)."""

    name: str

    def receive_packet(self, packet: Packet, in_port: int) -> None:
        """Handle an arriving packet."""


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        node_a: PacketSink,
        port_a: int,
        node_b: PacketSink,
        port_b: int,
        latency: float = 0.0001,
        bandwidth_bps: Optional[float] = 1e9,
        name: str = "",
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.node_a = node_a
        self.port_a = port_a
        self.node_b = node_b
        self.port_b = port_b
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.name = name or f"{node_a.name}:{port_a}<->{node_b.name}:{port_b}"
        self.packets_carried = 0
        self.bytes_carried = 0
        # Per-direction time at which the link is free again (serialisation).
        self._busy_until = [0.0, 0.0]

    def _serialisation_delay(self, packet: Packet) -> float:
        if not self.bandwidth_bps:
            return 0.0
        return (packet.total_size * 8) / self.bandwidth_bps

    def transmit_from(self, sender: PacketSink, packet: Packet) -> None:
        """Send ``packet`` from ``sender`` towards the other end."""
        if sender is self.node_a:
            direction, receiver, in_port = 0, self.node_b, self.port_b
        elif sender is self.node_b:
            direction, receiver, in_port = 1, self.node_a, self.port_a
        else:
            raise ValueError(f"{sender.name} is not attached to link {self.name}")
        self.packets_carried += 1
        self.bytes_carried += packet.total_size
        start = max(self.sim.now, self._busy_until[direction])
        finish = start + self._serialisation_delay(packet)
        self._busy_until[direction] = finish
        deliver_at = finish + self.latency
        self.sim.schedule_callback(
            deliver_at - self.sim.now, receiver.receive_packet, packet, in_port
        )

    def transmitter_for(self, sender: PacketSink):
        """A ``(packet) -> None`` callable bound to ``sender`` (switch port hook)."""
        if sender not in (self.node_a, self.node_b):
            raise ValueError(f"{sender.name} is not attached to link {self.name}")

        def _transmit(packet: Packet) -> None:
            self.transmit_from(sender, packet)

        return _transmit

    def other_end(self, node: PacketSink) -> PacketSink:
        """The node on the opposite side of ``node``."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Link {self.name} latency={self.latency * 1000:.3f}ms>"
