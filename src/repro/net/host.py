"""End hosts.

A host has a single port, an IP and a MAC address.  Arriving packets are
reported to the :class:`~repro.net.monitor.DeliveryMonitor`; outgoing packets
are produced by the traffic generators in :mod:`repro.net.traffic`.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import Link
from repro.net.monitor import DeliveryMonitor, DeliveryRecord
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator


class Host:
    """A traffic source/sink attached to one switch port."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: str,
        mac: str,
        monitor: Optional[DeliveryMonitor] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.ip = ip
        self.mac = mac
        self.monitor = monitor
        self._link: Optional[Link] = None
        self.packets_sent = 0
        self.packets_received = 0

    # -- wiring ---------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        """Attach the host's single uplink."""
        if self._link is not None:
            raise ValueError(f"host {self.name} already has a link")
        self._link = link

    @property
    def link(self) -> Link:
        """The attached uplink (raises if the host is not wired yet)."""
        if self._link is None:
            raise RuntimeError(f"host {self.name} is not attached to any link")
        return self._link

    # -- traffic -----------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit ``packet`` on the uplink and record it with the monitor."""
        self.packets_sent += 1
        packet.trace.append((self.sim.now, self.name))
        if self.monitor is not None and packet.flow_id is not None and not packet.is_probe:
            self.monitor.record_sent(packet.flow_id, self.sim.now, packet.sequence)
        self.link.transmit_from(self, packet)

    def receive_packet(self, packet: Packet, in_port: int = 0) -> None:
        """Handle an arriving packet: record the delivery and its path."""
        self.packets_received += 1
        packet.trace.append((self.sim.now, self.name))
        if self.monitor is None:
            return
        path = tuple(node for _time, node in packet.trace)
        if packet.is_probe:
            self.monitor.record_probe(self.sim.now, path)
            return
        if packet.flow_id is None:
            return
        self.monitor.record_delivery(
            packet.flow_id,
            DeliveryRecord(
                flow_id=packet.flow_id,
                sent_at=packet.created_at,
                received_at=self.sim.now,
                sequence=packet.sequence,
                path=path,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Host {self.name} ip={self.ip}>"
