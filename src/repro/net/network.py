"""Instantiate a :class:`~repro.net.topology.Topology` into a running simulation.

The :class:`Network` owns the switches, hosts and links, assigns port
numbers, and creates one OpenFlow control connection per switch.  By default
the controller side of each connection is left unbound so that either a
controller (:mod:`repro.controller`) or the RUM proxy (:mod:`repro.core`) can
attach to it — mirroring the paper's deployment where RUM interposes between
the switches and an unmodified controller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.host import Host
from repro.net.link import Link
from repro.net.monitor import DeliveryMonitor
from repro.net.topology import Topology
from repro.openflow.connection import Connection, ConnectionEndpoint
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.switches.base import Switch


class Network:
    """A built network: switches, hosts, links, and per-switch control channels."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        monitor: Optional[DeliveryMonitor] = None,
        control_latency: float = 0.001,
        seed: int = 1,
        link_batching: Optional[bool] = None,
    ) -> None:
        topology.validate()
        self.sim = sim
        self.topology = topology
        self.monitor = monitor if monitor is not None else DeliveryMonitor()
        self.control_latency = control_latency
        #: Per-network override of link packet-train coalescing (``None``:
        #: follow :data:`repro.net.link.TRAIN_BATCHING_DEFAULT`).
        self.link_batching = link_batching
        self.rng = SeededRandom(seed)

        self.switches: Dict[str, Switch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        #: ``(node_a, node_b) -> port number on node_a facing node_b``.
        self._ports: Dict[Tuple[str, str], int] = {}
        self._next_port: Dict[str, int] = {}
        #: Control connections, keyed by switch name.  ``side_a`` is bound to
        #: the switch; ``side_b`` is free for a controller or proxy to claim.
        self.control_connections: Dict[str, Connection] = {}

        self._build()

    # -- construction ------------------------------------------------------------
    def _build(self) -> None:
        for name, spec in self.topology.switches.items():
            switch = Switch(
                self.sim,
                name,
                spec.resolve_profile(),
                datapath_id=len(self.switches) + 1,
                rng=self.rng.fork(f"switch-{name}"),
            )
            self.switches[name] = switch
            connection = Connection(
                self.sim,
                name=f"ctl-{name}",
                latency=self.control_latency,
                name_a=f"{name}-agent",
                name_b=f"{name}-controller-side",
            )
            switch.connect_controller(connection.side_a)
            self.control_connections[name] = connection

        for name, spec in self.topology.hosts.items():
            self.hosts[name] = Host(
                self.sim, name, ip=spec.ip, mac=spec.mac, monitor=self.monitor
            )

        for link_spec in self.topology.links:
            self._build_link(link_spec)

    def _allocate_port(self, node_name: str) -> int:
        port = self._next_port.get(node_name, 1)
        self._next_port[node_name] = port + 1
        return port

    def _build_link(self, link_spec) -> None:
        node_a = self._node(link_spec.node_a)
        node_b = self._node(link_spec.node_b)
        port_a = self._allocate_port(link_spec.node_a)
        port_b = self._allocate_port(link_spec.node_b)
        link = Link(
            self.sim,
            node_a,
            port_a,
            node_b,
            port_b,
            latency=link_spec.latency,
            bandwidth_bps=link_spec.bandwidth_bps,
            batching=self.link_batching,
        )
        self.links.append(link)
        self._ports[(link_spec.node_a, link_spec.node_b)] = port_a
        self._ports[(link_spec.node_b, link_spec.node_a)] = port_b
        if isinstance(node_a, Switch):
            node_a.attach_port(port_a, link.transmitter_for(node_a))
        else:
            node_a.attach_link(link)
        if isinstance(node_b, Switch):
            node_b.attach_port(port_b, link.transmitter_for(node_b))
        else:
            node_b.attach_link(link)

    def _node(self, name: str):
        if name in self.switches:
            return self.switches[name]
        if name in self.hosts:
            return self.hosts[name]
        raise KeyError(f"unknown node {name!r}")

    # -- lifecycle --------------------------------------------------------------------
    def start(self) -> None:
        """Start all switch control planes."""
        for switch in self.switches.values():
            switch.start()

    # -- lookups ----------------------------------------------------------------------
    def port_between(self, from_node: str, to_node: str) -> int:
        """Port number on ``from_node`` that faces ``to_node``."""
        key = (from_node, to_node)
        if key not in self._ports:
            raise KeyError(f"no link between {from_node!r} and {to_node!r}")
        return self._ports[key]

    def node_for_port(self, node_name: str, port: int) -> Optional[str]:
        """Name of the node reached through ``port`` of ``node_name`` (or ``None``)."""
        for (from_node, to_node), port_no in self._ports.items():
            if from_node == node_name and port_no == port:
                return to_node
        return None

    def controller_endpoint(self, switch_name: str) -> ConnectionEndpoint:
        """The controller-facing endpoint of a switch's control connection."""
        return self.control_connections[switch_name].side_b

    def switch(self, name: str) -> Switch:
        """Switch by name."""
        return self.switches[name]

    def host(self, name: str) -> Host:
        """Host by name."""
        return self.hosts[name]

    def switch_names(self) -> List[str]:
        """All switch names in topology insertion order."""
        return list(self.switches)

    def neighbors_of_switch(self, name: str) -> List[str]:
        """Names of switches directly linked to ``name`` (hosts excluded)."""
        return [
            neighbor
            for neighbor in self.topology.neighbors_of(name)
            if neighbor in self.switches
        ]

    def path_ports(self, path: List[str]) -> List[Tuple[str, int]]:
        """For a node path, the output port each switch uses towards the next hop.

        ``path`` lists node names from source to destination; the result
        contains one ``(switch, output_port)`` pair per switch on the path.
        """
        pairs = []
        for index, node in enumerate(path[:-1]):
            if node in self.switches:
                pairs.append((node, self.port_between(node, path[index + 1])))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Network {self.topology.name}: {len(self.switches)} switches, "
            f"{len(self.hosts)} hosts, {len(self.links)} links>"
        )
