"""Traffic generation.

The paper's end-to-end experiment sends 300 IP flows between two hosts at
250 packets per second each (one packet every 4 ms — that is also the
measurement precision quoted for Figure 1b).  :class:`FlowSpec` describes one
such flow; :class:`TrafficGenerator` runs a constant-rate sending process per
flow on the source host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.host import Host
from repro.packet.fields import IP_PROTO_UDP
from repro.packet.packet import Packet, make_ip_packet
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom


@dataclass
class FlowSpec:
    """Description of one constant-rate application flow."""

    flow_id: str
    source: Host
    destination: Host
    ip_src: str
    ip_dst: str
    rate_pps: float = 250.0
    tp_src: int = 10000
    tp_dst: int = 80
    ip_proto: int = IP_PROTO_UDP
    payload_size: int = 100
    start_time: float = 0.0
    stop_time: Optional[float] = None

    @property
    def interval(self) -> float:
        """Spacing between consecutive packets of the flow."""
        if self.rate_pps <= 0:
            raise ValueError(f"flow {self.flow_id} has non-positive rate")
        return 1.0 / self.rate_pps


def flows_between(
    source: Host,
    destination: Host,
    count: int,
    *,
    rate_pps: float = 250.0,
    base_src: str = "10.0.0.0",
    base_dst: str = "10.0.128.0",
    start_time: float = 0.0,
    stop_time: Optional[float] = None,
    flow_prefix: str = "flow",
) -> List[FlowSpec]:
    """Create ``count`` flows between two hosts with distinct IP pairs.

    Flow *i* uses source ``base_src + i + 1`` and destination
    ``base_dst + i + 1`` so each flow is matched by a dedicated pair of
    forwarding rules, mirroring the per-flow paths preinstalled in the paper's
    experiment.
    """
    from repro.packet.addresses import int_to_ip, ip_to_int

    flows = []
    src_base = ip_to_int(base_src)
    dst_base = ip_to_int(base_dst)
    for index in range(count):
        flows.append(
            FlowSpec(
                flow_id=f"{flow_prefix}-{index:04d}",
                source=source,
                destination=destination,
                ip_src=int_to_ip(src_base + index + 1),
                ip_dst=int_to_ip(dst_base + index + 1),
                rate_pps=rate_pps,
                tp_dst=80,
                start_time=start_time,
                stop_time=stop_time,
            )
        )
    return flows


class TrafficGenerator:
    """Runs the sending processes for a set of flows."""

    def __init__(
        self,
        sim: Simulator,
        flows: List[FlowSpec],
        rng: Optional[SeededRandom] = None,
        desynchronise: bool = True,
    ) -> None:
        self.sim = sim
        self.flows = list(flows)
        self.rng = rng or SeededRandom(42)
        #: Spread flow start offsets inside one inter-packet interval so all
        #: flows do not fire in the same simulation instant.
        self.desynchronise = desynchronise
        self._started = False
        self.packets_generated = 0

    def start(self) -> None:
        """Start one sending process per flow."""
        if self._started:
            return
        self._started = True
        for flow in self.flows:
            offset = 0.0
            if self.desynchronise:
                offset = self.rng.uniform(0.0, flow.interval)
            self.sim.process(self._flow_process(flow, offset), name=f"traffic.{flow.flow_id}")

    def _flow_process(self, flow: FlowSpec, offset: float):
        if flow.start_time + offset > 0:
            yield flow.start_time + offset
        # All packets of a flow share the same headers: build them once and
        # stamp copies per packet instead of re-parsing addresses every 4 ms.
        template = make_ip_packet(
            flow.ip_src,
            flow.ip_dst,
            eth_src=flow.source.mac,
            eth_dst=flow.destination.mac,
            ip_proto=flow.ip_proto,
            tp_src=flow.tp_src,
            tp_dst=flow.tp_dst,
            payload_size=flow.payload_size,
            flow_id=flow.flow_id,
        )
        header_values = template.header_values()
        sequence = 0
        while True:
            if flow.stop_time is not None and self.sim.now >= flow.stop_time:
                return
            packet = Packet.from_values(
                header_values.copy(),
                payload_size=template.payload_size,
                flow_id=flow.flow_id,
                created_at=self.sim.now,
                sequence=sequence,
            )
            flow.source.send(packet)
            self.packets_generated += 1
            sequence += 1
            yield flow.interval

    def stop_all(self, at_time: Optional[float] = None) -> None:
        """Set a stop time on every flow (defaults to 'now')."""
        stop = at_time if at_time is not None else self.sim.now
        for flow in self.flows:
            flow.stop_time = stop
