"""Seeded randomness helpers.

Every experiment in the repository must be reproducible run-to-run, so all
stochastic behaviour (jitter on switch processing times, probe packet header
randomisation, traffic start offsets) flows through a :class:`SeededRandom`
instance owned by the experiment configuration rather than the global
``random`` module.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


class SeededRandom:
    """Thin wrapper around :class:`random.Random` with a few domain helpers."""

    __slots__ = ("seed", "_random")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    # -- passthroughs -------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of ``seq``."""
        return self._random.choice(seq)

    def shuffle(self, seq: List[T]) -> List[T]:
        """Return a new list with the elements of ``seq`` shuffled."""
        shuffled = list(seq)
        self._random.shuffle(shuffled)
        return shuffled

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._random.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mean: float, stddev: float) -> float:
        """Normal sample."""
        return self._random.gauss(mean, stddev)

    # -- domain helpers --------------------------------------------------------
    def jitter(self, base: float, fraction: float) -> float:
        """``base`` scaled by a uniform factor in ``[1 - fraction, 1 + fraction]``.

        Used to avoid perfectly-synchronised artefacts in the switch and
        traffic models while staying reproducible.
        """
        if fraction <= 0:
            return base
        return base * self.uniform(1.0 - fraction, 1.0 + fraction)

    def spread_start_times(self, count: int, window: float) -> List[float]:
        """``count`` start offsets uniformly spread over ``[0, window)``."""
        return sorted(self.uniform(0.0, window) for _ in range(count))

    def fork(self, label: str) -> "SeededRandom":
        """Derive an independent, deterministic child generator.

        Forking keeps unrelated components (e.g. traffic vs. switch jitter)
        statistically independent while still fully determined by the
        top-level experiment seed.
        """
        # A process-stable hash: ``hash()`` on strings is randomized per
        # interpreter (PYTHONHASHSEED), which silently made every forked
        # generator — switch jitter, traffic offsets — vary run to run.
        child_seed = (zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
                      & 0x7FFFFFFF) or 1
        return SeededRandom(child_seed)


def round_robin(items: Iterable[T]) -> Iterable[T]:
    """Yield items forever, cycling (tiny helper for probe scheduling)."""
    pool = list(items)
    if not pool:
        return
    index = 0
    while True:
        yield pool[index % len(pool)]
        index += 1
