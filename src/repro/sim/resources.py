"""Simple synchronisation resources built on the kernel: FIFO queues and
counted resources.

These are used by the switch models (control-plane command queues), the
connection layer (in-flight message queues) and the RUM proxy (pending
acknowledgment windows).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Event
from repro.sim.kernel import Simulator


class Queue:
    """Unbounded FIFO queue with blocking ``get`` for simulation processes.

    ``put`` never blocks.  ``get`` returns an :class:`Event` that a process can
    ``yield``; it completes with the next item as soon as one is available.
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_getters(self) -> int:
        """Number of processes currently blocked on :meth:`get`."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter if there is one."""
        if self._getters:
            getter = self._getters.popleft()
            # Deliver asynchronously so the producer is not re-entered by the
            # consumer's continuation.
            self.sim.schedule_callback(0.0, self._deliver, getter, item)
        else:
            self._items.append(item)

    @staticmethod
    def _deliver(getter: Event, item: Any) -> None:
        if not getter.triggered:
            getter.succeed(item)

    def get(self) -> Event:
        """Return an event that completes with the next item."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self.sim.schedule_callback(0.0, self._deliver, event, item)
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Optional[Any]:
        """Pop and return the next item, or ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def clear(self) -> None:
        """Drop all queued items (waiting getters stay blocked)."""
        self._items.clear()

    def snapshot(self) -> list:
        """A copy of the queued items, oldest first (for inspection in tests)."""
        return list(self._items)


class Resource:
    """A counted resource with FIFO hand-off (like a semaphore).

    Used for modelling limited parallelism, e.g. a switch control plane that
    processes one command at a time.
    """

    __slots__ = ("sim", "name", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of acquire requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that completes once a slot is granted."""
        event = self.sim.event(name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim.schedule_callback(0.0, self._grant, event)
        else:
            self._waiters.append(event)
        return event

    @staticmethod
    def _grant(event: Event) -> None:
        if not event.triggered:
            event.succeed()

    def release(self) -> None:
        """Release a previously-acquired slot."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() of resource {self.name!r} that is not held")
        if self._waiters:
            waiter = self._waiters.popleft()
            self.sim.schedule_callback(0.0, self._grant, waiter)
        else:
            self._in_use -= 1
