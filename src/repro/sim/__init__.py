"""Discrete-event simulation kernel used by every substrate in the repo.

The kernel is deliberately small and dependency free.  It follows the
generator-based process model popularised by SimPy: a *process* is a Python
generator that ``yield``s either a :class:`Timeout` (sleep for some simulated
time), an :class:`Event` (wait until somebody triggers it), or another
:class:`Process` (wait for it to finish).  The :class:`Simulator` owns the
event heap and the notion of "now".

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulator, StopSimulation
from repro.sim.process import Process, ProcessError
from repro.sim.rng import SeededRandom
from repro.sim.resources import Queue, Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "ProcessError",
    "Queue",
    "Resource",
    "SeededRandom",
    "Simulator",
    "StopSimulation",
    "Timeout",
]
