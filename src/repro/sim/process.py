"""Generator-based processes running on top of the simulation kernel.

A process wraps a Python generator.  Each time the generator yields, the
process suspends until the yielded object completes:

* ``yield Timeout(d)``  -- resume after ``d`` simulated time units,
* ``yield event``       -- resume when ``event`` is triggered,
* ``yield process``     -- resume when another process terminates,
* ``yield None``        -- resume immediately (a cooperative "yield point").

A process is itself an :class:`~repro.sim.events.Event`: it triggers when the
generator returns (value = the generator's return value) or fails when the
generator raises.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, Timeout


class ProcessError(RuntimeError):
    """Raised when a process is misused (e.g. yields an unsupported object)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process.

    Do not instantiate directly; use :meth:`repro.sim.Simulator.process`.
    """

    __slots__ = ("generator", "_target", "_alive")

    def __init__(self, sim, generator: Generator, name: str = "") -> None:
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise ProcessError(
                f"Simulator.process() requires a generator, got {type(generator).__name__}. "
                "Did you forget to call the generator function?"
            )
        self.sim = sim
        self.generator = generator
        self._target: Optional[Event] = None
        self._alive = True

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at its current yield point."""
        if not self._alive:
            return
        self.sim.schedule_callback(0.0, self._resume_with_throw, Interrupt(cause))

    # -- kernel hooks ---------------------------------------------------------
    def _start(self) -> None:
        self._step(None, None)

    def _resume_with_value(self, event: Event) -> None:
        if not self._alive:
            return
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _resume_with_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        self._step(None, exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        self.sim._active_process = self
        try:
            if exc is not None:
                yielded = self.generator.throw(exc)
            else:
                yielded = self.generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt:
            # Un-handled interrupt simply terminates the process.
            self._alive = False
            self.succeed(None)
            return
        except BaseException as error:  # propagate failures to waiters
            self._alive = False
            if self._callbacks:
                self.fail(error)
            else:
                # Nobody is waiting for this process; surface the bug loudly
                # instead of swallowing it.
                self._alive = False
                raise
            return
        finally:
            self.sim._active_process = None

        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            # Cooperative yield: resume on the next kernel step at the same time.
            self.sim.schedule_callback(0.0, self._step, None, None)
            return
        cls = type(yielded)
        if cls is float or cls is int:
            # Numeric sleep — the hot path of every traffic generator.  The
            # backing Timeout never escapes to user code, so the kernel can
            # recycle it (zero steady-state allocation).
            self.sim._schedule_pooled_resume(float(yielded), self._resume_with_value)
            return
        if isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            yielded = Timeout(float(yielded))
        if isinstance(yielded, Timeout) and not yielded.triggered:
            self.sim._schedule_timeout(yielded)
        if isinstance(yielded, Event):
            self._target = yielded
            yielded.add_callback(self._resume_with_value)
            return
        raise ProcessError(
            f"Process {self.name!r} yielded unsupported object {yielded!r}; "
            "yield an Event, Timeout, Process, a number of time units, or None"
        )
