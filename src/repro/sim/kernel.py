"""The discrete-event simulation kernel.

The :class:`Simulator` keeps a priority queue of scheduled callbacks keyed by
``(time, sequence_number)`` so that events scheduled for the same instant run
in FIFO order — a property the switch and network models rely on to keep
packet and message ordering deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process


class StopSimulation(Exception):
    """Raised by user code to stop :meth:`Simulator.run` immediately."""


class Simulator:
    """Discrete-event simulator.

    Time is a float in **seconds** throughout the repository (the paper's
    measurements are all in milliseconds; keeping seconds and converting for
    display avoids unit mistakes).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._running = False
        self.metadata: dict = {}

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule_callback(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._sequence, callback, args))
        self._sequence += 1

    def schedule_event(self, delay: float, value: Any = None, name: str = "") -> Event:
        """Create an event that succeeds with ``value`` after ``delay`` seconds."""
        event = Event(name=name)
        event.sim = self
        self.schedule_callback(delay, self._trigger_if_pending, event, value)
        return event

    @staticmethod
    def _trigger_if_pending(event: Event, value: Any) -> None:
        if not event.triggered:
            event.succeed(value)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create and schedule a :class:`Timeout` (usable outside processes too)."""
        timeout = Timeout(delay, value=value)
        self._schedule_timeout(timeout)
        return timeout

    def _schedule_timeout(self, timeout: Timeout) -> None:
        timeout.sim = self
        self.schedule_callback(timeout.delay, self._trigger_if_pending, timeout, timeout.value)

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this simulator."""
        event = Event(name=name)
        event.sim = self
        return event

    # -- processes -------------------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` and return it."""
        process = Process(self, generator, name=name)
        self.schedule_callback(0.0, process._start)
        return process

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (``None`` outside process code)."""
        return self._active_process

    # -- execution ---------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns ``False`` if none are left."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        if time < self._now - 1e-12:
            raise RuntimeError("simulation time went backwards (kernel bug)")
        self._now = max(self._now, time)
        callback(*args)
        return True

    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` seconds, or ``max_steps`` callbacks.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  Events scheduled at
            exactly ``until`` are still executed.
        max_steps:
            Safety valve for tests; raises :class:`RuntimeError` when exceeded.
        """
        self._running = True
        steps = 0
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    break
                if max_steps is not None and steps >= max_steps:
                    raise RuntimeError(f"simulation exceeded max_steps={max_steps}")
                try:
                    self.step()
                except StopSimulation:
                    break
                steps += 1
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Simulator now={self._now:.6f} pending={len(self._heap)}>"
