"""The discrete-event simulation kernel.

The :class:`Simulator` keeps a priority queue of scheduled callbacks keyed by
``(time, sequence_number)`` so that events scheduled for the same instant run
in FIFO order — a property the switch and network models rely on to keep
packet and message ordering deterministic.

The execution loop is the hottest code in the repository: an end-to-end
experiment dispatches millions of tiny callbacks.  :meth:`Simulator.run`
therefore inlines the stepping loop with locally-bound heap operations
instead of calling :meth:`Simulator.step` per event, and the kernel pools
the :class:`Timeout` objects backing numeric process sleeps
(``yield interval``) so steady-state stepping allocates almost nothing.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

#: Upper bound on pooled Timeout objects kept for reuse.
_TIMEOUT_POOL_LIMIT = 256

#: Event-stream observer hook (the determinism sanitizer's recording tap).
#: ``None`` — the default — costs the run loop one locally-bound ``is not
#: None`` branch per event and nothing else, following the same
#: zero-cost-when-disarmed contract as :data:`repro.obs.tracer.TRACER`.
#: When installed, the observer is called as ``observer(time, callback,
#: args)`` immediately before each dispatched callback.  Observers must only
#: *read*: a recording pass over a run must leave its event sequence (and
#: digests) byte-identical to an unobserved run.
_OBSERVER: Optional[Callable[[float, Callable, tuple], None]] = None


def install_observer(
    observer: Callable[[float, Callable, tuple], None]
) -> Callable[[float, Callable, tuple], None]:
    """Make ``observer`` the process-wide event tap; returns it for chaining.

    Mirrors :func:`repro.obs.tracer.install_tracer`: installs do not nest,
    and callers must pair every install with :func:`uninstall_observer` in a
    ``try/finally`` so a crashing run cannot leak the tap into the next one.
    """
    global _OBSERVER
    if _OBSERVER is not None:
        raise RuntimeError("an event observer is already installed; "
                           "recorded runs cannot nest")
    _OBSERVER = observer
    return observer


def uninstall_observer() -> None:
    global _OBSERVER
    _OBSERVER = None


class StopSimulation(Exception):
    """Raised by user code to stop :meth:`Simulator.run` immediately."""


class PeriodicProbe:
    """A self-rescheduling callback on the simulated clock.

    Created by :meth:`Simulator.every`; fires ``callback()`` every
    ``interval`` simulated seconds until :meth:`cancel` is called.  The
    probe keeps rescheduling itself, so a bounded ``run(until=...)`` simply
    stops executing it — but an *unbounded* run would never drain the heap
    while a probe is live; owners must cancel probes when their measurement
    window closes (the session engine does this after the traffic settles).
    """

    __slots__ = ("_sim", "interval", "callback", "_cancelled")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise ValueError(f"probe interval must be positive ({interval})")
        self._sim = sim
        self.interval = interval
        self.callback = callback
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop firing; the pending heap entry becomes a no-op."""
        self._cancelled = True

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.callback()
        if not self._cancelled:
            self._sim.schedule_callback(self.interval, self._fire)


class Simulator:
    """Discrete-event simulator.

    Time is a float in **seconds** throughout the repository (the paper's
    measurements are all in milliseconds; keeping seconds and converting for
    display avoids unit mistakes).
    """

    __slots__ = (
        "_now",
        "_heap",
        "_sequence",
        "_active_process",
        "_running",
        "_until",
        "_timeout_pool",
        "metadata",
        "steps_executed",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._running = False
        #: The ``until`` bound of the active :meth:`run` call (``None`` when
        #: unbounded or idle); inline fast-forward paths (link packet trains)
        #: consult it so they never advance the clock past the stop time.
        self._until: Optional[float] = None
        self._timeout_pool: List[Timeout] = []
        self.metadata: dict = {}
        #: Total callbacks executed over the simulator's lifetime; benchmark
        #: instrumentation (events/second).
        self.steps_executed = 0

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------
    def schedule_callback(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._heap, (self._now + delay, sequence, callback, args))

    def schedule_many(
        self, items: Iterable[Tuple]
    ) -> int:
        """Bulk-schedule ``(delay, callback, *args)`` tuples; returns the count.

        Equivalent to calling :meth:`schedule_callback` per item (FIFO order
        among equal-delay items is preserved) but the heap invariant is
        restored once: large batches are appended and re-heapified (O(n))
        instead of pushed one by one (O(n log n)) — the cheap way to seed a
        simulation with thousands of initial events.
        """
        heap = self._heap
        now = self._now
        sequence = self._sequence
        entries = []
        append = entries.append
        for item in items:
            delay = item[0]
            if delay < 0:
                raise ValueError(f"cannot schedule in the past (delay={delay})")
            append((now + delay, sequence, item[1], item[2:]))
            sequence += 1
        if not entries:
            return 0
        self._sequence = sequence
        if len(heap) > 4 * len(entries):
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        else:
            heap.extend(entries)
            heapq.heapify(heap)
        return len(entries)

    def schedule_event(self, delay: float, value: Any = None, name: str = "") -> Event:
        """Create an event that succeeds with ``value`` after ``delay`` seconds."""
        event = Event(name=name)
        event.sim = self
        self.schedule_callback(delay, self._trigger_if_pending, event, value)
        return event

    @staticmethod
    def _trigger_if_pending(event: Event, value: Any) -> None:
        if not event.triggered:
            event.succeed(value)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create and schedule a :class:`Timeout` (usable outside processes too)."""
        timeout = Timeout(delay, value=value)
        self._schedule_timeout(timeout)
        return timeout

    def _schedule_timeout(self, timeout: Timeout) -> None:
        timeout.sim = self
        self.schedule_callback(timeout.delay, self._trigger_if_pending, timeout, timeout.value)

    # -- pooled timeouts --------------------------------------------------------
    def _schedule_pooled_resume(self, delay: float, callback: Callable[[Event], None]) -> None:
        """Schedule a pooled :class:`Timeout` that resumes ``callback``.

        Backs numeric process sleeps (``yield 0.004``).  The Timeout object
        never escapes to user code, so after it fires it is reset and kept
        for reuse instead of being garbage.
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout.delay = delay
        else:
            timeout = Timeout(delay)
        timeout.sim = self
        timeout._callbacks.append(callback)
        self.schedule_callback(delay, self._fire_pooled_timeout, timeout)

    def _fire_pooled_timeout(self, timeout: Timeout) -> None:
        timeout.succeed(None)
        pool = self._timeout_pool
        if len(pool) < _TIMEOUT_POOL_LIMIT:
            timeout._triggered = False
            timeout._ok = True
            timeout._value = None
            timeout._callbacks.clear()
            pool.append(timeout)

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this simulator."""
        event = Event(name=name)
        event.sim = self
        return event

    # -- periodic hooks ---------------------------------------------------------
    def every(self, interval: float, callback: Callable[[], None],
              start: Optional[float] = None) -> PeriodicProbe:
        """Run ``callback()`` every ``interval`` simulated seconds.

        The first firing happens after ``start`` seconds (default: one
        ``interval``).  Returns the :class:`PeriodicProbe`; callers **must**
        :meth:`~PeriodicProbe.cancel` it before relying on the event heap
        draining — a live probe reschedules itself forever.  This is the
        sampling hook the observability layer uses to read queue depths and
        table occupancy on the simulated clock.
        """
        probe = PeriodicProbe(self, interval, callback)
        self.schedule_callback(interval if start is None else start,
                               probe._fire)
        return probe

    # -- introspection ----------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of callbacks currently scheduled on the heap."""
        return len(self._heap)

    @property
    def schedule_sequence(self) -> int:
        """Monotone count of callbacks scheduled over the simulator's lifetime.

        The FIFO tiebreaker counter — deterministic for a fixed seed, so
        deltas between two points in the run are a reproducible measure of
        event-heap churn (what :class:`repro.obs.profiler.Profiler`
        attributes to callback sites).
        """
        return self._sequence

    def stats(self) -> dict:
        """Event-loop counters (benchmark and trace metadata)."""
        return {
            "now": self._now,
            "pending": len(self._heap),
            "steps_executed": self.steps_executed,
            "sequence": self._sequence,
        }

    # -- processes -------------------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` and return it."""
        process = Process(self, generator, name=name)
        self.schedule_callback(0.0, process._start)
        return process

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (``None`` outside process code)."""
        return self._active_process

    # -- execution ---------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns ``False`` if none are left.

        Single-step API for tests and debugging; :meth:`run` inlines this.
        """
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        if time < self._now - 1e-12:
            raise RuntimeError("simulation time went backwards (kernel bug)")
        self._now = max(self._now, time)
        self.steps_executed += 1
        if _OBSERVER is not None:
            _OBSERVER(time, callback, args)
        callback(*args)
        return True

    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` seconds, or ``max_steps`` callbacks.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  Events scheduled at
            exactly ``until`` are still executed, and the clock always ends
            at ``until`` — even when the heap drains earlier, so idle-tail
            durations are reported correctly.
        max_steps:
            Safety valve for tests; raises :class:`RuntimeError` when exceeded.
        """
        heap = self._heap
        pop = heapq.heappop
        observer = _OBSERVER
        self._running = True
        self._until = until
        steps = 0
        try:
            try:
                while heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self._now = until
                        return
                    if max_steps is not None and steps >= max_steps:
                        raise RuntimeError(
                            f"simulation exceeded max_steps={max_steps}"
                        )
                    time, _seq, callback, args = pop(heap)
                    if time > self._now:
                        self._now = time
                    elif time < self._now - 1e-12:
                        raise RuntimeError(
                            "simulation time went backwards (kernel bug)"
                        )
                    if observer is not None:
                        observer(time, callback, args)
                    callback(*args)
                    steps += 1
                # Heap drained before the stop time: idle out the tail.
                if until is not None and until > self._now:
                    self._now = until
            except StopSimulation:
                pass
        finally:
            self.steps_executed += steps
            self._running = False
            self._until = None

    def _advance_inline(self, time: float) -> None:
        """Advance the clock between heap events (link packet trains).

        Callers must guarantee ``self._now <= time`` and that ``time``
        precedes both the next heap event and any active ``run(until=...)``
        bound — the train flush in :mod:`repro.net.link` checks exactly that.
        """
        self._now = time

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or ``None`` if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Simulator now={self._now:.6f} pending={len(self._heap)}>"
