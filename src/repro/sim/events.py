"""Waitable events for the discrete-event kernel.

An :class:`Event` is a one-shot synchronisation object.  Processes wait on it
by ``yield``-ing it; any piece of code (another process, a callback, the
simulator itself) completes it by calling :meth:`Event.succeed` or
:meth:`Event.fail`.  Once completed an event never changes state again.

:class:`Timeout` is an event that the simulator completes automatically after
a fixed amount of simulated time.  :class:`AllOf` / :class:`AnyOf` combine
several events into one.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional


class EventAlreadyTriggered(RuntimeError):
    """Raised when code tries to complete an event twice."""


class Event:
    """A one-shot waitable event.

    Parameters
    ----------
    name:
        Optional human-readable label, used only in ``repr`` and debugging
        output.
    """

    __slots__ = ("name", "_callbacks", "_triggered", "_value", "_ok", "sim")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.sim = None  # set lazily when scheduled by a Simulator
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._ok = True
        self._value: Any = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already been completed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event completed successfully (only valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was completed with (or the exception on failure)."""
        return self._value

    # -- completion -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Complete the event successfully with ``value``.

        Returns the event itself so the call can be chained or returned.
        """
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Complete the event with an exception.

        The exception is re-raised inside every process waiting on the event.
        """
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self._dispatch()
        return self

    # -- observers ---------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event completes.

        If the event already completed, the callback runs immediately.
        """
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "triggered" if self._triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event completed by the simulator ``delay`` time units after scheduling.

    Parameters
    ----------
    delay:
        Non-negative simulated-time delay.
    value:
        Optional value delivered to the waiter when the timeout fires.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float, value: Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        super().__init__(name=name)
        self.delay = float(delay)
        self._value = value


class AllOf(Event):
    """Completes when *all* child events have completed.

    The value is a list with the values of the children, in the order the
    children were given.  If any child fails, the composite fails with the
    first failure.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, events: Iterable[Event], name: str = "") -> None:
        super().__init__(name=name)
        self.events: List[Event] = list(events)
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(Event):
    """Completes as soon as *any* child event completes.

    The value is the ``(event, value)`` pair of the first child to finish.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event], name: str = "") -> None:
        super().__init__(name=name)
        self.events: List[Event] = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


def ensure_event(obj: Any) -> Optional[Event]:
    """Return ``obj`` if it is an :class:`Event`, otherwise ``None``."""
    return obj if isinstance(obj, Event) else None
