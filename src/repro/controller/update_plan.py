"""Dependency-ordered network update plans and their windowed executor.

Every consistent-update scheme the paper cites boils down to the same
controller-side pattern: split the update into operations with "X after Y"
dependencies, and only issue an operation once the operations it depends on
are *known to be in effect*.  The :class:`UpdatePlan` captures the DAG, the
:class:`PlanExecutor` issues operations subject to

* the dependency order,
* a bound K on the number of unconfirmed modifications in flight
  (the paper's low-level benchmarks sweep K), and
* the controller's acknowledgment mode (RUM confirmations, barriers, or
  nothing at all for the "no wait" lower bound).

The executor records per-operation issue and acknowledgment times; the
analysis layer correlates them with data-plane activation times measured at
the switches.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.controller.base import AckMode, Controller
from repro.obs import tracer as obs_tracer
from repro.obs.events import PHASE_ACK_RECEIVED, PHASE_UPDATE_ISSUED
from repro.openflow.messages import FlowMod
from repro.sim.events import Event
from repro.sim.kernel import Simulator

_operation_ids = itertools.count(1)


@dataclass
class UpdateOperation:
    """One rule modification inside an update plan."""

    switch: str
    flowmod: FlowMod
    op_id: int = field(default_factory=lambda: next(_operation_ids))
    depends_on: List[int] = field(default_factory=list)
    #: Free-form grouping label, e.g. the flow id this operation belongs to.
    label: str = ""
    #: Role of the operation inside its group, e.g. ``"new-path"`` or
    #: ``"ingress-flip"``; used by the analysis layer.
    role: str = ""

    issued_at: Optional[float] = None
    acked_at: Optional[float] = None

    @property
    def issued(self) -> bool:
        """Whether the executor already sent this operation."""
        return self.issued_at is not None

    @property
    def acked(self) -> bool:
        """Whether the acknowledgment for this operation arrived."""
        return self.acked_at is not None


class UpdatePlan:
    """A DAG of update operations."""

    def __init__(self, name: str = "update") -> None:
        self.name = name
        self.operations: Dict[int, UpdateOperation] = {}

    def add(
        self,
        switch: str,
        flowmod: FlowMod,
        after: Optional[List[UpdateOperation]] = None,
        label: str = "",
        role: str = "",
    ) -> UpdateOperation:
        """Add an operation that must run after the given operations."""
        operation = UpdateOperation(
            switch=switch,
            flowmod=flowmod,
            depends_on=[dep.op_id for dep in (after or [])],
            label=label,
            role=role,
        )
        for dep in operation.depends_on:
            if dep not in self.operations:
                raise ValueError(f"dependency {dep} not in plan")
        self.operations[operation.op_id] = operation
        return operation

    def __len__(self) -> int:
        return len(self.operations)

    def by_label(self, label: str) -> List[UpdateOperation]:
        """Operations belonging to a group label, in insertion order."""
        return [op for op in self.operations.values() if op.label == label]

    def by_role(self, role: str) -> List[UpdateOperation]:
        """Operations with the given role, in insertion order."""
        return [op for op in self.operations.values() if op.role == role]

    def labels(self) -> List[str]:
        """All distinct labels in insertion order."""
        seen: List[str] = []
        for op in self.operations.values():
            if op.label and op.label not in seen:
                seen.append(op.label)
        return seen

    def graph(self) -> nx.DiGraph:
        """The dependency graph (edges point from prerequisite to dependent)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.operations)
        for operation in self.operations.values():
            for dep in operation.depends_on:
                graph.add_edge(dep, operation.op_id)
        return graph

    def validate(self) -> None:
        """Raise :class:`ValueError` if the dependency graph has a cycle."""
        if not nx.is_directed_acyclic_graph(self.graph()):
            raise ValueError(f"update plan {self.name!r} has cyclic dependencies")

    def completed(self) -> bool:
        """Whether every operation has been acknowledged."""
        return all(operation.acked for operation in self.operations.values())


class PlanExecutor:
    """Issues an :class:`UpdatePlan` through a controller.

    Parameters
    ----------
    max_unconfirmed:
        The K of the paper's benchmarks: at most this many issued-but-not-yet
        acknowledged modifications at any time (per executor, across
        switches, matching the paper's single-switch benchmark setup).
    barrier_every:
        In :data:`AckMode.BARRIER` the executor sends a barrier after this
        many FlowMods on a switch (and whenever it runs out of work), since
        barrier replies are what resolve the acknowledgments.
    ignore_dependencies:
        The "no wait" mode of Figure 7: operations are issued as fast as the
        window allows, regardless of dependencies (no consistency).
    """

    def __init__(
        self,
        sim: Simulator,
        controller: Controller,
        plan: UpdatePlan,
        max_unconfirmed: int = 300,
        barrier_every: int = 10,
        ignore_dependencies: bool = False,
    ) -> None:
        if max_unconfirmed < 1:
            raise ValueError("max_unconfirmed must be >= 1")
        plan.validate()
        self.sim = sim
        self.controller = controller
        self.plan = plan
        self.max_unconfirmed = max_unconfirmed
        self.barrier_every = max(1, barrier_every)
        self.ignore_dependencies = ignore_dependencies

        self.done: Event = sim.event(name=f"plan-{plan.name}-done")
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

        self._in_flight: Set[int] = set()
        self._acked: Set[int] = set()
        self._issued: Set[int] = set()
        self._unbarriered: Dict[str, int] = defaultdict(int)
        self._dependents: Dict[int, List[int]] = defaultdict(list)
        for operation in plan.operations.values():
            for dep in operation.depends_on:
                self._dependents[dep].append(operation.op_id)
        self._ready: deque = deque(
            op.op_id
            for op in plan.operations.values()
            if not op.depends_on or ignore_dependencies
        )

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Event:
        """Begin issuing operations; returns the completion event."""
        if self.started_at is not None:
            return self.done
        self.started_at = self.sim.now
        if not self.plan.operations:
            self.finished_at = self.sim.now
            self.done.succeed(self.sim.now)
            return self.done
        self._pump()
        return self.done

    # -- internals --------------------------------------------------------------
    def _pump(self) -> None:
        while self._ready and len(self._in_flight) < self.max_unconfirmed:
            op_id = self._ready.popleft()
            if op_id in self._issued:
                continue
            self._issue(self.plan.operations[op_id])
        # In barrier mode an idle moment with unbarriered FlowMods means the
        # outstanding acks can never resolve; flush with a barrier.
        if self.controller.ack_mode == AckMode.BARRIER:
            blocked = not self._ready or len(self._in_flight) >= self.max_unconfirmed
            if blocked:
                for switch, count in list(self._unbarriered.items()):
                    if count > 0:
                        self._unbarriered[switch] = 0
                        self.controller.send_barrier(switch)

    def _issue(self, operation: UpdateOperation) -> None:
        operation.issued_at = self.sim.now
        self._issued.add(operation.op_id)
        self._in_flight.add(operation.op_id)
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_UPDATE_ISSUED, self.sim.now, operation.switch,
                    operation.flowmod.xid, detail=operation.role)
        ack = self.controller.send_flowmod(operation.switch, operation.flowmod)
        ack.event.add_callback(lambda _event, op=operation: self._on_acked(op))
        if self.controller.ack_mode == AckMode.BARRIER:
            self._unbarriered[operation.switch] += 1
            if self._unbarriered[operation.switch] >= self.barrier_every:
                self._unbarriered[operation.switch] = 0
                self.controller.send_barrier(operation.switch)

    def _on_acked(self, operation: UpdateOperation) -> None:
        if operation.op_id in self._acked:
            return
        operation.acked_at = self.sim.now
        self._acked.add(operation.op_id)
        self._in_flight.discard(operation.op_id)
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_ACK_RECEIVED, self.sim.now, operation.switch,
                    operation.flowmod.xid, detail=operation.role)
        if not self.ignore_dependencies:
            for dependent_id in self._dependents.get(operation.op_id, []):
                dependent = self.plan.operations[dependent_id]
                if dependent.issued:
                    continue
                if all(dep in self._acked for dep in dependent.depends_on):
                    self._ready.append(dependent_id)
        if len(self._acked) == len(self.plan.operations):
            self.finished_at = self.sim.now
            if not self.done.triggered:
                self.done.succeed(self.sim.now)
            return
        self._pump()

    # -- results ------------------------------------------------------------------
    @property
    def duration(self) -> Optional[float]:
        """Wall-clock (simulated) duration of the whole plan, once finished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def issue_times(self) -> Dict[int, float]:
        """``op_id -> issue time`` for all issued operations."""
        return {
            op_id: op.issued_at
            for op_id, op in self.plan.operations.items()
            if op.issued_at is not None
        }

    def ack_times(self) -> Dict[int, float]:
        """``op_id -> acknowledgment time`` for all acknowledged operations."""
        return {
            op_id: op.acked_at
            for op_id, op in self.plan.operations.items()
            if op.acked_at is not None
        }

    def effective_rate(self) -> Optional[float]:
        """Acknowledged operations per second over the plan's duration."""
        if not self.duration or self.duration <= 0:
            return None
        return len(self._acked) / self.duration

    def failed_operations(self) -> List[UpdateOperation]:
        """Issued operations whose acks the controller gave up on.

        Non-empty only when the recovery machinery abandoned un-acked
        FlowMods after exhausting their retransmission budget (see
        :meth:`repro.controller.base.Controller.fail_ack`).
        """
        return [
            op for op_id, op in self.plan.operations.items()
            if op_id in self._issued and not op.acked
            and self.controller.ack_failed(op.switch, op.flowmod.xid)
        ]

    def summary(self) -> Dict[str, object]:
        """Flat progress/outcome view of the execution (JSON-able).

        ``failed`` counts operations stranded by abandoned acks — before the
        recovery subsystem these sat in ``in_flight`` forever; now they are
        reported as their own terminal state.
        """
        failed = len(self.failed_operations())
        return {
            "plan": self.plan.name,
            "operations": len(self.plan.operations),
            "issued": len(self._issued),
            "acked": len(self._acked),
            "in_flight": len(self._in_flight) - failed,
            "failed": failed,
            "completed": self.done.triggered,
            "duration": self.duration,
        }
