"""SDN controller framework.

The controller side of the reproduction contains:

* :class:`~repro.controller.base.Controller` — connection handling, FlowMod /
  Barrier issuing, and acknowledgment tracking (switch barrier replies and
  RUM's fine-grained rule confirmations),
* :mod:`repro.controller.routing` — helpers that compute per-flow paths and
  the FlowMods that install them,
* :mod:`repro.controller.update_plan` — dependency-ordered update plans
  ("X after Y") and a windowed plan executor (at most K unconfirmed
  modifications in flight),
* :mod:`repro.controller.consistent` — the consistent path-migration update
  used in the end-to-end experiment and a Reitblatt-style two-phase
  version-tagged update,
* :mod:`repro.controller.firewall` — the Figure 2 firewall scenario in which
  a too-early acknowledgment opens a transient security hole.
"""

from repro.controller.base import AckMode, Controller, RuleAck
from repro.controller.routing import PathRules, install_path_rules, path_flowmods
from repro.controller.update_plan import (
    PlanExecutor,
    UpdateOperation,
    UpdatePlan,
)
from repro.controller.consistent import (
    ConsistentPathMigration,
    TwoPhaseVersionedUpdate,
)
from repro.controller.firewall import FirewallScenario

__all__ = [
    "AckMode",
    "ConsistentPathMigration",
    "Controller",
    "FirewallScenario",
    "PathRules",
    "PlanExecutor",
    "RuleAck",
    "TwoPhaseVersionedUpdate",
    "UpdateOperation",
    "UpdatePlan",
    "install_path_rules",
    "path_flowmods",
]
