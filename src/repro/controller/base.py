"""The controller base class.

A :class:`Controller` owns one control connection per switch (which may in
fact terminate at the RUM proxy rather than at the switch — the controller
cannot tell, which is the point of RUM's transparency).  It provides:

* fire-and-forget sending of any OpenFlow message,
* :meth:`Controller.send_flowmod` which returns a :class:`RuleAck` the caller
  can wait on; how the ack is resolved depends on the configured
  :class:`AckMode`,
* barrier bookkeeping (:meth:`Controller.send_barrier` returns an event
  completed by the corresponding BarrierReply),
* a PacketIn callback hook for applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.openflow.connection import ConnectionEndpoint
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    ErrorMessage,
    FlowMod,
    OFMessage,
    PacketIn,
    PacketOut,
)
from repro.sim.events import Event
from repro.sim.kernel import Simulator


class AckMode(str, Enum):
    """How the controller decides a rule modification is complete."""

    #: Trust RUM's fine-grained confirmations (repurposed error messages).
    RUM_CONFIRMATION = "rum"
    #: Send a barrier after the FlowMod and trust the switch's BarrierReply.
    BARRIER = "barrier"
    #: Do not wait at all (the "no wait" lower bound in Figure 7).
    NONE = "none"


@dataclass
class RuleAck:
    """Tracking record for one issued FlowMod."""

    switch: str
    xid: int
    flowmod: FlowMod
    sent_at: float
    event: Event
    acked_at: Optional[float] = None
    #: Set when the recovery machinery gives up on this ack (retransmission
    #: attempts exhausted); a failed ack is no longer *pending*.
    failed_at: Optional[float] = None
    #: Transmissions of the FlowMod so far (1 = the original send).
    attempts: int = 1

    @property
    def acked(self) -> bool:
        """Whether the acknowledgment has arrived."""
        return self.acked_at is not None

    @property
    def failed(self) -> bool:
        """Whether the controller gave up waiting for this acknowledgment."""
        return self.failed_at is not None


class Controller:
    """A minimal but complete OpenFlow controller."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "controller",
        ack_mode: AckMode = AckMode.RUM_CONFIRMATION,
    ) -> None:
        self.sim = sim
        self.name = name
        self.ack_mode = AckMode(ack_mode)

        self._endpoints: Dict[str, ConnectionEndpoint] = {}
        #: Outstanding rule acks by (switch, xid).
        self._rule_acks: Dict[Tuple[str, int], RuleAck] = {}
        #: Outstanding barrier events by (switch, barrier xid).
        self._barrier_events: Dict[Tuple[str, int], Event] = {}
        #: FlowMod xids covered by each outstanding barrier, for BARRIER mode.
        self._barrier_coverage: Dict[Tuple[str, int], List[int]] = {}
        #: xids sent since the last barrier, per switch (BARRIER mode).
        self._unbarriered: Dict[str, List[int]] = {}

        #: Application callbacks.
        self.packet_in_handlers: List[Callable[[str, PacketIn], None]] = []
        self.error_handlers: List[Callable[[str, ErrorMessage], None]] = []
        #: Callbacks fired when a crashed switch reconnects (see
        #: :meth:`on_switch_reconnect`).
        self.reconnect_handlers: List[Callable[[str], None]] = []
        #: The recovery manager, when the session armed one (see
        #: :mod:`repro.recovery`).  ``None`` keeps every path below on the
        #: exact pre-recovery event sequence.
        self.recovery = None

        #: Measurement log: ``(switch, xid) -> (sent_at, acked_at)``.
        self.ack_log: Dict[Tuple[str, int], Tuple[float, float]] = {}
        self.messages_received = 0
        self.messages_sent = 0

    # -- wiring ---------------------------------------------------------------
    def connect_switch(self, switch_name: str, endpoint: ConnectionEndpoint) -> None:
        """Attach the controller to (what it believes is) a switch connection."""
        if switch_name in self._endpoints:
            raise ValueError(f"switch {switch_name!r} already connected")
        self._endpoints[switch_name] = endpoint
        self._unbarriered[switch_name] = []
        endpoint.on_message(lambda message: self._on_message(switch_name, message))

    def switches(self) -> List[str]:
        """Names of connected switches."""
        return list(self._endpoints)

    # -- sending ------------------------------------------------------------------
    def send(self, switch_name: str, message: OFMessage) -> None:
        """Send a raw message to a switch."""
        self.messages_sent += 1
        self._endpoints[switch_name].send(message)

    def send_flowmod(self, switch_name: str, flowmod: FlowMod) -> RuleAck:
        """Send a FlowMod and return its acknowledgment tracking record.

        In :data:`AckMode.NONE` the returned ack completes immediately.  In
        :data:`AckMode.BARRIER` the ack completes when a *later* barrier on
        the same switch is answered (callers typically use
        :meth:`send_barrier` right after a batch).  In
        :data:`AckMode.RUM_CONFIRMATION` it completes when RUM's fine-grained
        confirmation for this xid arrives.
        """
        event = self.sim.event(name=f"ack-{switch_name}-{flowmod.xid}")
        ack = RuleAck(
            switch=switch_name,
            xid=flowmod.xid,
            flowmod=flowmod,
            sent_at=self.sim.now,
            event=event,
        )
        self._rule_acks[(switch_name, flowmod.xid)] = ack
        if self.recovery is not None:
            # Shadow the intended rule and arm the retransmit timer *before*
            # sending: an AckMode.NONE send completes synchronously and the
            # recovery bookkeeping must already know about the ack by then.
            self.recovery.flowmod_sent(ack)
        self.send(switch_name, flowmod)
        if self.ack_mode == AckMode.NONE:
            self._complete_ack(ack)
        elif self.ack_mode == AckMode.BARRIER:
            self._unbarriered[switch_name].append(flowmod.xid)
        return ack

    def retransmit(self, ack: RuleAck) -> None:
        """Re-send an un-acked FlowMod with its original xid.

        The original :class:`RuleAck` (and its event, which the
        :class:`~repro.controller.update_plan.PlanExecutor` waits on) stays
        the tracking record; the switch's per-boot xid de-duplication makes
        a duplicate delivery harmless.  In barrier mode the xid re-enters
        barrier coverage and a fresh barrier resolves it.
        """
        if ack.acked or ack.failed:
            return
        ack.attempts += 1
        self.send(ack.switch, ack.flowmod)
        if self.ack_mode == AckMode.BARRIER:
            self._unbarriered[ack.switch].append(ack.xid)
            self.send_barrier(ack.switch)

    def fail_ack(self, ack: RuleAck) -> None:
        """Give up on an un-acked FlowMod: mark it failed, not pending.

        The ack's event stays un-triggered — the operation genuinely never
        completed — but :meth:`pending_acks` no longer counts it, and
        executors report it via ``PlanExecutor.summary()``.
        """
        if ack.acked or ack.failed:
            return
        ack.failed_at = self.sim.now

    def send_barrier(self, switch_name: str) -> Event:
        """Send a BarrierRequest; the returned event completes on its reply."""
        request = BarrierRequest()
        event = self.sim.event(name=f"barrier-{switch_name}-{request.xid}")
        self._barrier_events[(switch_name, request.xid)] = event
        if self.ack_mode == AckMode.BARRIER:
            covered, self._unbarriered[switch_name] = self._unbarriered[switch_name], []
            self._barrier_coverage[(switch_name, request.xid)] = covered
        self.send(switch_name, request)
        return event

    def send_packet_out(self, switch_name: str, packet_out: PacketOut) -> None:
        """Inject a data-plane packet through a switch."""
        self.send(switch_name, packet_out)

    # -- receiving -----------------------------------------------------------------
    def _on_message(self, switch_name: str, message: OFMessage) -> None:
        self.messages_received += 1
        if isinstance(message, BarrierReply):
            self._handle_barrier_reply(switch_name, message)
        elif isinstance(message, ErrorMessage):
            if message.is_rum_confirmation:
                self._handle_rum_confirmation(switch_name, message)
            for handler in self.error_handlers:
                handler(switch_name, message)
        elif isinstance(message, PacketIn):
            for handler in self.packet_in_handlers:
                handler(switch_name, message)
        # Other messages (stats replies, echo replies, features) are ignored
        # by the base controller; applications can subclass if they need them.

    def _handle_barrier_reply(self, switch_name: str, message: BarrierReply) -> None:
        key = (switch_name, message.xid)
        event = self._barrier_events.pop(key, None)
        if event is not None and not event.triggered:
            event.succeed(self.sim.now)
        for xid in self._barrier_coverage.pop(key, []):
            ack = self._rule_acks.get((switch_name, xid))
            if ack is not None and not ack.acked:
                self._complete_ack(ack)

    def _handle_rum_confirmation(self, switch_name: str, message: ErrorMessage) -> None:
        ack = self._rule_acks.get((switch_name, message.data))
        if ack is not None and not ack.acked:
            self._complete_ack(ack)

    def _complete_ack(self, ack: RuleAck) -> None:
        ack.acked_at = self.sim.now
        self.ack_log[(ack.switch, ack.xid)] = (ack.sent_at, ack.acked_at)
        if not ack.event.triggered:
            ack.event.succeed(self.sim.now)
        if self.recovery is not None:
            self.recovery.flowmod_acked(ack)

    # -- recovery --------------------------------------------------------------
    def on_switch_reconnect(self, switch_name: str) -> None:
        """A crashed switch came back up (``Switch.restore`` lifecycle hook).

        Application callbacks run first — infrastructure state (e.g. RUM's
        probe-catch rules) must be back before the recovery manager replays
        shadowed rules, whose acknowledgments may depend on it.
        """
        for handler in self.reconnect_handlers:
            handler(switch_name)
        if self.recovery is not None:
            self.recovery.on_switch_reconnect(switch_name)

    # -- introspection ---------------------------------------------------------------
    def pending_acks(self, switch_name: Optional[str] = None) -> int:
        """Number of FlowMods still waiting for acknowledgment.

        Failed acks (retransmission attempts exhausted, see
        :meth:`fail_ack`) are no longer *waiting* and are not counted.
        """
        return sum(
            1
            for (switch, _xid), ack in self._rule_acks.items()
            if not ack.acked and not ack.failed
            and (switch_name is None or switch == switch_name)
        )

    def failed_acks(self, switch_name: Optional[str] = None) -> List[RuleAck]:
        """Acks abandoned after exhausting their retransmission budget."""
        return [
            ack
            for (switch, _xid), ack in self._rule_acks.items()
            if ack.failed and (switch_name is None or switch == switch_name)
        ]

    def ack_failed(self, switch_name: str, xid: int) -> bool:
        """Whether the FlowMod with ``xid`` was abandoned (see :meth:`fail_ack`)."""
        ack = self._rule_acks.get((switch_name, xid))
        return ack is not None and ack.failed

    def ack_time(self, switch_name: str, xid: int) -> Optional[float]:
        """When the controller considered the given FlowMod complete."""
        record = self.ack_log.get((switch_name, xid))
        return record[1] if record else None

    def on_packet_in(self, handler: Callable[[str, PacketIn], None]) -> None:
        """Register a PacketIn application callback."""
        self.packet_in_handlers.append(handler)
