"""The Figure 2 firewall scenario.

Switch A forwards traffic from host 10.0.0.1 towards switch B (rule X).
Switch B forwards that traffic to switch S3 (rule Y), except HTTP traffic,
which must go through a firewall (rule Z, higher priority).  The update plan
is therefore "X after Y, X after Z": only once both B rules are in place may
A start sending traffic to B.

If switch B acknowledges Y and Z before they are actually in its data plane —
or if Z's installation is delayed by one of the multi-second corner cases the
paper mentions — the controller flips X too early and HTTP traffic reaches
its destination *without* traversing the firewall: a transient security hole.
With RUM's data-plane acknowledgments the flip waits until Z demonstrably
forwards packets, so the hole cannot open (traffic is simply delayed).

The scenario class builds the topology, the update plan, and the violation
metric; the experiment harness (:mod:`repro.experiments.fig2_firewall`) and
the ``firewall_bypass.py`` example wire it to a controller with and without
RUM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.controller.update_plan import UpdatePlan
from repro.net.network import Network
from repro.net.topology import Topology
from repro.net.traffic import FlowSpec
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.packet.fields import IP_PROTO_TCP
from repro.faults import DataPlaneFault, FaultInjector
from repro.switches.profiles import SwitchProfile, hp5406zl_profile


class DelayedHttpRuleFault(DataPlaneFault):  # repro: noqa(RL007): scenario-local fault, instantiated directly by FirewallScenario; registry exposure would invite misuse in fault plans
    """Delays the data-plane installation of the HTTP (firewall) rule.

    This reproduces, deterministically, the "hard to predict corner cases
    [where] the delay may reach several seconds" that make static timeouts
    unsafe, applied to the one rule whose late installation opens the
    security hole.  Scenario-specific, hence not in the fault registry.
    """

    name = "delayed-http-rule"
    param_defaults = {"delay": 0.8, "http_port": 80}

    def setup(self) -> None:
        self.delayed_rules = 0

    def intercept(self, flowmod, apply) -> bool:
        if flowmod.match.value_of("tp_dst") != self.http_port:
            return False
        self.delayed_rules += 1
        self.count("rules_delayed")
        self.sim.schedule_callback(self.delay, apply, flowmod, self.sim.now + self.delay)
        return True


@dataclass
class FirewallScenario:
    """Topology, flows, update plan and violation metric for Figure 2."""

    #: Profile of switch B (the one with unreliable acknowledgments).
    hardware_profile: Optional[SwitchProfile] = None
    #: Extra data-plane delay injected on rule Z (0 disables the fault).
    http_rule_delay: float = 0.8
    #: Traffic rate of each of the two flows (packets/second).
    rate_pps: float = 250.0
    host_ip: str = "10.0.0.1"
    server_ip: str = "10.0.0.2"

    def build_topology(self) -> Topology:
        """A - B - S3 chain with the firewall switch (and its host) off B.

        The firewall itself is modelled as a software switch ``FW`` with the
        monitoring host ``FWH`` behind it, so that rule Z (HTTP → firewall)
        forwards to a *switch* and can therefore be confirmed by the general
        probing technique exactly like any other forwarding rule.
        """
        topo = Topology("firewall")
        topo.add_switch("A", kind="software")
        topo.add_switch("B", kind="hardware",
                        profile=self.hardware_profile or hp5406zl_profile())
        topo.add_switch("S3", kind="software")
        topo.add_switch("FW", kind="software")
        topo.add_host("H1", ip=self.host_ip, mac="00:00:00:00:00:01")
        topo.add_host("H2", ip=self.server_ip, mac="00:00:00:00:00:02")
        topo.add_host("FWH", ip="10.0.0.254", mac="00:00:00:00:00:fe")
        topo.add_link("H1", "A")
        topo.add_link("A", "B")
        topo.add_link("B", "S3")
        topo.add_link("B", "FW")
        topo.add_link("FW", "FWH")
        topo.add_link("S3", "H2")
        topo.validate()
        return topo

    def install_fault(self, network: Network) -> Optional[FaultInjector]:
        """Arm the delayed-HTTP-rule fault on switch B (if enabled)."""
        if self.http_rule_delay <= 0:
            return None
        fault = DelayedHttpRuleFault(delay=self.http_rule_delay)
        return FaultInjector(network.switch("B"), [fault], seed=11)

    def preinstall(self, network: Network) -> None:
        """Static state that exists before the measured update.

        S3 already knows how to reach H2; A and B start with empty tables so
        no traffic from H1 flows anywhere until the update installs X, Y, Z.
        """
        to_h2 = FlowMod(
            Match(ip_dst=self.server_ip),
            [OutputAction(network.port_between("S3", "H2"))],
            priority=100,
        )
        network.switch("S3").install_rule_directly(to_h2)
        # The firewall switch delivers everything it receives to the
        # monitoring host behind it (where inspected traffic terminates).
        to_firewall_host = FlowMod(
            Match(),
            [OutputAction(network.port_between("FW", "FWH"))],
            priority=10,
        )
        network.switch("FW").install_rule_directly(to_firewall_host)

    def flows(self, network: Network) -> List[FlowSpec]:
        """One HTTP flow and one non-HTTP flow from H1 to H2."""
        h1, h2 = network.host("H1"), network.host("H2")
        return [
            FlowSpec(
                flow_id="http",
                source=h1,
                destination=h2,
                ip_src=self.host_ip,
                ip_dst=self.server_ip,
                rate_pps=self.rate_pps,
                ip_proto=IP_PROTO_TCP,
                tp_dst=80,
            ),
            FlowSpec(
                flow_id="bulk",
                source=h1,
                destination=h2,
                ip_src=self.host_ip,
                ip_dst=self.server_ip,
                rate_pps=self.rate_pps,
                ip_proto=IP_PROTO_TCP,
                tp_dst=5001,
            ),
        ]

    def build_plan(self, network: Network) -> UpdatePlan:
        """Rules Y and Z at B, then X at A once both are acknowledged."""
        plan = UpdatePlan(name="firewall-update")
        rule_z = FlowMod(
            Match(ip_src=self.host_ip, ip_proto=IP_PROTO_TCP, tp_dst=80),
            [OutputAction(network.port_between("B", "FW"))],
            priority=300,
        )
        rule_y = FlowMod(
            Match(ip_src=self.host_ip),
            [OutputAction(network.port_between("B", "S3"))],
            priority=200,
        )
        # Z is issued before Y so that even an installation-order switch
        # gives the firewall rule precedence (Section 4 of the paper).
        op_z = plan.add("B", rule_z, label="firewall", role="new-path")
        op_y = plan.add("B", rule_y, label="firewall", role="new-path")
        rule_x = FlowMod(
            Match(ip_src=self.host_ip),
            [OutputAction(network.port_between("A", "B"))],
            priority=200,
        )
        plan.add("A", rule_x, after=[op_y, op_z], label="firewall", role="ingress-flip")
        plan.validate()
        return plan

    # -- metrics -------------------------------------------------------------
    def violations(self, network: Network) -> Dict[str, int]:
        """Security-policy violations observed by the monitor.

        Every HTTP packet delivered to H2 bypassed the firewall (once the
        update is in effect HTTP must terminate at FW), so the count of such
        deliveries is the violation count.
        """
        monitor = network.monitor
        http_deliveries = monitor.deliveries("http") if "http" in monitor.flows() else []
        bulk_deliveries = monitor.deliveries("bulk") if "bulk" in monitor.flows() else []
        http_at_h2 = sum(1 for record in http_deliveries if record.path and record.path[-1] == "H2")
        http_at_firewall = sum(
            1 for record in http_deliveries if record.path and record.path[-1] == "FWH"
        )
        return {
            "http_packets_bypassing_firewall": http_at_h2,
            "http_packets_at_firewall": http_at_firewall,
            "bulk_packets_delivered": sum(
                1 for record in bulk_deliveries if record.path and record.path[-1] == "H2"
            ),
        }
