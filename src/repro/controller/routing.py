"""Path computation and per-flow rule construction.

The end-to-end experiments preinstall one exact-match rule per flow per
switch along the flow's path.  These helpers build those FlowMods from a node
path (``["H1", "S1", "S3", "H2"]``) and a flow specification, and can install
them either through the control channel or directly into the switches (for
pre-experiment setup, where the installation process itself is not measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.net.network import Network
from repro.net.traffic import FlowSpec
from repro.openflow.actions import OutputAction
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod


@dataclass
class PathRules:
    """The per-switch FlowMods implementing one flow's path."""

    flow_id: str
    path: List[str]
    flowmods: Dict[str, FlowMod] = field(default_factory=dict)

    def switches(self) -> List[str]:
        """Switches on the path, in path order."""
        return [node for node in self.path if node in self.flowmods]


def flow_match(flow: FlowSpec) -> Match:
    """The exact IP source/destination match used for one flow's rules.

    The prototype section of the paper assumes non-overlapping rules matching
    on source and destination address, which is what the experiments use.
    """
    return Match(ip_src=flow.ip_src, ip_dst=flow.ip_dst)


def path_flowmods(
    network: Network,
    flow: FlowSpec,
    path: Sequence[str],
    priority: int = 100,
    command: FlowModCommand = FlowModCommand.ADD,
) -> PathRules:
    """Build one FlowMod per switch along ``path`` for ``flow``.

    ``path`` must list node names from the source host to the destination
    host; every switch's rule outputs on the port facing the next node in the
    path.
    """
    path = list(path)
    if len(path) < 2:
        raise ValueError("a path needs at least a source and a destination")
    rules = PathRules(flow_id=flow.flow_id, path=path)
    for index, node in enumerate(path[:-1]):
        if node not in network.switches:
            continue
        out_port = network.port_between(node, path[index + 1])
        flowmod = FlowMod(
            flow_match(flow),
            [OutputAction(out_port)],
            command=command,
            priority=priority,
        )
        rules.flowmods[node] = flowmod
    return rules


def shortest_path(network: Network, source_host: str, destination_host: str,
                  avoid: Optional[Sequence[str]] = None) -> List[str]:
    """Shortest node path between two hosts, optionally avoiding some switches."""
    graph = network.topology.full_graph().copy()
    for node in avoid or []:
        if node in graph:
            graph.remove_node(node)
    return nx.shortest_path(graph, source_host, destination_host)


def k_shortest_paths(graph: nx.Graph, source: str, destination: str,
                     k: int) -> List[List[str]]:
    """Up to ``k`` loop-free paths between two nodes, shortest first.

    The scenario generators use this to pick migration targets on arbitrary
    topologies: the first path is the pre-update route, and the first later
    path that differs is a natural post-update route (both necessarily share
    their first hop when the source is a degree-one host).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    paths: List[List[str]] = []
    for path in nx.shortest_simple_paths(graph, source, destination):
        paths.append(list(path))
        if len(paths) == k:
            break
    return paths


def first_distinct_switch(old_path: Sequence[str], new_path: Sequence[str],
                          switches) -> Optional[str]:
    """The first switch of ``new_path`` that ``old_path`` does not visit.

    ``switches`` is the collection of switch names (anything supporting
    ``in``).  This is the switch whose traversal lets the delivery monitor
    tell the two routes apart; ``None`` when the new path adds no switch.
    """
    old_nodes = set(old_path)
    for node in new_path:
        if node in switches and node not in old_nodes:
            return node
    return None


def shortest_path_avoiding_edge(
    graph: nx.Graph,
    source: str,
    destination: str,
    edge: Tuple[str, str],
) -> Optional[List[str]]:
    """Shortest path that does not traverse ``edge``, or ``None`` if cut off.

    Used by the link-failure scenario: the drained/failed link is removed and
    traffic is rerouted over whatever connectivity remains.
    """
    pruned = graph.copy()
    if pruned.has_edge(*edge):
        pruned.remove_edge(*edge)
    try:
        return list(nx.shortest_path(pruned, source, destination))
    except nx.NetworkXNoPath:
        return None


def install_path_rules(
    network: Network,
    rules: PathRules,
    *,
    directly: bool = True,
    controller=None,
    priority: int = 100,
) -> List[FlowMod]:
    """Install a flow's path rules.

    With ``directly=True`` the rules are written straight into both switch
    planes (pre-experiment setup).  Otherwise ``controller`` must be given
    and the rules are sent through the control channel with
    :meth:`~repro.controller.base.Controller.send_flowmod`.
    """
    issued = []
    for switch_name, flowmod in rules.flowmods.items():
        if directly:
            network.switch(switch_name).install_rule_directly(flowmod)
        else:
            if controller is None:
                raise ValueError("controller required when directly=False")
            controller.send_flowmod(switch_name, flowmod)
        issued.append(flowmod)
    return issued


def install_drop_all(network: Network, switch_names: Optional[Sequence[str]] = None,
                     priority: int = 1) -> None:
    """Pre-install a low-priority drop-all rule on the given switches.

    The low-level benchmark setup in Section 5.2 starts from "a single, low
    priority drop-all-packets rule at the switch"; the end-to-end experiment
    behaves the same way implicitly because a table miss drops the packet.
    Installing the rule explicitly also exercises the probe generator's
    overlapping-rule logic (a drop-all is the canonical lower-priority
    overlap).
    """
    from repro.openflow.actions import DropAction

    for name in switch_names if switch_names is not None else network.switch_names():
        flowmod = FlowMod(Match(), [DropAction()], priority=priority)
        network.switch(name).install_rule_directly(flowmod)
