"""Consistent network updates.

Two update strategies are provided:

* :class:`ConsistentPathMigration` — the per-flow dependency-ordered update
  used in the paper's end-to-end experiment (Figure 1a): for every flow,
  first install the rules on the switches that are new on the flow's path
  (switch S2 in the triangle), and only after those are acknowledged flip the
  ingress switch (S1) to the new next hop.  A packet therefore always follows
  either the complete old path or the complete new path — *provided the
  acknowledgments are truthful*, which is exactly what the paper shows is not
  the case with barrier-based acknowledgments on real hardware.

* :class:`TwoPhaseVersionedUpdate` — a Reitblatt-style two-phase commit using
  a version tag carried in the VLAN id: internal rules for the new
  configuration are installed matching the new version, and ingress switches
  are flipped to stamp the new version only once every internal rule is
  acknowledged.  This is the general mechanism the papers cited in the
  introduction build on; it is included both as an extension and as a second
  consumer of the acknowledgment layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.controller.routing import flow_match
from repro.controller.update_plan import UpdateOperation, UpdatePlan
from repro.net.network import Network
from repro.net.traffic import FlowSpec
from repro.openflow.actions import OutputAction, SetFieldAction
from repro.openflow.constants import FlowModCommand
from repro.openflow.messages import FlowMod
from repro.packet.fields import HeaderField


def _switch_hops(path: Sequence[str], network: Network) -> List[str]:
    """The switches of a host-to-host node path, in order."""
    return [node for node in path if node in network.switches]


def _output_port(network: Network, path: Sequence[str], switch: str) -> int:
    """Port ``switch`` must use towards its successor on ``path``."""
    index = list(path).index(switch)
    return network.port_between(switch, path[index + 1])


@dataclass
class ConsistentPathMigration:
    """Builds the update plan migrating flows from ``old_path`` to ``new_path``."""

    network: Network
    flows: List[FlowSpec]
    old_path: List[str]
    new_path: List[str]
    priority: int = 100
    #: Also delete the old-path rules on switches that are no longer used
    #: (not measured in the paper's experiment, hence off by default).
    cleanup: bool = False

    def ingress_switch(self) -> str:
        """The first switch common to both paths (whose rule gets flipped)."""
        old_switches = _switch_hops(self.old_path, self.network)
        new_switches = _switch_hops(self.new_path, self.network)
        if not old_switches or not new_switches or old_switches[0] != new_switches[0]:
            raise ValueError("old and new paths must share their ingress switch")
        return new_switches[0]

    def build_plan(self) -> UpdatePlan:
        """One pair of operations per flow: prepare downstream, then flip ingress."""
        plan = UpdatePlan(name="path-migration")
        ingress = self.ingress_switch()
        old_switches = _switch_hops(self.old_path, self.network)
        new_switches = _switch_hops(self.new_path, self.network)

        for flow in self.flows:
            match = flow_match(flow)
            prerequisites: List[UpdateOperation] = []
            for switch in new_switches:
                if switch == ingress:
                    continue
                new_port = _output_port(self.network, self.new_path, switch)
                needs_rule = switch not in old_switches
                if not needs_rule:
                    old_port = _output_port(self.network, self.old_path, switch)
                    needs_rule = old_port != new_port
                if not needs_rule:
                    continue
                flowmod = FlowMod(match, [OutputAction(new_port)],
                                  command=FlowModCommand.ADD, priority=self.priority)
                prerequisites.append(
                    plan.add(switch, flowmod, label=flow.flow_id, role="new-path")
                )
            ingress_port = _output_port(self.network, self.new_path, ingress)
            flip = FlowMod(match, [OutputAction(ingress_port)],
                           command=FlowModCommand.ADD, priority=self.priority)
            flip_op = plan.add(ingress, flip, after=prerequisites,
                               label=flow.flow_id, role="ingress-flip")
            if self.cleanup:
                for switch in old_switches:
                    if switch in new_switches:
                        continue
                    delete = FlowMod(match, [], command=FlowModCommand.DELETE,
                                     priority=self.priority)
                    plan.add(switch, delete, after=[flip_op],
                             label=flow.flow_id, role="cleanup")
        plan.validate()
        return plan


@dataclass
class TwoPhaseVersionedUpdate:
    """Reitblatt-style two-phase consistent update with VLAN version tags."""

    network: Network
    flows: List[FlowSpec]
    new_paths: Dict[str, List[str]]
    old_version: int = 1
    new_version: int = 2
    priority: int = 200
    #: Delete the old-version internal rules once the ingress flip is done.
    garbage_collect: bool = False

    def build_plan(self) -> UpdatePlan:
        """Phase 1 installs versioned internal rules, phase 2 flips ingress stamps."""
        if self.old_version == self.new_version:
            raise ValueError("old and new versions must differ")
        plan = UpdatePlan(name="two-phase-versioned")
        for flow in self.flows:
            path = self.new_paths[flow.flow_id]
            switches = _switch_hops(path, self.network)
            if not switches:
                raise ValueError(f"flow {flow.flow_id} has no switches on its path")
            ingress, internal = switches[0], switches[1:]
            base_match = flow_match(flow)
            phase_one: List[UpdateOperation] = []

            for position, switch in enumerate(internal):
                out_port = _output_port(self.network, path, switch)
                versioned = base_match.extended(vlan_id=self.new_version)
                actions = [OutputAction(out_port)]
                if position == len(internal) - 1:
                    # Last switch strips the version tag before the host.
                    actions = [SetFieldAction(HeaderField.VLAN_ID, 0), OutputAction(out_port)]
                flowmod = FlowMod(versioned, actions, command=FlowModCommand.ADD,
                                  priority=self.priority)
                phase_one.append(
                    plan.add(switch, flowmod, label=flow.flow_id, role="new-path")
                )

            ingress_port = _output_port(self.network, path, ingress)
            stamp = FlowMod(
                base_match,
                [SetFieldAction(HeaderField.VLAN_ID, self.new_version),
                 OutputAction(ingress_port)],
                command=FlowModCommand.ADD,
                priority=self.priority,
            )
            flip_op = plan.add(ingress, stamp, after=phase_one,
                               label=flow.flow_id, role="ingress-flip")

            if self.garbage_collect:
                for switch in internal:
                    old_match = base_match.extended(vlan_id=self.old_version)
                    delete = FlowMod(old_match, [], command=FlowModCommand.DELETE_STRICT,
                                     priority=self.priority)
                    plan.add(switch, delete, after=[flip_op],
                             label=flow.flow_id, role="cleanup")
        plan.validate()
        return plan
