"""Figure 7 — flow update times with the data-plane probing techniques.

Both probing techniques are drop-free; sequential probing pays for the extra
probe-rule modifications, while general probing only sends data-plane probes
and ends up close to the "no wait" lower bound (all modifications issued at
once, no consistency guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_table, render_flow_update_curves
from repro.experiments.common import (
    EndToEndParams,
    EndToEndResult,
    NO_WAIT,
    run_path_migration,
)

#: The configurations plotted in Figure 7.
FIG7_TECHNIQUES: List[Tuple[str, str, Dict[str, object]]] = [
    ("sequential", "sequential", {"probe_batch": 10}),
    ("general", "general", {"probe_window": 30, "probe_interval": 0.01}),
    ("no wait", NO_WAIT, {}),
]


@dataclass
class Fig7Result:
    """Per-configuration end-to-end results."""

    results: Dict[str, EndToEndResult]

    def update_curves(self) -> Dict[str, List[Tuple[Optional[float], Optional[float]]]]:
        """The (last old-path, first new-path) pairs per configuration."""
        return {name: result.update_pairs() for name, result in self.results.items()}

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {name: result.as_dict() for name, result in self.results.items()}


def run_fig7(params: Optional[EndToEndParams] = None) -> Fig7Result:
    """Run Figure 7 (sequential probing, general probing, no-wait bound)."""
    params = params or EndToEndParams.default()
    results: Dict[str, EndToEndResult] = {}
    for label, technique, overrides in FIG7_TECHNIQUES:
        results[label] = run_path_migration(
            technique, params.scaled(rum_overrides=overrides)
        )
    return Fig7Result(results=results)


def render(result: Fig7Result) -> str:
    """Text rendering of Figure 7."""
    curves = render_flow_update_curves(
        result.update_curves(),
        title="Figure 7: flow update times, data-plane probing techniques",
    )
    rows = [
        [name, res.dropped_packets,
         f"{res.mean_update_time:.3f}" if res.mean_update_time is not None else "-",
         f"{res.completion_time:.3f}" if res.completion_time is not None else "-"]
        for name, res in result.results.items()
    ]
    summary = format_table(
        ["configuration", "packets dropped", "mean flow update time [s]",
         "last flow updated at [s]"],
        rows,
        title="Probing techniques vs the no-wait lower bound",
    )
    return curves + "\n\n" + summary


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_fig7()))
