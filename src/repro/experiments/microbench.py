"""Section 5.2 (in-text) — switch PacketOut / PacketIn micro-benchmarks.

Three measurements on the hardware switch model:

* sustained PacketOut rate (paper: ~7006 messages/s),
* sustained PacketIn rate (paper: ~5531 messages/s),
* interference of PacketIn / PacketOut processing with concurrent rule
  modifications (paper: PacketIn keeps >= 96 % of the modification rate;
  PacketOut at a 5:1 ratio costs at most ~13 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.controller.base import AckMode, Controller
from repro.net.network import Network
from repro.net.topology import triangle_topology
from repro.net.traffic import FlowSpec, TrafficGenerator
from repro.openflow.actions import ControllerAction, OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, PacketOut
from repro.packet.addresses import int_to_ip, ip_to_int
from repro.packet.packet import make_ip_packet
from repro.sim.kernel import Simulator
from repro.switches.profiles import SwitchProfile, hp5406zl_profile


@dataclass
class MicrobenchParams:
    """Scale of the micro-benchmarks."""

    packet_out_count: int = 2000
    packet_in_duration: float = 1.0
    flowmod_count: int = 400
    packet_out_ratio: int = 5
    hardware_profile: Optional[SwitchProfile] = None
    seed: int = 23

    @classmethod
    def paper(cls) -> "MicrobenchParams":
        """The paper's scale (20 000 PacketOut messages)."""
        return cls(packet_out_count=20000, packet_in_duration=2.0, flowmod_count=1000)

    @classmethod
    def quick(cls) -> "MicrobenchParams":
        """Reduced scale for CI."""
        return cls()


@dataclass
class MicrobenchResult:
    """All micro-benchmark outcomes."""

    packet_out_rate: float
    packet_in_rate: float
    flowmod_rate_baseline: float
    flowmod_rate_with_packet_in: float
    flowmod_rate_with_packet_out: float

    @property
    def packet_in_interference(self) -> float:
        """Fraction of the baseline modification rate kept under PacketIn load."""
        if self.flowmod_rate_baseline <= 0:
            return 0.0
        return self.flowmod_rate_with_packet_in / self.flowmod_rate_baseline

    @property
    def packet_out_interference(self) -> float:
        """Fraction of the baseline modification rate kept under PacketOut load."""
        if self.flowmod_rate_baseline <= 0:
            return 0.0
        return self.flowmod_rate_with_packet_out / self.flowmod_rate_baseline

    def as_dict(self) -> Dict[str, float]:
        """JSON-able summary."""
        return {
            "packet_out_rate": self.packet_out_rate,
            "packet_in_rate": self.packet_in_rate,
            "flowmod_rate_baseline": self.flowmod_rate_baseline,
            "flowmod_rate_with_packet_in": self.flowmod_rate_with_packet_in,
            "flowmod_rate_with_packet_out": self.flowmod_rate_with_packet_out,
            "packet_in_interference": self.packet_in_interference,
            "packet_out_interference": self.packet_out_interference,
        }


def _build(params: MicrobenchParams):
    sim = Simulator()
    network = Network(
        sim,
        triangle_topology(hardware_profile=params.hardware_profile or hp5406zl_profile()),
        seed=params.seed,
    )
    controller = Controller(sim, ack_mode=AckMode.NONE)
    for name in network.switch_names():
        controller.connect_switch(name, network.controller_endpoint(name))
    network.start()
    return sim, network, controller


def measure_packet_out_rate(params: MicrobenchParams) -> float:
    """Sustained PacketOut rate of the hardware switch (packets/second)."""
    sim, network, controller = _build(params)
    sink_ip = "10.0.128.200"
    network.switch("S3").install_rule_directly(
        FlowMod(Match(ip_dst=sink_ip),
                [OutputAction(network.port_between("S3", "H2"))], priority=500)
    )
    out_port = network.port_between("S2", "S3")
    for index in range(params.packet_out_count):
        packet = make_ip_packet("10.0.200.1", sink_ip, flow_id=f"pout-{index:05d}",
                                created_at=0.0, sequence=index)
        controller.send_packet_out("S2", PacketOut(packet, [OutputAction(out_port)]))
    sim.run(until=max(2.0, params.packet_out_count / 1000.0))
    monitor = network.monitor
    arrivals = sorted(
        record.received_at
        for flow_id in monitor.delivered_flows()
        for record in monitor.deliveries(flow_id)
        if flow_id.startswith("pout-")
    )
    if len(arrivals) < 2:
        return 0.0
    return (len(arrivals) - 1) / (arrivals[-1] - arrivals[0])


def measure_packet_in_rate(params: MicrobenchParams) -> float:
    """Sustained PacketIn rate of the hardware switch (messages/second)."""
    sim, network, controller = _build(params)
    received: List[float] = []
    controller.on_packet_in(lambda _switch, _message: received.append(sim.now))

    # All traffic arriving at S2 from this prefix goes to the controller.
    network.switch("S2").install_rule_directly(
        FlowMod(Match(ip_src=("10.3.0.0", 16)), [ControllerAction()], priority=500)
    )
    h1 = network.host("H1")
    h2 = network.host("H2")
    flows = [
        FlowSpec(
            flow_id=f"pin-{index}",
            source=h1,
            destination=h2,
            ip_src=int_to_ip(ip_to_int("10.3.0.1") + index),
            ip_dst="10.0.128.99",
            rate_pps=1500.0,
        )
        for index in range(8)
    ]
    # Forward that prefix from S1 towards S2.
    network.switch("S1").install_rule_directly(
        FlowMod(Match(ip_src=("10.3.0.0", 16)),
                [OutputAction(network.port_between("S1", "S2"))], priority=500)
    )
    traffic = TrafficGenerator(sim, flows)
    traffic.start()
    sim.run(until=params.packet_in_duration)
    if len(received) < 2:
        return 0.0
    return (len(received) - 1) / (received[-1] - received[0])


def _flowmod_rate(params: MicrobenchParams, *, packet_in_load: bool,
                  packet_out_ratio: int) -> float:
    """Rule modification completion rate under optional concurrent load."""
    sim, network, controller = _build(params)
    switch = network.switch("S2")

    if packet_in_load:
        switch.install_rule_directly(
            FlowMod(Match(ip_src=("10.3.0.0", 16)), [ControllerAction()], priority=500)
        )
        network.switch("S1").install_rule_directly(
            FlowMod(Match(ip_src=("10.3.0.0", 16)),
                    [OutputAction(network.port_between("S1", "S2"))], priority=500)
        )
        flows = [
            FlowSpec(
                flow_id=f"pin-{index}",
                source=network.host("H1"),
                destination=network.host("H2"),
                ip_src=int_to_ip(ip_to_int("10.3.0.1") + index),
                ip_dst="10.0.128.99",
                rate_pps=400.0,
            )
            for index in range(4)
        ]
        TrafficGenerator(sim, flows).start()

    out_port = network.port_between("S2", "S3")
    src_base = ip_to_int("10.6.0.0")
    for index in range(params.flowmod_count):
        flowmod = FlowMod(
            Match(ip_src=int_to_ip(src_base + index + 1), ip_dst="10.0.128.50"),
            [OutputAction(out_port)],
            priority=100,
        )
        controller.send(
            "S2", flowmod
        )
        for copy in range(packet_out_ratio):
            packet = make_ip_packet("10.0.200.1", "10.0.128.200",
                                    flow_id=None, sequence=copy)
            controller.send_packet_out("S2", PacketOut(packet, [OutputAction(out_port)]))
    sim.run(until=max(5.0, params.flowmod_count / 50.0))
    apply_times = sorted(switch.controlplane.control_apply_log.values())
    if len(apply_times) < 2:
        return 0.0
    return (len(apply_times) - 1) / (apply_times[-1] - apply_times[0])


def run_microbench(params: Optional[MicrobenchParams] = None) -> MicrobenchResult:
    """Run all three micro-benchmarks."""
    params = params or MicrobenchParams.quick()
    return MicrobenchResult(
        packet_out_rate=measure_packet_out_rate(params),
        packet_in_rate=measure_packet_in_rate(params),
        flowmod_rate_baseline=_flowmod_rate(params, packet_in_load=False, packet_out_ratio=0),
        flowmod_rate_with_packet_in=_flowmod_rate(params, packet_in_load=True,
                                                  packet_out_ratio=0),
        flowmod_rate_with_packet_out=_flowmod_rate(params, packet_in_load=False,
                                                   packet_out_ratio=params.packet_out_ratio),
    )


def render(result: MicrobenchResult) -> str:
    """Text rendering of the micro-benchmark results."""
    rows = [
        ["PacketOut rate", f"{result.packet_out_rate:.0f} /s", "~7006 /s"],
        ["PacketIn rate", f"{result.packet_in_rate:.0f} /s", "~5531 /s"],
        ["FlowMod rate (baseline)", f"{result.flowmod_rate_baseline:.0f} /s", "200-285 /s"],
        ["kept under PacketIn load", f"{result.packet_in_interference * 100:.0f}%", ">= 96%"],
        ["kept under 5:1 PacketOut load", f"{result.packet_out_interference * 100:.0f}%", ">= 87%"],
    ]
    return format_table(
        ["measurement", "this reproduction", "paper"],
        rows,
        title="Section 5.2 micro-benchmarks",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_microbench()))
