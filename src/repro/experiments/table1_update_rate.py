"""Table 1 — usable rule-update rate with the sequential probing technique.

The controller performs R modifications with at most K unconfirmed at any
time; RUM updates its probe rule after every N real modifications.  The
usable modification rate (probe-rule updates excluded) is reported as a
percentage of the rate achieved with plain barriers: it grows with the batch
size N (the probing overhead is amortised) and suffers when K is small
relative to N (confirmations do not arrive fast enough to keep the switch
busy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import RuleInstallParams, RuleInstallResult, run_rule_install

#: Probe-rule update frequencies (real modifications per probe rule update).
PROBE_FREQUENCIES = (1, 2, 5, 10, 20)
#: Window sizes (maximum unconfirmed modifications).
WINDOW_SIZES = (20, 50, 100)


@dataclass
class Table1Result:
    """The normalised usable rates."""

    #: ``(probe_batch, K) -> usable rate / barrier rate`` (fraction).
    normalised: Dict[Tuple[int, int], float]
    #: ``K -> barrier-only rate`` used as the denominator.
    barrier_rates: Dict[int, float]
    raw: Dict[Tuple[int, int], RuleInstallResult]

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "normalised": {f"batch={batch},K={window}": value
                           for (batch, window), value in self.normalised.items()},
            "barrier_rates": {str(window): rate for window, rate in self.barrier_rates.items()},
        }


def run_table1(
    params: Optional[RuleInstallParams] = None,
    probe_frequencies: Sequence[int] = PROBE_FREQUENCIES,
    window_sizes: Sequence[int] = WINDOW_SIZES,
) -> Table1Result:
    """Run the Table 1 sweep.

    The default parameters use a reduced R (see
    :meth:`RuleInstallParams.quick`) unless explicit parameters are given;
    the paper's R = 4000 is available via
    :meth:`RuleInstallParams.paper_table1`.
    """
    params = params or RuleInstallParams.quick(rule_count=600)
    normalised: Dict[Tuple[int, int], float] = {}
    barrier_rates: Dict[int, float] = {}
    raw: Dict[Tuple[int, int], RuleInstallResult] = {}
    for window in window_sizes:
        barrier_result = run_rule_install(
            "barrier", params.scaled(max_unconfirmed=window)
        )
        barrier_rate = barrier_result.usable_rate or float("nan")
        barrier_rates[window] = barrier_rate
        for batch in probe_frequencies:
            result = run_rule_install(
                "sequential",
                params.scaled(max_unconfirmed=window,
                              rum_overrides={"probe_batch": batch}),
            )
            raw[(batch, window)] = result
            usable = result.usable_rate or 0.0
            normalised[(batch, window)] = usable / barrier_rate if barrier_rate else 0.0
    return Table1Result(normalised=normalised, barrier_rates=barrier_rates, raw=raw)


def render(result: Table1Result) -> str:
    """Text rendering of Table 1."""
    windows = sorted(result.barrier_rates)
    rows: List[List[object]] = []
    batches = sorted({batch for batch, _window in result.normalised})
    for batch in batches:
        row: List[object] = [f"after {batch} update{'s' if batch != 1 else ''}"]
        for window in windows:
            fraction = result.normalised.get((batch, window))
            row.append(f"{fraction * 100:.0f}%" if fraction is not None else "-")
        rows.append(row)
    return format_table(
        ["Probing frequency"] + [f"K = {window}" for window in windows],
        rows,
        title="Table 1: usable rule update rate (normalised to barrier-only rate)",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_table1()))
