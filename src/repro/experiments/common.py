"""Shared experiment engines — now thin adapters over :mod:`repro.session`.

.. note::
   New code should build :class:`~repro.session.spec.SessionSpec` objects
   (directly or via :func:`migration_session` / :func:`rule_install_session`)
   and call ``spec.run()``; the functions here keep the historical signatures
   and run through exactly that API.

Two engines cover the whole evaluation:

* :func:`run_path_migration` — the end-to-end experiment of Section 5.1
  (Figures 1b, 6 and 7, and the barrier-layer overhead runs): flows are
  migrated from an old path to a new path with a consistent update, while
  constant-rate traffic measures packet loss and switchover times at the
  destination.  The topology and paths come from a :class:`MigrationSpec`;
  the default is the paper's triangle (S1-S3 → S1-S2-S3).
* :func:`run_rule_install` — the low-level benchmark of Section 5.2
  (Figure 8 and Table 1): a controller performs R rule modifications on the
  hardware switch with at most K unconfirmed at any time, and the harness
  correlates controller-visible acknowledgment times with data-plane
  activation times.

Both return the unified :class:`~repro.session.record.RunRecord`; the names
``EndToEndResult`` and ``RuleInstallResult`` are deprecated aliases of it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.controller.consistent import ConsistentPathMigration
from repro.controller.routing import (
    first_distinct_switch,
    install_path_rules,
    path_flowmods,
)
from repro.controller.update_plan import UpdatePlan
from repro.core.techniques.registry import TECHNIQUE_NO_WAIT
from repro.net.network import Network
from repro.net.topology import Topology, triangle_topology
from repro.net.traffic import FlowSpec, flows_between
from repro.openflow.actions import DropAction, OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.packet.addresses import int_to_ip, ip_to_int
from repro.session.record import RunRecord
from repro.session.spec import (
    ActivationProbe,
    SessionKnobs,
    SessionSpec,
    StackSpec,
    Workload,
)
from repro.session.stack import ControlStack, build_control_stack
from repro.switches.profiles import SwitchProfile, hp5406zl_profile

__all__ = [
    "ControlStack",
    "EndToEndParams",
    "EndToEndResult",
    "MigrationSpec",
    "NO_WAIT",
    "RuleInstallParams",
    "RuleInstallResult",
    "build_control_stack",
    "full_scale",
    "migration_session",
    "rule_install_session",
    "run_path_migration",
    "run_rule_install",
]

#: Name of the "issue everything at once" lower bound of Figure 7 — a real
#: registered technique now (see :mod:`repro.core.techniques.registry`), kept
#: here as the historical constant.
NO_WAIT = TECHNIQUE_NO_WAIT

#: Deprecated aliases: every engine returns the unified record schema.
EndToEndResult = RunRecord
RuleInstallResult = RunRecord


def full_scale() -> bool:
    """Whether experiments should run at the paper's full scale.

    The paper's parameters (300 flows at 250 packets/s, 4000-rule sweeps) are
    used when the environment variable ``REPRO_FULL_SCALE`` is set; the
    default is a reduced scale that preserves every qualitative result while
    keeping the benchmark suite fast enough for CI.
    """
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


# ---------------------------------------------------------------------------
# End-to-end path migration (Section 5.1)
# ---------------------------------------------------------------------------

@dataclass
class MigrationSpec:
    """What to migrate: a topology plus the old and new host-to-host paths.

    ``run_path_migration`` historically hard-wired the paper's triangle; the
    spec makes the same engine run on any topology (the scenario subsystem
    feeds it generated fat-trees, leaf-spines, rings and Waxman graphs).
    """

    topology: Topology
    old_path: List[str]
    new_path: List[str]
    source_host: str = "H1"
    dest_host: str = "H2"
    #: The switch whose traversal marks a delivery as "new path" (S2 in the
    #: triangle).  When ``None`` it is inferred as the first switch on the
    #: new path that the old path does not visit.
    new_path_switch: Optional[str] = None

    def resolved_new_path_switch(self) -> str:
        """The switch distinguishing new-path deliveries from old-path ones."""
        if self.new_path_switch is not None:
            return self.new_path_switch
        marker = first_distinct_switch(self.old_path, self.new_path,
                                       self.topology.switches)
        if marker is None:
            raise ValueError(
                f"new path {self.new_path!r} visits no switch the old path "
                "avoids; set new_path_switch explicitly"
            )
        return marker

    @classmethod
    def triangle(cls, hardware_profile: Optional[SwitchProfile] = None) -> "MigrationSpec":
        """The paper's Figure 1a migration: S1-S3 → S1-S2-S3."""
        return cls(
            topology=triangle_topology(
                hardware_profile=hardware_profile or hp5406zl_profile()
            ),
            old_path=["H1", "S1", "S3", "H2"],
            new_path=["H1", "S1", "S2", "S3", "H2"],
            new_path_switch="S2",
        )


@dataclass
class EndToEndParams:
    """Parameters of the end-to-end experiment."""

    flow_count: int = 300
    rate_pps: float = 250.0
    warmup: float = 0.3
    grace: float = 0.4
    max_update_duration: float = 20.0
    seed: int = 7
    max_unconfirmed: Optional[int] = None
    hardware_profile: Optional[SwitchProfile] = None
    rum_overrides: Dict[str, object] = field(default_factory=dict)
    #: Controller barrier frequency when a reliable barrier layer is stacked.
    barrier_every: int = 10
    with_barrier_layer: bool = False
    buffer_after_barrier: bool = False

    @classmethod
    def paper(cls) -> "EndToEndParams":
        """The parameters used in the paper (300 flows at 250 pkt/s)."""
        return cls(flow_count=300, rate_pps=250.0)

    @classmethod
    def quick(cls) -> "EndToEndParams":
        """A reduced-scale configuration for tests and CI benchmarks.

        Fewer flows than the paper's 300, but the same 250 packets/s per flow
        so the 4 ms measurement precision of Figure 1b is preserved.
        """
        return cls(flow_count=60, rate_pps=250.0)

    @classmethod
    def default(cls) -> "EndToEndParams":
        """Paper scale if ``REPRO_FULL_SCALE`` is set, quick scale otherwise."""
        return cls.paper() if full_scale() else cls.quick()

    def scaled(self, **overrides) -> "EndToEndParams":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


def migration_session(
    technique: str,
    params: Optional[EndToEndParams] = None,
    spec: Optional[MigrationSpec] = None,
) -> SessionSpec:
    """The consistent path-migration experiment as a :class:`SessionSpec`."""
    params = params or EndToEndParams.default()
    spec = spec or MigrationSpec.triangle(hardware_profile=params.hardware_profile)
    new_path_switch = spec.resolved_new_path_switch()

    def provide_flows(network: Network) -> List[FlowSpec]:
        return flows_between(
            network.host(spec.source_host),
            network.host(spec.dest_host),
            params.flow_count,
            rate_pps=params.rate_pps,
        )

    def preinstall(network: Network, flows: List[FlowSpec]) -> None:
        for flow in flows:
            install_path_rules(network, path_flowmods(network, flow, spec.old_path))

    def build_plan(network: Network, flows: List[FlowSpec]) -> UpdatePlan:
        migration = ConsistentPathMigration(network, flows,
                                            spec.old_path, spec.new_path)
        return migration.build_plan()

    return SessionSpec(
        kind="path-migration",
        technique=technique,
        topology=lambda: spec.topology,
        workload=Workload(
            flows=provide_flows,
            preinstall=preinstall,
            markers=lambda network, flows: new_path_switch,
        ),
        plan_builder=build_plan,
        stack=StackSpec(
            rum_overrides=dict(params.rum_overrides),
            with_barrier_layer=params.with_barrier_layer,
            buffer_after_barrier=params.buffer_after_barrier,
        ),
        knobs=SessionKnobs(
            seed=params.seed,
            warmup=params.warmup,
            grace=params.grace,
            settle=0.05,
            poll_interval=0.1,
            max_update_duration=params.max_update_duration,
            max_unconfirmed=params.max_unconfirmed or max(2 * params.flow_count, 16),
            barrier_every=params.barrier_every,
            rate_pps=params.rate_pps,
        ),
        activation_probe=ActivationProbe(switch=new_path_switch, role="new-path"),
        labels={
            "flow_count": params.flow_count,
            "source_host": spec.source_host,
            "dest_host": spec.dest_host,
            "new_path_switch": new_path_switch,
        },
    )


def run_path_migration(
    technique: str,
    params: Optional[EndToEndParams] = None,
    spec: Optional[MigrationSpec] = None,
) -> RunRecord:
    """Run the consistent path-migration experiment with one technique.

    ``technique`` is any registered technique name (:data:`NO_WAIT` gives the
    no-consistency lower bound of Figure 7).  ``spec`` selects the topology
    and the old/new paths; the default is the paper's triangle migration.
    """
    return migration_session(technique, params, spec).run()


# ---------------------------------------------------------------------------
# Low-level rule installation benchmark (Section 5.2)
# ---------------------------------------------------------------------------

@dataclass
class RuleInstallParams:
    """Parameters of the single-switch rule-installation benchmark."""

    rule_count: int = 300
    max_unconfirmed: int = 300
    seed: int = 13
    target_switch: str = "S2"
    hardware_profile: Optional[SwitchProfile] = None
    rum_overrides: Dict[str, object] = field(default_factory=dict)
    #: Preinstall the low-priority drop-all rule the paper's setup starts from.
    with_drop_all: bool = True
    max_duration: float = 120.0

    @classmethod
    def paper_fig8(cls) -> "RuleInstallParams":
        """Figure 8: R = 300, K = 300 (all modifications issued at once)."""
        return cls(rule_count=300, max_unconfirmed=300)

    @classmethod
    def paper_table1(cls) -> "RuleInstallParams":
        """Table 1: R = 4000 modifications."""
        return cls(rule_count=4000, max_unconfirmed=100)

    @classmethod
    def quick(cls, rule_count: int = 150, max_unconfirmed: int = 150) -> "RuleInstallParams":
        """Reduced-scale configuration for tests and CI benchmarks."""
        return cls(rule_count=rule_count, max_unconfirmed=max_unconfirmed)

    def scaled(self, **overrides) -> "RuleInstallParams":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


def _install_benchmark_plan(network: Network, params: RuleInstallParams) -> UpdatePlan:
    """R independent exact-match rule installations on the target switch."""
    plan = UpdatePlan(name="rule-install")
    target = params.target_switch
    out_port = network.port_between(target, "S3")
    src_base = ip_to_int("10.1.0.0")
    dst_base = ip_to_int("10.2.0.0")
    for index in range(params.rule_count):
        match = Match(ip_src=int_to_ip(src_base + index + 1),
                      ip_dst=int_to_ip(dst_base + index + 1))
        flowmod = FlowMod(match, [OutputAction(out_port)], priority=100)
        plan.add(target, flowmod, label=f"rule-{index:05d}", role="install")
    return plan


def rule_install_session(
    technique: str,
    params: Optional[RuleInstallParams] = None,
) -> SessionSpec:
    """The Section 5.2 rule-installation benchmark as a :class:`SessionSpec`."""
    params = params or RuleInstallParams.paper_fig8()

    def preinstall(network: Network, flows: List[FlowSpec]) -> None:
        if params.with_drop_all:
            network.switch(params.target_switch).install_rule_directly(
                FlowMod(Match(), [DropAction()], priority=1)
            )

    return SessionSpec(
        kind="rule-install",
        technique=technique,
        topology=lambda: triangle_topology(
            hardware_profile=params.hardware_profile or hp5406zl_profile()
        ),
        workload=Workload(
            flows=lambda network: [],
            preinstall=preinstall,
            traffic=False,
        ),
        plan_builder=lambda network, flows: _install_benchmark_plan(network, params),
        stack=StackSpec(rum_overrides=dict(params.rum_overrides)),
        knobs=SessionKnobs(
            seed=params.seed,
            warmup=0.0,
            settle=0.1,
            poll_interval=0.25,
            max_update_duration=params.max_duration,
            max_unconfirmed=params.max_unconfirmed,
        ),
        activation_probe=ActivationProbe(switch=params.target_switch),
        labels={
            "rule_count": params.rule_count,
            "target_switch": params.target_switch,
            "window": params.max_unconfirmed,
        },
    )


def run_rule_install(technique: str, params: Optional[RuleInstallParams] = None) -> RunRecord:
    """Run the Section 5.2 rule-installation benchmark with one technique."""
    return rule_install_session(technique, params).run()
