"""Shared experiment engines.

Two engines cover the whole evaluation:

* :func:`run_path_migration` — the end-to-end experiment of Section 5.1
  (Figures 1b, 6 and 7, and the barrier-layer overhead runs): flows are
  migrated from an old path to a new path with a consistent update, while
  constant-rate traffic measures packet loss and switchover times at the
  destination.  The topology and paths come from a :class:`MigrationSpec`;
  the default is the paper's triangle (S1-S3 → S1-S2-S3), but any topology —
  including the generated fat-trees and leaf-spines of
  :mod:`repro.scenarios.generators` — can be migrated the same way.
* :func:`run_rule_install` — the low-level benchmark of Section 5.2
  (Figure 8 and Table 1): a controller performs R rule modifications on the
  hardware switch with at most K unconfirmed at any time, and the harness
  correlates controller-visible acknowledgment times with data-plane
  activation times.

The module also provides :func:`build_control_stack`, the
RUM-proxy/controller wiring shared between these engines and the scenario
engine of :mod:`repro.scenarios.engine`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.activation import ActivationDelays, activation_delays
from repro.analysis.flowstats import (
    FlowUpdateStats,
    flow_update_stats,
    mean_update_time,
    total_dropped,
    update_completion_time,
)
from repro.controller.base import AckMode, Controller
from repro.controller.consistent import ConsistentPathMigration
from repro.controller.routing import (
    first_distinct_switch,
    install_path_rules,
    path_flowmods,
)
from repro.controller.update_plan import PlanExecutor, UpdatePlan
from repro.core.barrier_layer import ReliableBarrierLayer
from repro.core.config import RumConfig, config_for_technique
from repro.core.proxy import chain_proxies
from repro.core.rum import RumLayer
from repro.net.network import Network
from repro.net.topology import Topology, triangle_topology
from repro.net.traffic import TrafficGenerator, flows_between
from repro.openflow.actions import DropAction, OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.packet.addresses import int_to_ip, ip_to_int
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.switches.profiles import SwitchProfile, hp5406zl_profile, reordering_switch_profile

#: Name used for the "issue everything at once" lower bound of Figure 7.
NO_WAIT = "no-wait"


def full_scale() -> bool:
    """Whether experiments should run at the paper's full scale.

    The paper's parameters (300 flows at 250 packets/s, 4000-rule sweeps) are
    used when the environment variable ``REPRO_FULL_SCALE`` is set; the
    default is a reduced scale that preserves every qualitative result while
    keeping the benchmark suite fast enough for CI.
    """
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


# ---------------------------------------------------------------------------
# Control-stack wiring shared by all engines
# ---------------------------------------------------------------------------

@dataclass
class ControlStack:
    """The RUM proxy chain and controller attached to a network's switches."""

    controller: Controller
    rum: Optional[RumLayer] = None
    barrier_layer: Optional[ReliableBarrierLayer] = None

    def prepare(self) -> None:
        """Pre-start setup (probe catch rules etc.); call before the network starts."""
        if self.rum is not None:
            self.rum.prepare()

    def start(self) -> None:
        """Start the proxy processes; call after the network has started."""
        if self.rum is not None:
            self.rum.start()


def build_control_stack(
    sim: Simulator,
    network: Network,
    technique: str,
    *,
    rum_config: Optional[RumConfig] = None,
    with_barrier_layer: bool = False,
    buffer_after_barrier: bool = False,
) -> ControlStack:
    """Wire a controller (and, unless ``technique`` is :data:`NO_WAIT`, a RUM
    proxy chain) onto every switch of ``network``.

    Returns the stack with the controller already connected to all switches;
    the caller is responsible for calling :meth:`ControlStack.prepare` before
    and :meth:`ControlStack.start` after ``network.start()``.
    """
    rum: Optional[RumLayer] = None
    barrier_layer: Optional[ReliableBarrierLayer] = None
    if technique != NO_WAIT:
        rum = RumLayer(sim, rum_config or config_for_technique(technique))
        layers = [rum]
        if with_barrier_layer:
            barrier_layer = ReliableBarrierLayer(
                sim, buffer_after_barrier=buffer_after_barrier
            )
            layers.append(barrier_layer)
        endpoints = chain_proxies(network, layers)
        ack_mode = AckMode.BARRIER if with_barrier_layer else AckMode.RUM_CONFIRMATION
    else:
        endpoints = {name: network.controller_endpoint(name)
                     for name in network.switch_names()}
        ack_mode = AckMode.NONE
    controller = Controller(sim, ack_mode=ack_mode)
    for switch_name, endpoint in endpoints.items():
        controller.connect_switch(switch_name, endpoint)
    return ControlStack(controller=controller, rum=rum, barrier_layer=barrier_layer)


# ---------------------------------------------------------------------------
# End-to-end path migration (Section 5.1)
# ---------------------------------------------------------------------------

@dataclass
class MigrationSpec:
    """What to migrate: a topology plus the old and new host-to-host paths.

    ``run_path_migration`` historically hard-wired the paper's triangle; the
    spec makes the same engine run on any topology (the scenario subsystem
    feeds it generated fat-trees, leaf-spines, rings and Waxman graphs).
    """

    topology: Topology
    old_path: List[str]
    new_path: List[str]
    source_host: str = "H1"
    dest_host: str = "H2"
    #: The switch whose traversal marks a delivery as "new path" (S2 in the
    #: triangle).  When ``None`` it is inferred as the first switch on the
    #: new path that the old path does not visit.
    new_path_switch: Optional[str] = None

    def resolved_new_path_switch(self) -> str:
        """The switch distinguishing new-path deliveries from old-path ones."""
        if self.new_path_switch is not None:
            return self.new_path_switch
        marker = first_distinct_switch(self.old_path, self.new_path,
                                       self.topology.switches)
        if marker is None:
            raise ValueError(
                f"new path {self.new_path!r} visits no switch the old path "
                "avoids; set new_path_switch explicitly"
            )
        return marker

    @classmethod
    def triangle(cls, hardware_profile: Optional[SwitchProfile] = None) -> "MigrationSpec":
        """The paper's Figure 1a migration: S1-S3 → S1-S2-S3."""
        return cls(
            topology=triangle_topology(
                hardware_profile=hardware_profile or hp5406zl_profile()
            ),
            old_path=["H1", "S1", "S3", "H2"],
            new_path=["H1", "S1", "S2", "S3", "H2"],
            new_path_switch="S2",
        )


@dataclass
class EndToEndParams:
    """Parameters of the end-to-end experiment."""

    flow_count: int = 300
    rate_pps: float = 250.0
    warmup: float = 0.3
    grace: float = 0.4
    max_update_duration: float = 20.0
    seed: int = 7
    max_unconfirmed: Optional[int] = None
    hardware_profile: Optional[SwitchProfile] = None
    rum_overrides: Dict[str, object] = field(default_factory=dict)
    #: Controller barrier frequency when a reliable barrier layer is stacked.
    barrier_every: int = 10
    with_barrier_layer: bool = False
    buffer_after_barrier: bool = False

    @classmethod
    def paper(cls) -> "EndToEndParams":
        """The parameters used in the paper (300 flows at 250 pkt/s)."""
        return cls(flow_count=300, rate_pps=250.0)

    @classmethod
    def quick(cls) -> "EndToEndParams":
        """A reduced-scale configuration for tests and CI benchmarks.

        Fewer flows than the paper's 300, but the same 250 packets/s per flow
        so the 4 ms measurement precision of Figure 1b is preserved.
        """
        return cls(flow_count=60, rate_pps=250.0)

    @classmethod
    def default(cls) -> "EndToEndParams":
        """Paper scale if ``REPRO_FULL_SCALE`` is set, quick scale otherwise."""
        return cls.paper() if full_scale() else cls.quick()

    def scaled(self, **overrides) -> "EndToEndParams":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


@dataclass
class EndToEndResult:
    """Everything the end-to-end analysis needs."""

    technique: str
    params: EndToEndParams
    update_start: float
    update_duration: Optional[float]
    stats: List[FlowUpdateStats]
    dropped_packets: int
    mean_update_time: Optional[float]
    completion_time: Optional[float]
    activation: Optional[ActivationDelays]
    rum_description: str = ""
    barrier_layer_held: int = 0

    def update_pairs(self) -> List[Tuple[Optional[float], Optional[float]]]:
        """``(last old-path, first new-path)`` pairs, per flow (Figure 6/7 axes)."""
        return [(entry.last_old_path, entry.first_new_path) for entry in self.stats]

    def broken_times(self) -> List[float]:
        """Per-flow broken times (Figure 1b input)."""
        return [entry.broken_time for entry in self.stats]

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "technique": self.technique,
            "flows": len(self.stats),
            "update_duration": self.update_duration,
            "dropped_packets": self.dropped_packets,
            "mean_update_time": self.mean_update_time,
            "completion_time": self.completion_time,
            "max_broken_time": max(self.broken_times(), default=0.0),
            "acknowledged_early": (
                self.activation.negative_count if self.activation else None
            ),
        }


def _rum_config_for(technique: str, params: EndToEndParams) -> RumConfig:
    overrides = dict(params.rum_overrides)
    if technique == "adaptive" and "assumed_rate" not in overrides:
        overrides["assumed_rate"] = 250.0
    return config_for_technique(technique, **overrides)


def run_path_migration(
    technique: str,
    params: Optional[EndToEndParams] = None,
    spec: Optional[MigrationSpec] = None,
) -> EndToEndResult:
    """Run the consistent path-migration experiment with one technique.

    ``technique`` is one of RUM's technique names, or :data:`NO_WAIT` for the
    no-consistency lower bound of Figure 7.  ``spec`` selects the topology
    and the old/new paths; the default is the paper's triangle migration.
    """
    params = params or EndToEndParams.default()
    spec = spec or MigrationSpec.triangle(hardware_profile=params.hardware_profile)
    new_path_switch = spec.resolved_new_path_switch()
    sim = Simulator()
    rng = SeededRandom(params.seed)
    network = Network(sim, spec.topology, seed=params.seed)

    # Flows and their pre-existing (old path) forwarding state ----------------
    source = network.host(spec.source_host)
    destination = network.host(spec.dest_host)
    flows = flows_between(source, destination, params.flow_count,
                          rate_pps=params.rate_pps)
    for flow in flows:
        install_path_rules(network, path_flowmods(network, flow, spec.old_path))

    # RUM layer (unless running the no-wait lower bound) and controller --------
    stack = build_control_stack(
        sim,
        network,
        technique,
        rum_config=(_rum_config_for(technique, params)
                    if technique != NO_WAIT else None),
        with_barrier_layer=params.with_barrier_layer,
        buffer_after_barrier=params.buffer_after_barrier,
    )
    rum = stack.rum

    stack.prepare()
    network.start()
    stack.start()

    # Traffic ---------------------------------------------------------------------
    traffic = TrafficGenerator(sim, flows, rng=rng.fork("traffic"))
    traffic.start()

    # Update plan --------------------------------------------------------------------
    migration = ConsistentPathMigration(network, flows, spec.old_path, spec.new_path)
    plan = migration.build_plan()
    max_unconfirmed = params.max_unconfirmed or max(2 * params.flow_count, 16)
    executor = PlanExecutor(
        sim,
        stack.controller,
        plan,
        max_unconfirmed=max_unconfirmed,
        barrier_every=params.barrier_every,
        ignore_dependencies=(technique == NO_WAIT),
    )

    sim.run(until=params.warmup)
    executor.start()
    deadline = params.warmup + params.max_update_duration
    while not executor.done.triggered and sim.now < deadline:
        sim.run(until=min(sim.now + 0.1, deadline))

    # Let traffic run a little longer so post-update deliveries are observed.
    stop_at = sim.now + params.grace
    traffic.stop_all(stop_at)
    sim.run(until=stop_at + 0.05)

    stats = flow_update_stats(
        network.monitor,
        new_path_switch=new_path_switch,
        update_start=params.warmup,
        expected_interval=1.0 / params.rate_pps,
    )

    activation: Optional[ActivationDelays] = None
    if rum is not None:
        new_path_xids = [op.flowmod.xid for op in plan.by_role("new-path")
                         if op.switch == new_path_switch]
        activation = activation_delays(
            network.switch(new_path_switch),
            rum.confirmation_times(new_path_switch),
            technique=technique,
            xids=new_path_xids,
        )

    return EndToEndResult(
        technique=technique,
        params=params,
        update_start=params.warmup,
        update_duration=executor.duration,
        stats=stats,
        dropped_packets=total_dropped(stats),
        mean_update_time=mean_update_time(stats),
        completion_time=update_completion_time(stats),
        activation=activation,
        rum_description=rum.describe() if rum is not None else NO_WAIT,
        barrier_layer_held=stack.barrier_layer.barriers_held if stack.barrier_layer else 0,
    )


# ---------------------------------------------------------------------------
# Low-level rule installation benchmark (Section 5.2)
# ---------------------------------------------------------------------------

@dataclass
class RuleInstallParams:
    """Parameters of the single-switch rule-installation benchmark."""

    rule_count: int = 300
    max_unconfirmed: int = 300
    seed: int = 13
    target_switch: str = "S2"
    hardware_profile: Optional[SwitchProfile] = None
    rum_overrides: Dict[str, object] = field(default_factory=dict)
    #: Preinstall the low-priority drop-all rule the paper's setup starts from.
    with_drop_all: bool = True
    max_duration: float = 120.0

    @classmethod
    def paper_fig8(cls) -> "RuleInstallParams":
        """Figure 8: R = 300, K = 300 (all modifications issued at once)."""
        return cls(rule_count=300, max_unconfirmed=300)

    @classmethod
    def paper_table1(cls) -> "RuleInstallParams":
        """Table 1: R = 4000 modifications."""
        return cls(rule_count=4000, max_unconfirmed=100)

    @classmethod
    def quick(cls, rule_count: int = 150, max_unconfirmed: int = 150) -> "RuleInstallParams":
        """Reduced-scale configuration for tests and CI benchmarks."""
        return cls(rule_count=rule_count, max_unconfirmed=max_unconfirmed)

    def scaled(self, **overrides) -> "RuleInstallParams":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


@dataclass
class RuleInstallResult:
    """Outcome of one rule-installation run."""

    technique: str
    params: RuleInstallParams
    duration: Optional[float]
    acknowledged_rules: int
    usable_rate: Optional[float]
    activation: Optional[ActivationDelays]
    rum_probe_rule_updates: int = 0
    rum_probes_injected: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "technique": self.technique,
            "rules": self.params.rule_count,
            "window": self.params.max_unconfirmed,
            "duration": self.duration,
            "usable_rate": self.usable_rate,
            "negative_delays": self.activation.negative_count if self.activation else None,
        }


def _install_benchmark_plan(network: Network, params: RuleInstallParams) -> UpdatePlan:
    """R independent exact-match rule installations on the target switch."""
    plan = UpdatePlan(name="rule-install")
    target = params.target_switch
    out_port = network.port_between(target, "S3")
    src_base = ip_to_int("10.1.0.0")
    dst_base = ip_to_int("10.2.0.0")
    for index in range(params.rule_count):
        match = Match(ip_src=int_to_ip(src_base + index + 1),
                      ip_dst=int_to_ip(dst_base + index + 1))
        flowmod = FlowMod(match, [OutputAction(out_port)], priority=100)
        plan.add(target, flowmod, label=f"rule-{index:05d}", role="install")
    return plan


def run_rule_install(technique: str, params: Optional[RuleInstallParams] = None) -> RuleInstallResult:
    """Run the Section 5.2 rule-installation benchmark with one technique."""
    params = params or RuleInstallParams.paper_fig8()
    sim = Simulator()
    network = Network(
        sim,
        triangle_topology(hardware_profile=params.hardware_profile or hp5406zl_profile()),
        seed=params.seed,
    )
    target_switch = network.switch(params.target_switch)
    if params.with_drop_all:
        target_switch.install_rule_directly(FlowMod(Match(), [DropAction()], priority=1))

    stack = build_control_stack(
        sim, network, technique,
        rum_config=config_for_technique(technique, **params.rum_overrides),
    )
    rum = stack.rum

    stack.prepare()
    network.start()
    stack.start()

    plan = _install_benchmark_plan(network, params)
    executor = PlanExecutor(
        sim, stack.controller, plan, max_unconfirmed=params.max_unconfirmed,
    )
    executor.start()
    deadline = params.max_duration
    while not executor.done.triggered and sim.now < deadline:
        sim.run(until=min(sim.now + 0.25, deadline))
    sim.run(until=sim.now + 0.1)

    xids = [op.flowmod.xid for op in plan.operations.values()]
    activation = activation_delays(
        target_switch,
        rum.confirmation_times(params.target_switch),
        technique=technique,
        xids=xids,
    )
    acked = sum(1 for op in plan.operations.values() if op.acked)
    duration = executor.duration
    technique_obj = rum.technique
    return RuleInstallResult(
        technique=technique,
        params=params,
        duration=duration,
        acknowledged_rules=acked,
        usable_rate=(acked / duration) if duration else None,
        activation=activation,
        rum_probe_rule_updates=getattr(technique_obj, "probe_rule_updates_sent", 0),
        rum_probes_injected=getattr(technique_obj, "probes_injected", 0),
    )
