"""Section 5.1 (in-text) — reliable barrier layer performance.

The barrier layer is stacked on top of the acknowledgment layer and the
controller is an unmodified, barrier-based one (it sends a barrier after
every N flow modifications and trusts the replies).  The paper reports:

* on a switch that does not reorder across barriers, the total update time
  matches the plain sequential-probing update;
* on a reordering switch, RUM must buffer the commands that follow every
  unconfirmed barrier, roughly doubling the update time relative to general
  probing — and making it several times slower when a barrier follows every
  single command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import format_table
from repro.experiments.common import EndToEndParams, EndToEndResult, run_path_migration
from repro.switches.profiles import hp5406zl_profile, reordering_switch_profile


@dataclass
class BarrierLayerResult:
    """Update durations of the compared configurations."""

    results: Dict[str, EndToEndResult]

    def durations(self) -> Dict[str, Optional[float]]:
        """Completion time (last flow on the new path) per configuration."""
        return {name: result.completion_time for name, result in self.results.items()}

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {name: result.as_dict() for name, result in self.results.items()}


def run_barrier_layer_perf(params: Optional[EndToEndParams] = None) -> BarrierLayerResult:
    """Compare the barrier layer against the bare probing techniques."""
    params = params or EndToEndParams.default()
    results: Dict[str, EndToEndResult] = {}

    # Reference: RUM-aware controller with plain probing (no barrier layer).
    results["sequential (no barrier layer)"] = run_path_migration("sequential", params)
    results["general (no barrier layer)"] = run_path_migration("general", params)

    # Well-behaved ordering: barrier layer over sequential probing, barrier
    # after every 10 modifications.
    results["barrier layer / 10 mods (in-order switch)"] = run_path_migration(
        "sequential",
        params.scaled(with_barrier_layer=True, buffer_after_barrier=False,
                      barrier_every=10,
                      hardware_profile=hp5406zl_profile()),
    )

    # Reordering switch: the layer must buffer commands after each barrier.
    results["barrier layer / 10 mods (reordering switch)"] = run_path_migration(
        "general",
        params.scaled(with_barrier_layer=True, buffer_after_barrier=True,
                      barrier_every=10,
                      hardware_profile=reordering_switch_profile()),
    )
    results["barrier layer / every mod (reordering switch)"] = run_path_migration(
        "general",
        params.scaled(with_barrier_layer=True, buffer_after_barrier=True,
                      barrier_every=1,
                      hardware_profile=reordering_switch_profile()),
    )
    return BarrierLayerResult(results=results)


def render(result: BarrierLayerResult) -> str:
    """Text rendering of the barrier-layer comparison."""
    rows = []
    for name, res in result.results.items():
        rows.append([
            name,
            f"{res.completion_time:.3f}" if res.completion_time is not None else "-",
            f"{res.update_duration:.3f}" if res.update_duration is not None else "-",
            res.dropped_packets,
        ])
    return format_table(
        ["configuration", "last flow updated [s]", "plan acknowledged [s]", "packets dropped"],
        rows,
        title="Reliable barrier layer overhead (Section 5.1)",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_barrier_layer_perf()))
