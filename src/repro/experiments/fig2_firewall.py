"""Figure 2 — the transient firewall bypass (motivation scenario).

A theoretically safe update ("X after Y, X after Z") turns into a transient
security hole when switch B acknowledges rules Y and Z before they are in its
data plane: HTTP traffic from the untrusted host reaches the server without
traversing the firewall.  With RUM's data-plane acknowledgments the ingress
rule X is only installed once Z demonstrably forwards packets, so no HTTP
packet can bypass the firewall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import format_table
from repro.controller.base import AckMode, Controller
from repro.controller.firewall import FirewallScenario
from repro.controller.update_plan import PlanExecutor
from repro.core.config import config_for_technique
from repro.core.proxy import chain_proxies
from repro.core.rum import RumLayer
from repro.net.network import Network
from repro.net.traffic import TrafficGenerator
from repro.sim.kernel import Simulator


@dataclass
class FirewallRunResult:
    """Outcome of one firewall-scenario run."""

    technique: str
    violations: Dict[str, int]
    update_duration: Optional[float]

    @property
    def bypassed_packets(self) -> int:
        """HTTP packets that reached the server without traversing the firewall."""
        return self.violations.get("http_packets_bypassing_firewall", 0)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {"technique": self.technique, "update_duration": self.update_duration,
                **self.violations}


@dataclass
class Fig2Result:
    """Both runs of the firewall scenario."""

    with_barriers: FirewallRunResult
    with_acks: FirewallRunResult

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "barriers": self.with_barriers.as_dict(),
            "rum": self.with_acks.as_dict(),
        }


def run_firewall_once(technique: str, scenario: Optional[FirewallScenario] = None,
                      duration: float = 3.0, seed: int = 31) -> FirewallRunResult:
    """Run the firewall update once with the given acknowledgment technique."""
    scenario = scenario or FirewallScenario()
    sim = Simulator()
    network = Network(sim, scenario.build_topology(), seed=seed)
    scenario.preinstall(network)
    scenario.install_fault(network)

    rum = RumLayer(sim, config_for_technique(technique))
    endpoints = chain_proxies(network, [rum])
    controller = Controller(sim, ack_mode=AckMode.RUM_CONFIRMATION)
    for name, endpoint in endpoints.items():
        controller.connect_switch(name, endpoint)

    rum.prepare()
    network.start()
    rum.start()

    flows = scenario.flows(network)
    TrafficGenerator(sim, flows).start()

    plan = scenario.build_plan(network)
    executor = PlanExecutor(sim, controller, plan, max_unconfirmed=10)
    sim.run(until=0.1)
    executor.start()
    sim.run(until=duration)

    return FirewallRunResult(
        technique=technique,
        violations=scenario.violations(network),
        update_duration=executor.duration,
    )


def run_fig2(duration: float = 3.0) -> Fig2Result:
    """Run the scenario with barrier acknowledgments and with general probing."""
    return Fig2Result(
        with_barriers=run_firewall_once("barrier", duration=duration),
        with_acks=run_firewall_once("general", duration=duration),
    )


def render(result: Fig2Result) -> str:
    """Text rendering of the firewall comparison."""
    rows = []
    for run in (result.with_barriers, result.with_acks):
        rows.append([
            run.technique,
            run.bypassed_packets,
            run.violations.get("http_packets_at_firewall", 0),
            run.violations.get("bulk_packets_delivered", 0),
            f"{run.update_duration:.3f}" if run.update_duration is not None else "-",
        ])
    return format_table(
        ["technique", "HTTP packets bypassing firewall", "HTTP packets at firewall",
         "bulk packets delivered", "update duration [s]"],
        rows,
        title="Figure 2: transient firewall bypass during the update",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_fig2()))
