"""Figure 2 — the transient firewall bypass (motivation scenario).

A theoretically safe update ("X after Y, X after Z") turns into a transient
security hole when switch B acknowledges rules Y and Z before they are in its
data plane: HTTP traffic from the untrusted host reaches the server without
traversing the firewall.  With RUM's data-plane acknowledgments the ingress
rule X is only installed once Z demonstrably forwards packets, so no HTTP
packet can bypass the firewall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import format_table
from repro.controller.firewall import FirewallScenario
from repro.session.spec import SessionKnobs, SessionSpec, Workload


@dataclass
class FirewallRunResult:
    """Outcome of one firewall-scenario run."""

    technique: str
    violations: Dict[str, int]
    update_duration: Optional[float]

    @property
    def bypassed_packets(self) -> int:
        """HTTP packets that reached the server without traversing the firewall."""
        return self.violations.get("http_packets_bypassing_firewall", 0)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {"technique": self.technique, "update_duration": self.update_duration,
                **self.violations}


@dataclass
class Fig2Result:
    """Both runs of the firewall scenario."""

    with_barriers: FirewallRunResult
    with_acks: FirewallRunResult

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "barriers": self.with_barriers.as_dict(),
            "rum": self.with_acks.as_dict(),
        }


def firewall_session(technique: str, scenario: Optional[FirewallScenario] = None,
                     duration: float = 3.0, seed: int = 31) -> SessionSpec:
    """The Figure 2 firewall update as a :class:`SessionSpec`.

    The scenario is measured over a fixed observation window — violations
    are counted at ``duration`` whether or not the plan finished — so the
    session uses :attr:`SessionKnobs.run_for` instead of completion polling.

    One deliberate behaviour change from the pre-session code: traffic start
    offsets now come from the session seed (the old code used an unseeded
    default generator), so absolute Figure 2 counts shift slightly while the
    qualitative result — barriers leak HTTP packets past the firewall,
    truthful acknowledgments leak none — is unchanged.
    """
    scenario = scenario or FirewallScenario()

    def preinstall(network, flows) -> None:
        scenario.preinstall(network)
        scenario.install_fault(network)

    return SessionSpec(
        kind="firewall-bypass",
        technique=technique,
        topology=scenario.build_topology,
        workload=Workload(
            flows=lambda network: scenario.flows(network),
            preinstall=preinstall,
        ),
        plan_builder=lambda network, flows: scenario.build_plan(network),
        metrics=lambda network, plan, executor: scenario.violations(network),
        knobs=SessionKnobs(
            seed=seed,
            warmup=0.1,
            run_for=duration - 0.1,
            grace=0.0,
            settle=0.0,
            max_unconfirmed=10,
        ),
        labels={"duration": duration},
    )


def run_firewall_once(technique: str, scenario: Optional[FirewallScenario] = None,
                      duration: float = 3.0, seed: int = 31) -> FirewallRunResult:
    """Run the firewall update once with the given acknowledgment technique."""
    record = firewall_session(technique, scenario, duration, seed).run()
    return FirewallRunResult(
        technique=technique,
        violations={key: int(value) for key, value in record.metrics.items()},
        update_duration=record.update_duration,
    )


def run_fig2(duration: float = 3.0) -> Fig2Result:
    """Run the scenario with barrier acknowledgments and with general probing."""
    return Fig2Result(
        with_barriers=run_firewall_once("barrier", duration=duration),
        with_acks=run_firewall_once("general", duration=duration),
    )


def render(result: Fig2Result) -> str:
    """Text rendering of the firewall comparison."""
    rows = []
    for run in (result.with_barriers, result.with_acks):
        rows.append([
            run.technique,
            run.bypassed_packets,
            run.violations.get("http_packets_at_firewall", 0),
            run.violations.get("bulk_packets_delivered", 0),
            f"{run.update_duration:.3f}" if run.update_duration is not None else "-",
        ])
    return format_table(
        ["technique", "HTTP packets bypassing firewall", "HTTP packets at firewall",
         "bulk packets delivered", "update duration [s]"],
        rows,
        title="Figure 2: transient firewall bypass during the update",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_fig2()))
