"""Experiment harness.

One module per figure/table of the paper's evaluation plus the motivation
scenario.  Every module exposes a ``run_*`` function returning a plain result
object (JSON-able via ``as_dict()`` where applicable) and a ``render()``
helper that prints the same rows/series the paper reports; the benchmark
suite under ``benchmarks/`` simply calls these functions.

=========================  ====================================================
Module                     Paper result
=========================  ====================================================
``fig1_broken_time``       Figure 1b — % of flows vs broken time
``fig2_firewall``          Figure 2  — transient firewall bypass (motivation)
``fig6_control_plane``     Figure 6  — flow update times, control-plane techniques
``fig7_probing``           Figure 7  — flow update times, probing techniques
``fig8_activation_delay``  Figure 8  — data-plane vs control-plane activation delay
``table1_update_rate``     Table 1   — usable update rate under sequential probing
``barrier_layer_perf``     §5.1      — reliable barrier layer overhead
``microbench``             §5.2      — PacketOut/PacketIn rates and interference
=========================  ====================================================
"""

from repro.experiments.common import (
    ControlStack,
    EndToEndParams,
    EndToEndResult,
    MigrationSpec,
    RuleInstallParams,
    RuleInstallResult,
    build_control_stack,
    migration_session,
    rule_install_session,
    run_path_migration,
    run_rule_install,
)

__all__ = [
    "ControlStack",
    "EndToEndParams",
    "EndToEndResult",
    "MigrationSpec",
    "RuleInstallParams",
    "RuleInstallResult",
    "build_control_stack",
    "migration_session",
    "rule_install_session",
    "run_path_migration",
    "run_rule_install",
]
