"""Figure 8 — delay between data-plane and control-plane activation.

For R = 300 modifications issued all at once (K = 300), the per-rule delay
between the moment a rule starts forwarding packets and the moment the
controller is told it is installed:

* barriers: negative for every rule (up to ~-300 ms) — incorrect behaviour,
* static timeout: always positive but wastes a large fraction of the bound,
* adaptive: good when the model is right, dips below zero when it is not,
* both probing techniques: never negative and tight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.activation import ActivationDelays
from repro.analysis.report import format_table
from repro.experiments.common import RuleInstallParams, RuleInstallResult, run_rule_install

#: The techniques plotted in Figure 8 with their configuration overrides.
FIG8_TECHNIQUES: List[Tuple[str, str, Dict[str, object]]] = [
    ("barriers (baseline)", "barrier", {}),
    ("timeout", "timeout", {"timeout": 0.3}),
    ("adaptive 200", "adaptive", {"assumed_rate": 200.0}),
    ("adaptive 250", "adaptive", {"assumed_rate": 250.0}),
    ("sequential", "sequential", {"probe_batch": 10}),
    ("general", "general", {}),
]


@dataclass
class Fig8Result:
    """Per-technique rule-installation results."""

    results: Dict[str, RuleInstallResult]

    def delays(self) -> Dict[str, ActivationDelays]:
        """Activation-delay objects per technique."""
        return {name: result.activation for name, result in self.results.items()
                if result.activation is not None}

    def ranked_series(self) -> Dict[str, List[Tuple[int, float]]]:
        """``(flow rank, delay)`` series per technique — the figure's axes."""
        return {name: delays.ranked() for name, delays in self.delays().items()}

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {name: result.as_dict() for name, result in self.results.items()}


def run_fig8(params: Optional[RuleInstallParams] = None) -> Fig8Result:
    """Run Figure 8 for all six techniques."""
    params = params or RuleInstallParams.paper_fig8()
    results: Dict[str, RuleInstallResult] = {}
    for label, technique, overrides in FIG8_TECHNIQUES:
        results[label] = run_rule_install(
            technique, params.scaled(rum_overrides=overrides)
        )
    return Fig8Result(results=results)


def render(result: Fig8Result) -> str:
    """Text rendering of Figure 8."""
    rows = []
    for name, delays in result.delays().items():
        if not delays.per_rule:
            rows.append([name, 0, "-", "-", "-", "-"])
            continue
        summary = delays.summary()
        rows.append([
            name,
            delays.negative_count,
            f"{summary.minimum * 1000:.0f}",
            f"{summary.median * 1000:.0f}",
            f"{summary.p90 * 1000:.0f}",
            f"{summary.maximum * 1000:.0f}",
        ])
    return format_table(
        ["technique", "rules acked early", "min delay [ms]", "median [ms]",
         "p90 [ms]", "max [ms]"],
        rows,
        title="Figure 8: control-plane ack time minus data-plane activation time",
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_fig8()))
