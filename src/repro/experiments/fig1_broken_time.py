"""Figure 1b — % of flows vs broken time during a consistent update.

The paper's headline demonstration: a consistent path migration executed
against a hardware switch drops packets for up to ~290 ms per flow when the
controller trusts OpenFlow barriers, and drops nothing when RUM's data-plane
acknowledgments are used instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.flowstats import broken_time_distribution
from repro.analysis.report import format_table
from repro.experiments.common import EndToEndParams, EndToEndResult, run_path_migration

#: Broken-time thresholds (seconds) reported for each technique, mirroring the
#: x axis of Figure 1b.
THRESHOLDS = (0.004, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3)


@dataclass
class Fig1Result:
    """Both runs of Figure 1b plus the derived distributions."""

    with_barriers: EndToEndResult
    with_acks: EndToEndResult
    thresholds: tuple = THRESHOLDS

    def distributions(self) -> Dict[str, Dict[float, float]]:
        """% of flows broken for at least each threshold, per configuration."""
        return {
            "OF barriers": broken_time_distribution(self.with_barriers.stats, self.thresholds),
            "working acks (RUM)": broken_time_distribution(self.with_acks.stats, self.thresholds),
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {
            "barriers_dropped_packets": self.with_barriers.dropped_packets,
            "acks_dropped_packets": self.with_acks.dropped_packets,
            "barriers_max_broken": max(self.with_barriers.broken_times(), default=0.0),
            "acks_max_broken": max(self.with_acks.broken_times(), default=0.0),
            "distributions": {
                name: {str(threshold): value for threshold, value in dist.items()}
                for name, dist in self.distributions().items()
            },
        }


def run_fig1(params: Optional[EndToEndParams] = None,
             ack_technique: str = "general") -> Fig1Result:
    """Run the Figure 1b experiment (barriers vs working acknowledgments)."""
    params = params or EndToEndParams.default()
    with_barriers = run_path_migration("barrier", params)
    with_acks = run_path_migration(ack_technique, params)
    return Fig1Result(with_barriers=with_barriers, with_acks=with_acks)


def render(result: Fig1Result) -> str:
    """Text rendering of Figure 1b."""
    rows: List[List[object]] = []
    distributions = result.distributions()
    for threshold in result.thresholds:
        rows.append([
            f">= {threshold * 1000:.0f} ms",
            f"{distributions['OF barriers'][threshold]:.1f}%",
            f"{distributions['working acks (RUM)'][threshold]:.1f}%",
        ])
    table = format_table(
        ["broken for at least", "% of flows (OF barriers)", "% of flows (RUM acks)"],
        rows,
        title="Figure 1b: flows broken during a consistent update",
    )
    footer = (
        f"\npackets dropped: barriers={result.with_barriers.dropped_packets}, "
        f"RUM acks={result.with_acks.dropped_packets}"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_fig1()))
