"""Figure 6 — flow update times with control-plane-only techniques.

Barriers are the fastest but drop packets; a 300 ms static timeout is safe
but slow; the adaptive model assuming 200 modifications/s stays safe while
the one assuming 250/s becomes optimistic once table occupancy slows the
switch down and starts dropping packets again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_table, render_flow_update_curves
from repro.experiments.common import EndToEndParams, EndToEndResult, run_path_migration

#: The techniques plotted in Figure 6 with their RUM configuration overrides.
FIG6_TECHNIQUES: List[Tuple[str, str, Dict[str, object]]] = [
    ("barriers (baseline)", "barrier", {}),
    ("timeout", "timeout", {"timeout": 0.3}),
    ("adaptive 200", "adaptive", {"assumed_rate": 200.0}),
    ("adaptive 250", "adaptive", {"assumed_rate": 250.0}),
]


@dataclass
class Fig6Result:
    """Per-technique end-to-end results."""

    results: Dict[str, EndToEndResult]

    def update_curves(self) -> Dict[str, List[Tuple[Optional[float], Optional[float]]]]:
        """The (last old-path, first new-path) pairs per technique — the figure's series."""
        return {name: result.update_pairs() for name, result in self.results.items()}

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {name: result.as_dict() for name, result in self.results.items()}


def run_fig6(params: Optional[EndToEndParams] = None) -> Fig6Result:
    """Run Figure 6 (all four control-plane-only configurations)."""
    params = params or EndToEndParams.default()
    results: Dict[str, EndToEndResult] = {}
    for label, technique, overrides in FIG6_TECHNIQUES:
        results[label] = run_path_migration(
            technique, params.scaled(rum_overrides=overrides)
        )
    return Fig6Result(results=results)


def render(result: Fig6Result) -> str:
    """Text rendering of Figure 6."""
    curves = render_flow_update_curves(
        result.update_curves(),
        title="Figure 6: flow update times, control-plane-only techniques",
    )
    rows = [
        [name, res.dropped_packets,
         f"{res.mean_update_time:.3f}" if res.mean_update_time is not None else "-",
         res.activation.negative_count if res.activation else "-"]
        for name, res in result.results.items()
    ]
    safety = format_table(
        ["technique", "packets dropped", "mean flow update time [s]", "rules acked early"],
        rows,
        title="Safety / performance summary",
    )
    return curves + "\n\n" + safety


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(render(run_fig6()))
