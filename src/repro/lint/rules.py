"""The lint-rule registry and the rule base class.

Mirrors the acknowledgment-technique registry
(:mod:`repro.core.techniques.registry`): a rule is a value, not a branch in
a monolithic checker.  A :class:`LintRule` subclass owns its code, its
invariant, its rationale, and its :meth:`~LintRule.check` implementation;
decorating it with :func:`register_rule` makes it active in every entry
point — the ``python -m repro.lint`` CLI, the CI JSON gate, and the
self-check test — with no further wiring.

Adding a rule is one decoration::

    from repro.lint.rules import LintRule, ModuleInfo, register_rule

    @register_rule
    class NoSpookyConstants(LintRule):
        code = "RL099"
        name = "no-spooky-constants"
        invariant = "magic numbers above 9000 are banned"

        def check(self, info):
            for node in info.walk(ast.Constant):
                ...yield self.diagnostic(info, node, "it's over 9000")...

Registration is per-process and happens at import of
:mod:`repro.lint.checks`, exactly like technique registration happens at
import of :mod:`repro.core.techniques`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lint.diagnostics import Diagnostic

_CODE_RE = re.compile(r"^RL\d{3}$")


@dataclass
class ModuleInfo:
    """One parsed module handed to every rule.

    ``module`` is the rule-facing identity: for real files it is the posix
    path relative to the ``repro`` package root (``"switches/base.py"``), so
    per-rule module allowlists match the same strings everywhere; tests
    linting synthetic sources pick any label they want.
    """

    module: str
    source: str
    tree: ast.Module
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """``node -> parent`` over the whole tree (built once, lazily)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def walk(self, *types: type) -> Iterator[ast.AST]:
        """All nodes of the given types, in document order."""
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The parent chain of ``node``, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/method definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_module(self, *prefixes: str) -> bool:
        """Whether this module matches any of the path prefixes."""
        return any(self.module == prefix or self.module.startswith(prefix)
                   for prefix in prefixes)


class LintRule:
    """Base class for lint rules; subclasses set the metadata and ``check``.

    ``allowed_modules`` is the rule's *documented* allowlist: module-path
    prefixes (relative to the ``repro`` package root) where the rule does
    not apply — e.g. wall-clock reads are the whole point of ``bench/``, so
    RL002 excludes it rather than demanding per-line suppressions.
    """

    #: Registry key, ``RL`` + three digits; subclasses must set it.
    code: str = ""
    #: Short kebab-case slug (rule catalog, README table).
    name: str = ""
    #: One-line statement of the enforced invariant.
    invariant: str = ""
    #: Why the invariant exists — which bug class it prevents.
    rationale: str = ""
    #: Module-path prefixes the rule skips entirely (documented exemptions).
    allowed_modules: Tuple[str, ...] = ()

    def applies_to(self, info: ModuleInfo) -> bool:
        """Whether the rule runs on ``info`` at all (allowlist gate)."""
        return not info.in_module(*self.allowed_modules)

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        """Yield one :class:`Diagnostic` per violation found in ``info``."""
        raise NotImplementedError

    def diagnostic(self, info: ModuleInfo, node: ast.AST,
                   message: str) -> Diagnostic:
        """A diagnostic of this rule anchored at ``node``."""
        return Diagnostic(
            module=info.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, LintRule] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: register a :class:`LintRule` subclass.

    The registry holds one (stateless) instance per rule, keyed by code, so
    ``available_rules``/``get_rule`` and the CLI all see it immediately.
    """
    if not _CODE_RE.match(cls.code or ""):
        raise ValueError(
            f"{cls.__name__}.code must look like 'RL001', not {cls.code!r}"
        )
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.code in _REGISTRY:
        raise ValueError(f"rule {cls.code} is already registered")
    _REGISTRY[cls.code] = cls()
    return cls


def unregister_rule(code: str) -> None:
    """Remove a registered rule (used by tests registering toys)."""
    _REGISTRY.pop(code, None)


def get_rule(code: str) -> LintRule:
    """Look a rule up by code."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; available: {available_rules()}"
        ) from None


def available_rules() -> List[str]:
    """All registered rule codes, sorted."""
    return sorted(_REGISTRY)


def active_rules(select: Optional[List[str]] = None) -> List[LintRule]:
    """The rule instances to run (all, or the selected codes)."""
    if select is None:
        return [_REGISTRY[code] for code in available_rules()]
    return [get_rule(code) for code in select]


def rule_catalog() -> List[Dict[str, str]]:
    """Metadata rows for ``--list-rules`` and the README table."""
    return [
        {
            "code": rule.code,
            "name": rule.name,
            "invariant": rule.invariant,
            "rationale": rule.rationale,
        }
        for rule in active_rules()
    ]
