"""Reproducibility linter and determinism sanitizer.

Static pass (``python -m repro.lint``): AST rules RL001-RL007 enforcing the
repo's determinism and zero-cost-observability invariants, with a rule
registry mirroring the technique registry and a justified-suppression
policy (``# repro: noqa(RL###): <why>``).

Runtime pass (``python -m repro.lint --sanitize <scenario>``): double-run
event-stream diffing that names the first divergent simulator event, plus
a wall-clock tripwire and a cross-process ``PYTHONHASHSEED`` probe.
"""

from repro.lint.diagnostics import (
    ENGINE_CODE,
    Diagnostic,
    count_by_code,
    diagnostics_payload,
    render_diagnostics,
)
from repro.lint.engine import (
    Suppression,
    default_target,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.lint.rules import (
    LintRule,
    ModuleInfo,
    active_rules,
    available_rules,
    get_rule,
    register_rule,
    rule_catalog,
    unregister_rule,
)
from repro.lint.sanitizer import (
    CHAOS_HOOKS,
    Divergence,
    RecordedRun,
    SanitizeReport,
    WallClockLeakError,
    first_divergence,
    record_session,
    sanitize_scenario,
    sanitize_spec,
    wall_clock_tripwire,
)

__all__ = [
    "ENGINE_CODE",
    "Diagnostic",
    "count_by_code",
    "diagnostics_payload",
    "render_diagnostics",
    "Suppression",
    "default_target",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "LintRule",
    "ModuleInfo",
    "active_rules",
    "available_rules",
    "get_rule",
    "register_rule",
    "rule_catalog",
    "unregister_rule",
    "CHAOS_HOOKS",
    "Divergence",
    "RecordedRun",
    "SanitizeReport",
    "WallClockLeakError",
    "first_divergence",
    "record_session",
    "sanitize_scenario",
    "sanitize_spec",
    "wall_clock_tripwire",
]
