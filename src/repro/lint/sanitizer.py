"""The runtime determinism sanitizer.

The static rules catch the *patterns* that break reproducibility; this
module catches the breakage itself — and, unlike the after-the-fact digest
pins, it names the culprit.  A sanitized run executes a
:class:`~repro.session.spec.SessionSpec` with the kernel's event tap
(:func:`repro.sim.kernel.install_observer`) recording every dispatched
callback as ``(time, callback-name, payload)``.  Running the same spec
twice under the same seed must produce identical streams; on divergence the
report shows the **first divergent simulator event** — simulated time,
callback, payload, side by side — instead of just "digests differ".

Two extra probes close the gaps a same-process double run cannot see:

* the **wall-clock tripwire** patches ``time.time``/``perf_counter``/
  ``monotonic`` (and their ``_ns`` forms) for the duration of the run, so
  any wall-clock read inside the simulation fails loudly at its call site;
* the **hashseed probe** replays the run in two subprocesses pinned to
  different ``PYTHONHASHSEED`` values and diffs their streams — the only
  way to surface hash-derived values (the PR 2 ``SeededRandom.fork`` bug
  class), which are perfectly stable *within* one interpreter.

Event payloads are described structurally (type names, ``.name``
attributes) rather than via ``repr`` — default reprs embed addresses and
OpenFlow xids come from a process-global counter, either of which would
make every honest double run "diverge".
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.kernel import install_observer, uninstall_observer

#: One recorded kernel event: (sim time, callback name, payload description).
EventTuple = Tuple[float, str, str]

#: Distinct interpreter hash seeds used by the subprocess probe.
HASHSEED_PROBE_SEEDS = (101, 202)

#: Hard cap on recorded events per run — a sanitizer run is a small smoke
#: scenario; hitting the cap means the spec is too big for stream diffing.
MAX_RECORDED_EVENTS = 2_000_000


class WallClockLeakError(RuntimeError):
    """A wall-clock read happened inside a sanitized simulation run."""


# -- event description --------------------------------------------------------

def _callback_name(callback: Callable) -> str:
    """A process-stable name for a kernel callback."""
    owner = getattr(callback, "__self__", None)
    plain = getattr(callback, "__name__", type(callback).__name__)
    if owner is None:
        return getattr(callback, "__qualname__", plain)
    label = f"{type(owner).__name__}.{plain}"
    owner_name = getattr(owner, "name", None)
    if isinstance(owner_name, str) and owner_name:
        label = f"{label}@{owner_name}"
    return label


def _describe(value: object, depth: int = 0) -> str:
    """A process-stable, xid-free description of one callback argument."""
    if value is None or isinstance(value, (bool, int)):
        return repr(value)
    if isinstance(value, float):
        return format(value, ".9g")
    if isinstance(value, str):
        return repr(value[:48])
    if isinstance(value, (tuple, list)) and depth < 2:
        inner = ", ".join(_describe(item, depth + 1) for item in value[:4])
        suffix = ", ..." if len(value) > 4 else ""
        return f"[{inner}{suffix}]"
    name = getattr(value, "name", None)
    if isinstance(name, str) and name:
        return f"{type(value).__name__}({name})"
    return type(value).__name__


def _describe_args(args: tuple) -> str:
    return ", ".join(_describe(arg) for arg in args)


# -- wall-clock tripwire ------------------------------------------------------

_TRIPWIRE_NAMES = ("time", "time_ns", "monotonic", "monotonic_ns",
                   "perf_counter", "perf_counter_ns")


class wall_clock_tripwire:
    """Context manager: any ``time.*`` clock read raises inside the block."""

    def __init__(self) -> None:
        self._saved: Dict[str, Callable] = {}

    def __enter__(self) -> "wall_clock_tripwire":
        def _make_trap(name: str) -> Callable:
            def _trap(*_args, **_kwargs):
                raise WallClockLeakError(
                    f"time.{name}() was called inside a sanitized simulation "
                    "run; simulation code must read Simulator.now (wall "
                    "clocks differ run to run, so any dependence on them is "
                    "a determinism bug)"
                )
            return _trap

        for name in _TRIPWIRE_NAMES:
            self._saved[name] = getattr(time, name)
            setattr(time, name, _make_trap(name))
        return self

    def __exit__(self, *exc_info) -> None:
        for name, original in self._saved.items():
            setattr(time, name, original)


# -- chaos hooks (self-tests and demos) ---------------------------------------

class _ChaosPatch:
    """Reversibly re-introduce a known determinism bug (self-test hook)."""

    def __init__(self, apply: Callable[[], Callable[[], None]]) -> None:
        self._apply = apply
        self._undo: Optional[Callable[[], None]] = None

    def __enter__(self) -> "_ChaosPatch":
        self._undo = self._apply()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._undo is not None:
            self._undo()


def _chaos_hash_fork() -> Callable[[], None]:
    """The literal PR 2 bug: fork child seeds from PYTHONHASHSEED-randomized
    ``hash()`` instead of crc32.  Stable within a process — only the
    hashseed probe can see it."""
    from repro.sim.rng import SeededRandom

    original = SeededRandom.fork

    def _buggy_fork(self, label):
        child_seed = abs(hash(f"{self.seed}:{label}")) % (2 ** 31) or 1  # repro: noqa(RL001): deliberate reintroduction of the PR 2 hash-fork bug so self-tests prove the hashseed probe catches it
        return SeededRandom(child_seed)

    SeededRandom.fork = _buggy_fork
    return lambda: setattr(SeededRandom, "fork", original)


#: Fork counter for the ``fork-drift`` hook.  Module-level on purpose: the
#: drift must survive patch re-installation between the sanitizer's two
#: in-process runs, exactly like real leaked-global-state bugs do.
_FORK_DRIFT_STATE = {"count": 0}


def _chaos_fork_drift() -> Callable[[], None]:
    """Seeded-looking nondeterminism *within* a process: child seeds drift
    with a process-global fork counter, so the second run of the same spec
    diverges from the first."""
    from repro.sim.rng import SeededRandom

    original = SeededRandom.fork

    def _drifting_fork(self, label):
        _FORK_DRIFT_STATE["count"] += 1
        child_seed = (zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
                      + _FORK_DRIFT_STATE["count"]) % (2 ** 31) or 1
        return SeededRandom(child_seed)

    SeededRandom.fork = _drifting_fork
    return lambda: setattr(SeededRandom, "fork", original)


#: Named determinism-bug injections, used by the self-tests (and the README
#: demo) to prove the sanitizer actually catches the bug classes it claims.
CHAOS_HOOKS: Dict[str, Callable[[], Callable[[], None]]] = {
    "hash-fork": _chaos_hash_fork,
    "fork-drift": _chaos_fork_drift,
}


# -- recording ----------------------------------------------------------------

@dataclass
class RecordedRun:
    """One run's digest plus its recorded kernel event stream."""

    digest: str
    events: List[EventTuple]
    summary: Dict[str, object] = field(default_factory=dict)


def _reset_process_counters() -> None:
    """Rewind the process-global id counters to their fresh-process state.

    Xids, flow-entry ids and operation ids come from module-level
    ``itertools.count(1)`` counters: deterministic *per process*, but a
    second in-process run starts where the first left off.  Resetting them
    makes consecutive recorded runs byte-comparable — exactly what two
    fresh processes would produce — without touching any digest-bearing
    state.
    """
    import itertools

    from repro.controller import update_plan
    from repro.openflow import flowtable, messages
    from repro.switches import controlplane

    messages._xid_counter = itertools.count(1)
    flowtable._entry_ids = itertools.count(1)
    controlplane._op_ids = itertools.count(1)
    update_plan._operation_ids = itertools.count(1)


def record_session(spec, tripwire: bool = True,
                   chaos: Optional[str] = None) -> RecordedRun:
    """Run ``spec`` once with the kernel event tap armed."""
    _reset_process_counters()
    events: List[EventTuple] = []
    append = events.append

    def _observer(ts: float, callback: Callable, args: tuple) -> None:
        if len(events) >= MAX_RECORDED_EVENTS:
            raise RuntimeError(
                f"sanitized run exceeded {MAX_RECORDED_EVENTS} events; "
                "sanitize a smaller scenario (fewer flows, shorter window)"
            )
        append((ts, _callback_name(callback), _describe_args(args)))

    patches = []
    if chaos is not None:
        patches.append(_ChaosPatch(CHAOS_HOOKS[chaos]))
    if tripwire:
        patches.append(wall_clock_tripwire())
    install_observer(_observer)
    try:
        for patch in patches:
            patch.__enter__()
        try:
            record = spec.run()
        finally:
            for patch in reversed(patches):
                patch.__exit__(None, None, None)
    finally:
        uninstall_observer()
    return RecordedRun(digest=record.digest(), events=events,
                       summary={"completed": record.completed,
                                "plan_size": record.plan_size})


# -- diffing ------------------------------------------------------------------

@dataclass
class Divergence:
    """The first point two recorded event streams disagree."""

    index: int
    left: Optional[EventTuple]
    right: Optional[EventTuple]

    def render(self, left_label: str = "run 1",
               right_label: str = "run 2") -> str:
        def _side(label: str, event: Optional[EventTuple]) -> str:
            if event is None:
                return f"  {label}: <stream ended>"
            ts, name, detail = event
            payload = f" [{detail}]" if detail else ""
            return f"  {label}: t={ts:.9f} {name}{payload}"

        return "\n".join([
            f"first divergent simulator event at index {self.index}:",
            _side(left_label, self.left),
            _side(right_label, self.right),
        ])


def first_divergence(left: List[EventTuple],
                     right: List[EventTuple]) -> Optional[Divergence]:
    """The first index where two event streams differ, or ``None``."""
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return Divergence(index=index, left=a, right=b)
    if len(left) != len(right):
        index = min(len(left), len(right))
        return Divergence(
            index=index,
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None,
        )
    return None


# -- the sanitizer ------------------------------------------------------------

@dataclass
class SanitizeReport:
    """Outcome of a sanitizer pass over one scenario/spec."""

    scenario: str
    technique: str
    seed: int
    digests: List[str] = field(default_factory=list)
    event_counts: List[int] = field(default_factory=list)
    divergence: Optional[Divergence] = None
    wall_clock_leak: Optional[str] = None
    hashseed_digests: List[str] = field(default_factory=list)
    hashseed_divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        return (self.divergence is None and self.wall_clock_leak is None
                and self.hashseed_divergence is None)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scenario": self.scenario,
            "technique": self.technique,
            "seed": self.seed,
            "ok": self.ok,
            "digests": list(self.digests),
            "event_counts": list(self.event_counts),
        }
        if self.divergence is not None:
            payload["divergence"] = self.divergence.render()
        if self.wall_clock_leak is not None:
            payload["wall_clock_leak"] = self.wall_clock_leak
        if self.hashseed_digests:
            payload["hashseed_digests"] = list(self.hashseed_digests)
        if self.hashseed_divergence is not None:
            payload["hashseed_divergence"] = self.hashseed_divergence.render(
                f"PYTHONHASHSEED={HASHSEED_PROBE_SEEDS[0]}",
                f"PYTHONHASHSEED={HASHSEED_PROBE_SEEDS[1]}")
        return payload

    def render(self) -> str:
        lines = [
            f"sanitize {self.scenario} × {self.technique} (seed {self.seed})",
            f"  in-process runs: {len(self.digests)}, "
            f"digests: {', '.join(self.digests) or '-'}, "
            f"events: {', '.join(str(c) for c in self.event_counts) or '-'}",
        ]
        if self.wall_clock_leak is not None:
            lines.append(f"  WALL-CLOCK LEAK: {self.wall_clock_leak}")
        if self.divergence is not None:
            lines.append("  " + self.divergence.render().replace("\n", "\n  "))
        if self.hashseed_digests:
            lines.append(
                f"  hashseed probe (PYTHONHASHSEED="
                f"{HASHSEED_PROBE_SEEDS[0]}/{HASHSEED_PROBE_SEEDS[1]}): "
                f"digests {', '.join(self.hashseed_digests)}")
        if self.hashseed_divergence is not None:
            lines.append("  " + self.hashseed_divergence.render(
                f"PYTHONHASHSEED={HASHSEED_PROBE_SEEDS[0]}",
                f"PYTHONHASHSEED={HASHSEED_PROBE_SEEDS[1]}",
            ).replace("\n", "\n  "))
        lines.append("  verdict: " + ("deterministic ✓" if self.ok
                                      else "NOT deterministic ✗"))
        return "\n".join(lines)


def sanitize_spec(spec_builder: Callable[[], object], *, scenario: str = "",
                  technique: str = "", seed: int = 0, runs: int = 2,
                  chaos: Optional[str] = None,
                  tripwire: bool = True) -> SanitizeReport:
    """Run a spec ``runs`` times in-process and diff the event streams.

    ``spec_builder`` is called once per run so chaos patches that corrupt
    spec construction are exercised too.  The hashseed probe is a separate,
    scenario-level concern — see :func:`sanitize_scenario`.
    """
    report = SanitizeReport(scenario=scenario, technique=technique, seed=seed)
    baseline: Optional[RecordedRun] = None
    for _ in range(max(2, runs)):
        try:
            recorded = record_session(spec_builder(), tripwire=tripwire,
                                      chaos=chaos)
        except WallClockLeakError as leak:
            report.wall_clock_leak = str(leak)
            return report
        report.digests.append(recorded.digest)
        report.event_counts.append(len(recorded.events))
        if baseline is None:
            baseline = recorded
            continue
        divergence = first_divergence(baseline.events, recorded.events)
        if divergence is not None:
            report.divergence = divergence
            return report
    return report


# -- hashseed probe (subprocess) ----------------------------------------------

def _worker_payload(scenario: str, technique: str, params,
                    chaos: Optional[str]) -> Dict[str, object]:
    from dataclasses import asdict

    return {
        "scenario": scenario,
        "technique": technique,
        "params": asdict(params),
        "chaos": chaos,
    }


def run_sanitize_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Body of ``python -m repro.lint --sanitize-worker`` (JSON in/out)."""
    from repro.scenarios.base import ScenarioParams
    from repro.scenarios.engine import scenario_session

    params = ScenarioParams(**payload["params"])
    spec = scenario_session(payload["scenario"], payload["technique"], params)
    recorded = record_session(spec, tripwire=True,
                              chaos=payload.get("chaos"))
    return {
        "digest": recorded.digest,
        "events": [list(event) for event in recorded.events],
    }


def _spawn_worker(payload: Dict[str, object], hashseed: int) -> RecordedRun:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    src_root = str(default_src_root())
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else os.pathsep.join([src_root, existing]))
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--sanitize-worker"],
        input=json.dumps(payload), capture_output=True, text=True, env=env,
        timeout=600,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"sanitize worker (PYTHONHASHSEED={hashseed}) failed:\n"
            f"{result.stderr.strip()}"
        )
    parsed = json.loads(result.stdout)
    return RecordedRun(
        digest=parsed["digest"],
        events=[tuple(event) for event in parsed["events"]],
    )


def default_src_root() -> str:
    """The directory containing the ``repro`` package (worker PYTHONPATH)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def sanitize_scenario(scenario: str, technique: str = "general",
                      params=None, *, runs: int = 2,
                      hashseed_probe: bool = True,
                      chaos: Optional[str] = None) -> SanitizeReport:
    """Sanitize one registered scenario end to end.

    In-process double run (+ wall-clock tripwire) first; then, unless
    disabled, the two-subprocess ``PYTHONHASHSEED`` probe.  Any divergence
    short-circuits: the report carries the first divergent event of the
    probe that caught it.
    """
    from repro.scenarios.base import ScenarioParams
    from repro.scenarios.engine import scenario_session

    params = params or ScenarioParams(flow_count=2, max_update_duration=5.0)
    report = sanitize_spec(
        lambda: scenario_session(scenario, technique, params),
        scenario=scenario, technique=technique, seed=params.seed,
        runs=runs, chaos=chaos,
    )
    if not report.ok or not hashseed_probe:
        return report
    payload = _worker_payload(scenario, technique, params, chaos)
    left = _spawn_worker(payload, HASHSEED_PROBE_SEEDS[0])
    right = _spawn_worker(payload, HASHSEED_PROBE_SEEDS[1])
    report.hashseed_digests = [left.digest, right.digest]
    report.hashseed_divergence = first_divergence(left.events, right.events)
    return report
