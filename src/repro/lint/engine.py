"""The lint engine: walking, parsing, suppressions, and the public API.

Suppression policy
------------------
A diagnostic is silenced by an inline comment **on the flagged line**::

    self.datapath_id = abs(hash(name))  # repro: noqa(RL001): frozen wire capture replayed byte-for-byte

The justification after the second colon is *required*: an unjustified
``noqa`` does not suppress anything and is itself reported as
:data:`~repro.lint.diagnostics.ENGINE_CODE` (RL000), as are blanket
(code-less) suppressions and malformed codes.  RL000 can never be
suppressed — the gate on reviewer-visible justifications is the point.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Importing the checks module is what registers the built-in rules.
import repro.lint.checks  # noqa: F401  (imported for registration side effect)
from repro.lint.diagnostics import ENGINE_CODE, Diagnostic
from repro.lint.rules import LintRule, ModuleInfo, active_rules

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*\(([^)]*)\)\s*(?::\s*(?P<why>.*\S))?\s*$"
)
_BLANKET_RE = re.compile(r"#\s*repro:\s*noqa\b(?!\s*\()")
_CODE_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa(...)`` comment."""

    line: int
    codes: Tuple[str, ...]
    justification: Optional[str]


def parse_suppressions(source: str,
                       module: str) -> Tuple[Dict[int, Suppression],
                                             List[Diagnostic]]:
    """All suppression comments in ``source`` plus their policy violations."""
    suppressions: Dict[int, Suppression] = {}
    problems: List[Diagnostic] = []

    def _problem(line: int, col: int, message: str) -> None:
        problems.append(Diagnostic(module=module, line=line, col=col,
                                   code=ENGINE_CODE, message=message))

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return {}, problems  # the AST parse reports the real syntax error
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        line, col = token.start
        match = _NOQA_RE.search(comment)
        if match is None:
            if _BLANKET_RE.search(comment):
                _problem(line, col,
                         "blanket 'repro: noqa' is not allowed; name the "
                         "codes: # repro: noqa(RL###): <justification>")
            continue
        codes = tuple(part.strip() for part in match.group(1).split(",")
                      if part.strip())
        justification = match.group("why")
        bad = [code for code in codes if not _CODE_RE.match(code)]
        if not codes or bad:
            _problem(line, col,
                     f"malformed suppression codes {bad or ['<empty>']}; "
                     "expected RL### (e.g. repro: noqa(RL001): <why>)")
            continue
        if ENGINE_CODE in codes:
            _problem(line, col,
                     f"{ENGINE_CODE} is the suppression-policy code itself "
                     "and cannot be suppressed")
            continue
        if not justification:
            _problem(line, col,
                     f"suppression of {', '.join(codes)} has no "
                     "justification; write # repro: noqa("
                     f"{', '.join(codes)}): <why this is safe>")
            continue
        suppressions[line] = Suppression(line=line, codes=codes,
                                         justification=justification)
    return suppressions, problems


def lint_source(source: str, module: str = "<string>",
                rules: Optional[Sequence[LintRule]] = None) -> List[Diagnostic]:
    """Lint one source text under the label ``module``; returns diagnostics.

    The returned list is sorted and already has justified suppressions
    applied; RL000 policy problems are included.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Diagnostic(module=module, line=error.lineno or 1,
                           col=error.offset or 0, code=ENGINE_CODE,
                           message=f"syntax error: {error.msg}")]
    info = ModuleInfo(module=module, source=source, tree=tree)
    suppressions, diagnostics = parse_suppressions(source, module)
    for rule in (active_rules() if rules is None else rules):
        if not rule.applies_to(info):
            continue
        for diag in rule.check(info):
            suppression = suppressions.get(diag.line)
            if suppression is not None and diag.code in suppression.codes:
                continue
            diagnostics.append(diag)
    return sorted(diagnostics)


def _module_label(path: Path) -> str:
    """The rule-facing module label of ``path``.

    For files under a directory named ``repro`` the label is the posix path
    relative to that package root (``"switches/base.py"``), so the per-rule
    allowlists match regardless of where the tree is checked out.
    """
    resolved = path.resolve()
    for parent in resolved.parents:
        if parent.name == "repro":
            return resolved.relative_to(parent).as_posix()
    return resolved.name


def lint_file(path: Path, module: Optional[str] = None,
              rules: Optional[Sequence[LintRule]] = None) -> List[Diagnostic]:
    """Lint one file (module label derived from its path unless given)."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, module=module or _module_label(Path(path)),
                       rules=rules)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: List[Path] = []
    for entry in (Path(path) for path in paths):
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    return files


def lint_paths(paths: Iterable[Path],
               rules: Optional[Sequence[LintRule]] = None) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``paths``; returns sorted diagnostics."""
    diagnostics: List[Diagnostic] = []
    for file_path in iter_python_files(paths):
        diagnostics.extend(lint_file(file_path, rules=rules))
    return sorted(diagnostics)


def default_target() -> Path:
    """The installed ``repro`` package directory — the default lint target."""
    return Path(__file__).resolve().parents[1]
