"""Diagnostics: what a lint rule reports and how it is rendered.

One :class:`Diagnostic` is one violation at one source location.  The text
form (``module:line:col: CODE message``) is what ``python -m repro.lint``
prints and what the golden strings in ``tests/unit/test_lint.py`` pin; the
dict form feeds the ``--format json`` CI mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

#: Engine-level diagnostic code (parse errors, malformed or unjustified
#: suppressions) — not a registered rule, never suppressible.
ENGINE_CODE = "RL000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    #: Module label, e.g. ``"switches/base.py"`` (posix path relative to the
    #: ``repro`` package root for real files; arbitrary for lint_source).
    module: str
    line: int
    col: int
    #: Rule code (``RL001``...) or :data:`ENGINE_CODE`.
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.module}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``--format json`` CI artifact)."""
        return {
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def render_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """All diagnostics, sorted by location, one per line."""
    return "\n".join(diag.render() for diag in sorted(diagnostics))


def count_by_code(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """``code -> count`` over ``diagnostics`` (JSON report summary)."""
    counts: Dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return dict(sorted(counts.items()))


def diagnostics_payload(diagnostics: List[Diagnostic],
                        targets: List[str]) -> Dict[str, object]:
    """The ``--format json`` report body."""
    ordered = sorted(diagnostics)
    return {
        "targets": targets,
        "count": len(ordered),
        "counts": count_by_code(ordered),
        "diagnostics": [diag.as_dict() for diag in ordered],
    }
