"""``python -m repro.lint`` — the CLI for the static pass and the sanitizer.

Exit codes: 0 clean, 1 findings/divergence, 2 usage or engine failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.diagnostics import diagnostics_payload, render_diagnostics
from repro.lint.engine import default_target, iter_python_files, lint_paths
from repro.lint.rules import active_rules, rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Reproducibility linter + determinism sanitizer for the "
                    "repro package.",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic output format (json is the CI mode)")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the report to this file")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all registered rules)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--sanitize", metavar="SCENARIO", default=None,
                        help="run the determinism sanitizer on a registered "
                             "scenario instead of linting")
    parser.add_argument("--technique", default="general",
                        help="acknowledgment technique for --sanitize")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed for --sanitize")
    parser.add_argument("--flows", type=int, default=2,
                        help="flow count for --sanitize (keep it small)")
    parser.add_argument("--runs", type=int, default=2,
                        help="in-process repetitions for --sanitize")
    parser.add_argument("--chaos", default=None,
                        help="inject a named determinism bug (self-test); "
                             "see repro.lint.sanitizer.CHAOS_HOOKS")
    parser.add_argument("--no-hashseed-probe", action="store_true",
                        help="skip the two-subprocess PYTHONHASHSEED probe")
    parser.add_argument("--sanitize-worker", action="store_true",
                        help=argparse.SUPPRESS)
    return parser


def _emit(text: str, out: Optional[Path]) -> None:
    print(text)
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")


def _run_lint(args: argparse.Namespace) -> int:
    select = (None if args.select is None
              else [code.strip() for code in args.select.split(",")
                    if code.strip()])
    try:
        rules = active_rules(select)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    paths = args.paths or [default_target()]
    targets = [str(path) for path in paths]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    diagnostics = lint_paths(paths, rules=rules)
    if args.format == "json":
        payload = diagnostics_payload(diagnostics, targets)
        payload["rules"] = [rule.code for rule in rules]
        payload["files"] = len(iter_python_files(paths))
        _emit(json.dumps(payload, indent=2, sort_keys=True), args.out)
    else:
        body = render_diagnostics(diagnostics)
        summary = (f"{len(diagnostics)} finding(s) in {len(targets)} "
                   f"target(s)" if diagnostics
                   else f"clean: {len(iter_python_files(paths))} file(s), "
                        f"{len(rules)} rule(s)")
        _emit((body + "\n" + summary) if body else summary, args.out)
    return 1 if diagnostics else 0


def _run_list_rules(args: argparse.Namespace) -> int:
    catalog = rule_catalog()
    if args.format == "json":
        _emit(json.dumps(catalog, indent=2), args.out)
        return 0
    lines = []
    for row in catalog:
        lines.append(f"{row['code']}  {row['name']}")
        lines.append(f"       invariant: {row['invariant']}")
        if row["rationale"]:
            lines.append(f"       rationale: {row['rationale']}")
    _emit("\n".join(lines), args.out)
    return 0


def _run_sanitize(args: argparse.Namespace) -> int:
    from repro.lint.sanitizer import CHAOS_HOOKS, sanitize_scenario
    from repro.scenarios.base import ScenarioParams

    if args.chaos is not None and args.chaos not in CHAOS_HOOKS:
        print(f"error: unknown chaos hook {args.chaos!r}; "
              f"available: {sorted(CHAOS_HOOKS)}", file=sys.stderr)
        return 2
    params = ScenarioParams(flow_count=args.flows, seed=args.seed,
                            max_update_duration=5.0)
    try:
        report = sanitize_scenario(
            args.sanitize, args.technique, params, runs=args.runs,
            hashseed_probe=not args.no_hashseed_probe, chaos=args.chaos,
        )
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit(json.dumps(report.as_dict(), indent=2, sort_keys=True),
              args.out)
    else:
        _emit(report.render(), args.out)
    return 0 if report.ok else 1


def _run_sanitize_worker() -> int:
    from repro.lint.sanitizer import run_sanitize_worker

    payload = json.loads(sys.stdin.read())
    print(json.dumps(run_sanitize_worker(payload)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.sanitize_worker:
        return _run_sanitize_worker()
    if args.list_rules:
        return _run_list_rules(args)
    if args.sanitize is not None:
        return _run_sanitize(args)
    return _run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
