"""The built-in lint rules: the repo's determinism + zero-cost invariants.

Each rule targets a bug class this repository has actually shipped (or is
one refactor away from shipping):

* RL001 — the PR 2 ``SeededRandom.fork`` bug: ``hash()`` on strings is
  PYTHONHASHSEED-randomized, so hash-derived values silently vary per
  process.
* RL002 — wall-clock/ambient entropy in simulation paths breaks the
  byte-identical-digests contract every result pin relies on.
* RL003 — set iteration order follows the randomized string hash; anything
  it feeds (scheduling, serialization, digests) varies run to run.
* RL004 — the PR 5 zero-allocation tracing contract: emission sites must
  null-guard on ``active`` or disarmed runs pay for observability.
* RL005 — the only-when-armed serialization rule PRs 4–7 each re-derived:
  a disarmed subsystem's field must be key-omitted, not ``None``/"off",
  or every pre-subsystem digest pin breaks.
* RL006 — hot-path classes without ``__slots__`` cost dict allocations in
  the kernel loop the PR 2 rewrite paid to remove.
* RL007 — technique/fault/scenario classes that do not self-register are
  dead code every sweep silently skips.
* RL008 — the PR 9 profiler rides the RL004 null-object contract: phase /
  sample emission must hide behind ``if pr.active:`` or every unprofiled
  run pays on the hot path the profiler exists to measure.
* RL009 — the run-store closure of RL005: a key a serializer writes only
  conditionally must appear in the module's ``DIGEST_EXCLUDED_KEYS``
  declaration, or stored digests diverge between armed and disarmed runs
  of the same outcome and ``repro.store verify`` flags healthy objects.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import LintRule, ModuleInfo, register_rule


def _name_of(node: ast.AST) -> Optional[str]:
    """The identifier a ``Name`` or dotted ``Attribute`` ends in."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register_rule
class HashDerivedValues(LintRule):
    """RL001: no ``hash()``/``id()``-derived values."""

    code = "RL001"
    name = "hash-derived-value"
    invariant = ("no hash()/id()-derived values outside __hash__ "
                 "implementations")
    rationale = ("hash() on strings is PYTHONHASHSEED-randomized and id() is "
                 "an address: both vary per process, so seeds/ids derived "
                 "from them silently break run-to-run reproducibility (the "
                 "PR 2 SeededRandom.fork bug). Use zlib.crc32 or explicit "
                 "counters.")

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        for node in info.walk(ast.Call):
            func = node.func
            if not (isinstance(func, ast.Name) and func.id in ("hash", "id")):
                continue
            enclosing = info.enclosing_function(node)
            if enclosing is not None and enclosing.name == "__hash__":
                # In-process dict/set hashing is what __hash__ is *for*; the
                # hazard is persisting or seeding from the value.
                continue
            yield self.diagnostic(
                info, node,
                f"{func.id}() yields process-dependent values "
                "(PYTHONHASHSEED / object addresses); derive stable values "
                "via zlib.crc32(...) or an explicit counter",
            )


#: Wall-clock / entropy call sites banned outside the benchmark harness.
_AMBIENT_ATTR_CALLS: Dict[str, Set[str]] = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "localtime", "gmtime", "strftime", "ctime"},
    "os": {"urandom", "getrandom"},
    "datetime": {"now", "utcnow", "today"},
}
#: Modules where *every* attribute call is ambient entropy.
_AMBIENT_MODULES = ("uuid", "secrets")
#: The one sanctioned use of the stdlib ``random`` module: constructing an
#: explicitly seeded generator (``random.Random(seed)``), which is what
#: :class:`repro.sim.rng.SeededRandom` and the topology generators do.
_RANDOM_ALLOWED = {"Random"}


@register_rule
class AmbientEntropy(LintRule):
    """RL002: no wall-clock or ambient entropy in simulation paths."""

    code = "RL002"
    name = "ambient-entropy"
    invariant = ("no wall-clock/ambient entropy (time.*, datetime.now, "
                 "random.*, os.urandom, uuid, secrets) in simulation paths")
    rationale = ("results must be a pure function of the seed: stochastic "
                 "behaviour routes through SeededRandom, time through "
                 "Simulator.now. The modules that measure wall time by "
                 "design are allowlisted: the bench harness, the "
                 "sim-profiler (attribution only — nothing it reads feeds "
                 "back into simulation state) and the campaign heartbeat "
                 "writer every other campaign module routes clock reads "
                 "through.")
    allowed_modules = ("bench/", "obs/profiler.py", "campaign/heartbeat.py")

    def _flag(self, info: ModuleInfo, node: ast.AST,
              what: str) -> Diagnostic:
        return self.diagnostic(
            info, node,
            f"{what} is ambient (non-seeded) input; route randomness "
            "through SeededRandom and time through Simulator.now",
        )

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        for node in info.walk(ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = _name_of(func.value)
            if owner is None:
                continue
            if owner == "random" and func.attr not in _RANDOM_ALLOWED:
                yield self._flag(info, node, f"random.{func.attr}()")
            elif owner in _AMBIENT_MODULES:
                yield self._flag(info, node, f"{owner}.{func.attr}()")
            elif func.attr in _AMBIENT_ATTR_CALLS.get(owner, ()):
                yield self._flag(info, node, f"{owner}.{func.attr}()")
        # Importing the banned callables unqualified would dodge the call
        # check above, so flag the import itself.
        for node in info.walk(ast.ImportFrom):
            module = (node.module or "").split(".")[0]
            banned: Set[str] = set()
            if module in _AMBIENT_MODULES:
                banned = {alias.name for alias in node.names}
            elif module == "random":
                banned = {alias.name for alias in node.names
                          if alias.name not in _RANDOM_ALLOWED}
            elif module in _AMBIENT_ATTR_CALLS:
                banned = {alias.name for alias in node.names
                          if alias.name in _AMBIENT_ATTR_CALLS[module]}
            if banned:
                names = ", ".join(sorted(banned))
                yield self._flag(info, node, f"from {module} import {names}")


_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` syntactically produces an (unordered) set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and _is_set_expr(node.func.value)):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register_rule
class UnorderedIteration(LintRule):
    """RL003: no iteration over bare sets without an explicit sort."""

    code = "RL003"
    name = "unordered-iteration"
    invariant = ("iteration over set expressions must go through "
                 "sorted(...) before feeding schedules, serializers or "
                 "digests")
    rationale = ("set iteration order follows the per-process randomized "
                 "string hash, so loop bodies run — and emit events, build "
                 "dicts, serialize keys — in a different order every "
                 "process (the Match.intersection field-order hazard).")

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        message = ("iterating a set is unordered across processes; wrap the "
                   "expression in sorted(...)")
        for node in info.walk(ast.For):
            if _is_set_expr(node.iter):
                yield self.diagnostic(info, node.iter, message)
        for node in info.walk(ast.ListComp, ast.SetComp, ast.DictComp,
                              ast.GeneratorExp):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    yield self.diagnostic(info, generator.iter, message)
        for node in info.walk(ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "enumerate")
                    and node.args and _is_set_expr(node.args[0])):
                yield self.diagnostic(
                    info, node.args[0],
                    f"{node.func.id}() over a set captures an unordered "
                    "snapshot; wrap the set in sorted(...)",
                )


#: The emission methods of the tracer protocol (``NullTracer``'s no-ops).
_EMIT_METHODS = {"rule", "fault", "count", "gauge", "observe"}


@register_rule
class UnguardedTraceEmission(LintRule):
    """RL004: trace emission must sit behind the ``if tr.active:`` guard.

    The matching machinery is parameterized through the ``_emit_*`` class
    attributes so RL008 can apply the identical null-object contract to the
    profiler protocol by subclassing.
    """

    code = "RL004"
    name = "unguarded-trace-emission"
    invariant = ("trace-emission sites bind tr = TRACER and guard every "
                 "emit call with `if tr.active:`")
    rationale = ("the PR 5 zero-allocation contract: with the NullTracer "
                 "installed an instrumentation site is one attribute load "
                 "and one false branch. Unguarded emits build event/detail "
                 "arguments on every disarmed run — cost (and potential "
                 "behaviour skew) where there must be none.")
    allowed_modules = ("obs/",)

    #: The emission methods of the guarded protocol.
    _emit_methods = _EMIT_METHODS
    #: The module-level null-object global emission must not touch directly.
    _emit_global = "TRACER"
    #: The conventional local binding shown in the fix hint.
    _emit_bind = "tr"
    #: How the out-of-guard diagnostic names an emission.
    _emit_noun = "trace emission"

    @classmethod
    def _is_emitter_ref(cls, node: ast.AST) -> bool:
        return _name_of(node) == cls._emit_global

    def _bound_names(self, info: ModuleInfo) -> Dict[Tuple[ast.AST, str], bool]:
        """``(scope, name) -> True`` for locals assigned from the global."""
        bindings: Dict[Tuple[ast.AST, str], bool] = {}
        for node in info.walk(ast.Assign):
            if not self._is_emitter_ref(node.value):
                continue
            scope = info.enclosing_function(node) or info.tree
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[(scope, target.id)] = True
        return bindings

    def _is_guarded(self, info: ModuleInfo, node: ast.AST, name: str) -> bool:
        for ancestor in info.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if not isinstance(ancestor, ast.If):
                continue
            for part in ast.walk(ancestor.test):
                if (isinstance(part, ast.Attribute) and part.attr == "active"
                        and isinstance(part.value, ast.Name)
                        and part.value.id == name):
                    return True
        return False

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        bindings = self._bound_names(info)
        for node in info.walk(ast.Call):
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in self._emit_methods):
                continue
            if self._is_emitter_ref(func.value):
                yield self.diagnostic(
                    info, node,
                    f"emit directly on {self._emit_global}; bind "
                    f"`{self._emit_bind} = {self._emit_global}` once and "
                    f"guard `if {self._emit_bind}.active: "
                    f"{self._emit_bind}.{func.attr}(...)`",
                )
                continue
            if not isinstance(func.value, ast.Name):
                continue
            name = func.value.id
            scope = info.enclosing_function(node) or info.tree
            if not bindings.get((scope, name)):
                continue
            if not self._is_guarded(info, node, name):
                yield self.diagnostic(
                    info, node,
                    f"{self._emit_noun} {name}.{func.attr}(...) is outside "
                    f"an `if {name}.active:` guard (zero-allocation "
                    "contract)",
                )


#: The emission methods of the profiler protocol (``NullProfiler``'s no-ops).
_PROFILER_EMIT_METHODS = {"phase", "sample"}


@register_rule
class UnguardedProfilerEmission(UnguardedTraceEmission):
    """RL008: profiler emission must sit behind the ``if pr.active:`` guard."""

    code = "RL008"
    name = "unguarded-profiler-emission"
    invariant = ("profiler-emission sites bind pr = PROFILER and guard "
                 "every emit call with `if pr.active:`")
    rationale = ("the profiler rides the same null-object contract as the "
                 "tracer: with the NullProfiler installed a phase/sample "
                 "site is one attribute load and one false branch. "
                 "Unguarded emits build label/value arguments on every "
                 "unprofiled run — cost on the exact hot path the profiler "
                 "exists to measure.")
    allowed_modules = ("obs/",)

    _emit_methods = _PROFILER_EMIT_METHODS
    _emit_global = "PROFILER"
    _emit_bind = "pr"
    _emit_noun = "profiler emission"


#: Function names treated as canonical serializers.
_SERIALIZER_NAMES = {"as_dict", "to_dict", "config", "as_config",
                     "serialize", "summary"}


def _is_disabled_constant(node: ast.AST) -> bool:
    """``None``, ``"off"``/``"none"``/``""`` or an empty container literal."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True
        return (isinstance(node.value, str)
                and node.value.lower() in ("off", "none", ""))
    if isinstance(node, ast.Dict):
        return not node.keys
    if isinstance(node, (ast.List, ast.Tuple)):
        return not node.elts
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("dict", "list", "tuple")
            and not node.args and not node.keywords):
        return True
    return False


@register_rule
class AlwaysOnSerialization(LintRule):
    """RL005: disarmed optional fields must be key-omitted, not serialized."""

    code = "RL005"
    name = "always-on-serialization"
    invariant = ("serializers omit optional keys when the subsystem is "
                 "disarmed instead of writing None/'off'/empty values")
    rationale = ("digest stability across subsystem PRs depends on disarmed "
                 "runs producing byte-identical payloads to code that "
                 "predates the subsystem; a `...if armed else None` entry "
                 "bakes the off-state into every digest (the rule PRs 4-7 "
                 "each re-implemented by hand).")

    #: Function names treated as serializers (RL009 reuses the same scope).
    _serializer_names = _SERIALIZER_NAMES

    def _flag_value(self, info: ModuleInfo,
                    value: ast.AST) -> Iterator[Diagnostic]:
        if not isinstance(value, ast.IfExp):
            return
        if (_is_disabled_constant(value.body)
                or _is_disabled_constant(value.orelse)):
            yield self.diagnostic(
                info, value,
                "optional field serialized in its disabled state; omit the "
                "key when disarmed (`if armed: payload[key] = ...`) so "
                "disarmed payloads match pre-subsystem digests",
            )

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        for func in info.walk(ast.FunctionDef):
            if func.name not in self._serializer_names:
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Dict):
                    for value in node.values:
                        if value is not None:
                            yield from self._flag_value(info, value)
                elif isinstance(node, ast.Assign):
                    if any(isinstance(target, ast.Subscript)
                           for target in node.targets):
                        yield from self._flag_value(info, node.value)


#: The module-level declaration RL009 keys on: a literal tuple/list of the
#: serializer keys that are excluded from outcome digests.
_DIGEST_DECLARATION = "DIGEST_EXCLUDED_KEYS"


@register_rule
class UndeclaredConditionalKey(AlwaysOnSerialization):
    """RL009: conditionally-serialized keys must be digest-excluded.

    Scoped to modules that declare a module-level ``DIGEST_EXCLUDED_KEYS``
    literal (today: :mod:`repro.session.record`).  Within those modules,
    any serializer that writes ``payload["key"] = ...`` under an ``if``
    must list ``"key"`` in the declaration — RL005 forces the key-omitted
    idiom, and this rule closes the loop by forcing the omitted key into
    the digest-exclusion set the run store's ``verify`` recomputes against.
    """

    code = "RL009"
    name = "undeclared-conditional-key"
    invariant = ("every key a serializer assigns conditionally appears in "
                 "the module's DIGEST_EXCLUDED_KEYS declaration")
    rationale = ("the run store re-derives digests from stored payloads via "
                 "outcome_digest(), which strips DIGEST_EXCLUDED_KEYS; a "
                 "conditionally-serialized field missing from the tuple "
                 "makes armed and disarmed runs of identical outcomes hash "
                 "differently, so `verify` flags healthy objects and the "
                 "campaign cache refuses valid hits.")

    def _declared_keys(self, info: ModuleInfo) -> Optional[Set[str]]:
        """The module's literal declaration, or ``None`` when out of scope."""
        for node in info.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(target, ast.Name)
                       and target.id == _DIGEST_DECLARATION
                       for target in node.targets):
                continue
            if not isinstance(node.value, (ast.Tuple, ast.List)):
                return None
            keys: Set[str] = set()
            for element in node.value.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    return None  # non-literal declaration: out of scope
                keys.add(element.value)
            return keys
        return None

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        declared = self._declared_keys(info)
        if declared is None:
            return
        for func in info.walk(ast.FunctionDef):
            if func.name not in self._serializer_names:
                continue
            # Nested ifs walk inner statements twice; dedupe by position.
            seen: Set[Tuple[int, int]] = set()
            for branch in ast.walk(func):
                if not isinstance(branch, ast.If):
                    continue
                for node in ast.walk(branch):
                    if not isinstance(node, ast.Assign):
                        continue
                    position = (node.lineno, node.col_offset)
                    if position in seen:
                        continue
                    seen.add(position)
                    for target in node.targets:
                        if not (isinstance(target, ast.Subscript)
                                and isinstance(target.slice, ast.Constant)
                                and isinstance(target.slice.value, str)):
                            continue
                        key = target.slice.value
                        if key in declared:
                            continue
                        yield self.diagnostic(
                            info, node,
                            f'conditionally-serialized key "{key}" is '
                            f"missing from {_DIGEST_DECLARATION}; add it so "
                            "outcome_digest() strips it and stored digests "
                            "stay stable whether the subsystem is armed",
                        )


#: Hot-path modules (relative to the repro package root) where per-instance
#: dicts are measurable: the kernel loop, packets, links, flow tables.
_HOT_MODULES = ("sim/", "packet/", "net/link.py", "openflow/flowtable.py")
#: Base-class names whose subclasses carry no instance dict worth slotting.
_SLOTS_EXEMPT_BASES = {"Exception", "BaseException", "Protocol", "Enum",
                       "IntEnum", "Flag", "IntFlag", "NamedTuple"}


def _has_dataclass_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _name_of(target) == "dataclass":
            return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in statement.targets):
                return True
        if (isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id == "__slots__"):
            return True
    return False


@register_rule
class MissingSlots(LintRule):
    """RL006: hot-path classes must declare ``__slots__``."""

    code = "RL006"
    name = "missing-slots"
    invariant = ("classes in hot-path modules (sim/, packet/, net/link.py, "
                 "openflow/flowtable.py) declare __slots__")
    rationale = ("the kernel dispatches millions of events through these "
                 "objects; a per-instance __dict__ costs allocation and "
                 "cache misses the PR 2 fast-path rewrite paid to remove. "
                 "Exceptions, Protocols, Enums and dataclasses are exempt.")

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        if not info.in_module(*_HOT_MODULES):
            return
        for node in info.walk(ast.ClassDef):
            if _declares_slots(node) or _has_dataclass_decorator(node):
                continue
            base_names = [_name_of(base) for base in node.bases]
            if any(name in _SLOTS_EXEMPT_BASES for name in base_names if name):
                continue
            if any(name and (name.endswith("Error")
                             or name.endswith("Exception")
                             or name.endswith("Warning"))
                   for name in base_names):
                continue
            yield self.diagnostic(
                info, node,
                f"class {node.name} lives in a hot-path module but declares "
                "no __slots__ (per-instance dicts in the kernel loop)",
            )


#: Base-name patterns -> the registering decorators their subclasses need.
_REGISTRABLE: Tuple[Tuple[Tuple[str, ...], str, Tuple[str, ...]], ...] = (
    (("AckTechnique",), "Technique", ("register_technique_class",)),
    (("FaultModel",), "Fault", ("register_fault",)),
    (("Scenario",), "", ("register", "register_scenario")),
    (("LintRule",), "", ("register_rule",)),
)


@register_rule
class UnregisteredSubclass(LintRule):
    """RL007: registrable subclasses must self-register via their decorator."""

    code = "RL007"
    name = "unregistered-subclass"
    invariant = ("technique/fault/scenario/lint-rule subclasses carry their "
                 "registering decorator")
    rationale = ("the registries are the only path sessions, campaigns and "
                 "the lint CLI discover implementations through; an "
                 "undecorated subclass is dead code every sweep silently "
                 "skips. Abstract intermediate bases live in the exempted "
                 "base modules or carry a justified suppression.")
    #: The modules that define the base classes / abstract layers themselves.
    allowed_modules = ("core/techniques/base.py", "faults/base.py",
                       "scenarios/base.py", "lint/rules.py")

    @staticmethod
    def _required_decorators(base_names: List[str]) -> Optional[Tuple[str, ...]]:
        for exact, suffix, decorators in _REGISTRABLE:
            for name in base_names:
                if name in exact or (suffix and name.endswith(suffix)
                                     and name not in ("RegisteredTechnique",
                                                      "RegisteredFault")):
                    return decorators
        return None

    def check(self, info: ModuleInfo) -> Iterator[Diagnostic]:
        for node in info.walk(ast.ClassDef):
            base_names = [name for name in (_name_of(b) for b in node.bases)
                          if name]
            required = self._required_decorators(base_names)
            if required is None:
                continue
            decorators = set()
            for decorator in node.decorator_list:
                target = (decorator.func if isinstance(decorator, ast.Call)
                          else decorator)
                name = _name_of(target)
                if name:
                    decorators.add(name)
            if decorators.intersection(required):
                continue
            expected = " / @".join(required)
            yield self.diagnostic(
                info, node,
                f"class {node.name} subclasses {'/'.join(base_names)} but "
                f"never self-registers; decorate it with @{expected}",
            )
