"""The reliable barrier layer (Section 2, "Providing reliable barriers").

A proxy stacked *above* the acknowledgment layer that restores the barrier
semantics unmodified controllers expect:

* when the controller sends a BarrierRequest, the layer remembers every
  FlowMod the controller sent before it that is still unconfirmed;
* the switch's BarrierReply is intercepted and withheld until all of those
  FlowMods have been confirmed by the acknowledgment layer below (the layer
  learns about confirmations by watching RUM's fine-grained acknowledgments
  travel upstream through it);
* optionally (for switches that reorder modifications across barriers) every
  command the controller sends after an unconfirmed barrier is buffered and
  only released to the switch once that barrier has been resolved, which
  restores ordering at the cost of serialising the update.

Because the layer speaks only standard OpenFlow to the controller it is fully
transparent; RUM-aware controllers simply never send barriers and use the
fine-grained acknowledgments directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from repro.core.proxy import ProxyLayer
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    ErrorMessage,
    FlowMod,
    OFMessage,
)
from repro.sim.kernel import Simulator


@dataclass
class _PendingBarrier:
    """A controller barrier whose reply is being withheld."""

    request_xid: int
    #: FlowMod xids that must be confirmed before the reply may be released.
    waiting_for: Set[int]
    #: Whether the switch's own reply has already arrived.
    reply_received: bool = False
    received_at: float = 0.0
    released: bool = False


class ReliableBarrierLayer(ProxyLayer):
    """Makes BarrierReply trustworthy for unmodified controllers."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "barrier-layer",
        latency: float = 0.0002,
        buffer_after_barrier: bool = False,
        forward_confirmations: bool = True,
    ) -> None:
        super().__init__(sim, name=name, latency=latency)
        #: Buffer commands sent after an unconfirmed barrier (needed for
        #: switches that reorder modifications across barriers).
        self.buffer_after_barrier = buffer_after_barrier
        #: Whether RUM's fine-grained confirmations should still be passed to
        #: the controller (RUM-aware) or filtered out (fully transparent).
        self.forward_confirmations = forward_confirmations

        self._unconfirmed_flowmods: Dict[str, Set[int]] = {}
        self._barriers: Dict[str, List[_PendingBarrier]] = {}
        self._buffered: Dict[str, Deque[OFMessage]] = {}
        self._released_barriers: List[_PendingBarrier] = []
        #: Measurement: barrier xid -> (request seen, reply released).
        self.barrier_log: Dict[int, tuple] = {}
        self.barriers_held = 0
        self.messages_buffered = 0

    # -- wiring ----------------------------------------------------------------
    def attach_switch(self, switch_name: str, downstream) -> None:
        super().attach_switch(switch_name, downstream)
        self._unconfirmed_flowmods[switch_name] = set()
        self._barriers[switch_name] = []
        self._buffered[switch_name] = deque()

    # -- controller -> switch -------------------------------------------------------
    def handle_from_controller(self, switch_name: str, message: OFMessage) -> None:
        if self.buffer_after_barrier and self._has_unresolved_barrier(switch_name):
            self.messages_buffered += 1
            self._buffered[switch_name].append(message)
            return
        self._forward_controller_message(switch_name, message)

    def _forward_controller_message(self, switch_name: str, message: OFMessage) -> None:
        if isinstance(message, FlowMod):
            self._unconfirmed_flowmods[switch_name].add(message.xid)
            self.forward_to_switch(switch_name, message)
            return
        if isinstance(message, BarrierRequest):
            barrier = _PendingBarrier(
                request_xid=message.xid,
                waiting_for=set(self._unconfirmed_flowmods[switch_name]),
            )
            self._barriers[switch_name].append(barrier)
            self.barriers_held += 1
            self.barrier_log[message.xid] = (self.sim.now, None)
            self.forward_to_switch(switch_name, message)
            # A barrier with nothing outstanding may already be releasable
            # once its reply arrives; nothing more to do here.
            return
        self.forward_to_switch(switch_name, message)

    def _has_unresolved_barrier(self, switch_name: str) -> bool:
        return any(not barrier.released for barrier in self._barriers[switch_name])

    # -- switch -> controller ----------------------------------------------------------
    def handle_from_switch(self, switch_name: str, message: OFMessage) -> None:
        if isinstance(message, ErrorMessage) and message.is_rum_confirmation:
            self._on_confirmation(switch_name, message.data)
            if self.forward_confirmations:
                self.forward_to_controller(switch_name, message)
            return
        if isinstance(message, BarrierReply):
            barrier = self._find_barrier(switch_name, message.xid)
            if barrier is not None:
                barrier.reply_received = True
                barrier.received_at = self.sim.now
                self._try_release(switch_name)
                return
        self.forward_to_controller(switch_name, message)

    def _find_barrier(self, switch_name: str, xid: int) -> Optional[_PendingBarrier]:
        for barrier in self._barriers[switch_name]:
            if barrier.request_xid == xid and not barrier.released:
                return barrier
        return None

    def _on_confirmation(self, switch_name: str, flowmod_xid: int) -> None:
        self._unconfirmed_flowmods[switch_name].discard(flowmod_xid)
        for barrier in self._barriers[switch_name]:
            barrier.waiting_for.discard(flowmod_xid)
        self._try_release(switch_name)

    def _try_release(self, switch_name: str) -> None:
        """Release (in order) every leading barrier that is fully resolved."""
        barriers = self._barriers[switch_name]
        while barriers:
            barrier = barriers[0]
            if barrier.released:
                barriers.pop(0)
                continue
            if barrier.waiting_for or not barrier.reply_received:
                break
            barrier.released = True
            request_seen, _ = self.barrier_log.get(barrier.request_xid, (None, None))
            self.barrier_log[barrier.request_xid] = (request_seen, self.sim.now)
            self.forward_to_controller(switch_name, BarrierReply(xid=barrier.request_xid))
            self._released_barriers.append(barrier)
            barriers.pop(0)
        if not self._has_unresolved_barrier(switch_name):
            self._drain_buffer(switch_name)

    def _drain_buffer(self, switch_name: str) -> None:
        buffered = self._buffered[switch_name]
        while buffered:
            # Forwarding a buffered BarrierRequest may create a new unresolved
            # barrier, which stops the drain again — exactly the serialising
            # behaviour (and cost) the paper reports for reordering switches.
            message = buffered.popleft()
            self._forward_controller_message(switch_name, message)
            if self.buffer_after_barrier and self._has_unresolved_barrier(switch_name):
                break

    # -- measurement ---------------------------------------------------------------------
    def held_barrier_delays(self) -> List[float]:
        """For released barriers: how long the reply was withheld beyond the
        switch's own reply."""
        delays = []
        for barrier in self._released_barriers:
            if barrier.received_at:
                _seen, released = self.barrier_log.get(barrier.request_xid, (None, None))
                if released is not None:
                    delays.append(released - barrier.received_at)
        return delays
