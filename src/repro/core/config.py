"""Configuration of the RUM layer."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.packet.fields import FIELD_REGISTRY, HeaderField


#: Names of the built-in RUM acknowledgment techniques.  The authoritative
#: list — including any techniques registered at runtime — lives in the
#: registry (:func:`repro.core.techniques.registry.available_techniques`);
#: these constants are kept for the public API and existing call sites.
TECHNIQUE_BARRIER = "barrier"
TECHNIQUE_TIMEOUT = "timeout"
TECHNIQUE_ADAPTIVE = "adaptive"
TECHNIQUE_SEQUENTIAL = "sequential"
TECHNIQUE_GENERAL = "general"

ALL_TECHNIQUES = (
    TECHNIQUE_BARRIER,
    TECHNIQUE_TIMEOUT,
    TECHNIQUE_ADAPTIVE,
    TECHNIQUE_SEQUENTIAL,
    TECHNIQUE_GENERAL,
)


def _known_rum_techniques():
    """Registered RUM-capable technique names (import deferred: the registry
    package imports this module for type information)."""
    import repro.core.techniques  # noqa: F401 - ensure builtins are registered
    from repro.core.techniques.registry import rum_technique_names

    return rum_technique_names()


@dataclass
class RumConfig:
    """All tunables of the RUM acknowledgment layer.

    The defaults follow the prototype description (Section 4) and the
    parameters used in the evaluation (Section 5): ToS-based probing, probe
    rule updated after every 10 real modifications, probing of up to the 30
    oldest unconfirmed modifications every 10 ms, a 300 ms static timeout and
    adaptive models assuming 200 or 250 modifications per second.
    """

    #: Which acknowledgment technique to run (one of :data:`ALL_TECHNIQUES`).
    technique: str = TECHNIQUE_GENERAL

    # -- control-plane techniques -------------------------------------------
    #: Static timeout added after a barrier reply before confirming.
    timeout: float = 0.3
    #: Assumed switch modification rate of the adaptive technique (rules/s).
    assumed_rate: float = 250.0
    #: Safety margin added to every adaptive estimate (seconds).
    adaptive_margin: float = 0.0
    #: The adaptive model's estimate of the switch's control-to-data plane
    #: pipeline latency: the first modification of a burst is predicted to be
    #: active this long after it is issued.  Part of the "detailed switch
    #: performance model" the paper says the technique needs.
    adaptive_base_delay: float = 0.05
    #: How many FlowMods share one RUM-generated barrier (baseline/timeout).
    barrier_batch: int = 1

    # -- probing techniques ------------------------------------------------------
    #: Sequential probing: update the probe rule after this many real
    #: modifications (the paper uses 10 in the end-to-end experiment).
    probe_batch: int = 10
    #: Period of the probe injection loop.
    probe_interval: float = 0.01
    #: General probing: probe at most this many oldest unconfirmed
    #: modifications per round (the paper uses 30).
    probe_window: int = 30
    #: Reserved header field H used by general probing (ToS in the prototype).
    probe_field: HeaderField = HeaderField.IP_TOS
    #: Reserved header field H1 used by sequential probing.
    sequential_h1_field: HeaderField = HeaderField.VLAN_ID
    #: Reserved header field H2 (version) used by sequential probing.
    sequential_h2_field: HeaderField = HeaderField.IP_TOS
    #: Reserved H1 values marking pre- and post-probe packets.
    preprobe_value: int = 4000
    postprobe_value: int = 4001
    #: Assign network-wide unique probe-catch values instead of colouring
    #: (ablation of the colouring optimisation).
    unique_switch_values: bool = False

    # -- behaviour -------------------------------------------------------------------
    #: Emit RUM's fine-grained positive acknowledgments upstream (repurposed
    #: error messages).  RUM-aware controllers rely on these; for fully
    #: transparent deployments they can be turned off and only the reliable
    #: barrier layer is used.
    emit_confirmations: bool = True
    #: Latency of the proxy hop RUM adds between controller and switch.
    proxy_latency: float = 0.0002
    #: Fall back to the static timeout for rules general probing cannot probe.
    fallback_timeout: float = 0.3

    def validated(self) -> "RumConfig":
        """Return self after sanity-checking the parameters."""
        known = _known_rum_techniques()
        if self.technique not in known:
            raise ValueError(
                f"unknown technique {self.technique!r}; expected one of {tuple(known)}"
            )
        if self.timeout < 0 or self.fallback_timeout < 0:
            raise ValueError("timeouts must be non-negative")
        if self.assumed_rate <= 0:
            raise ValueError("assumed_rate must be positive")
        if self.probe_batch < 1 or self.probe_window < 1 or self.barrier_batch < 1:
            raise ValueError("batch/window sizes must be >= 1")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        h1 = FIELD_REGISTRY[self.sequential_h1_field]
        for value in (self.preprobe_value, self.postprobe_value):
            h1.validate(value)
        if self.preprobe_value == self.postprobe_value:
            raise ValueError("preprobe and postprobe values must differ")
        return self

    def with_overrides(self, **kwargs) -> "RumConfig":
        """A copy with selected fields replaced (and re-validated)."""
        return replace(self, **kwargs).validated()


def config_for_technique(technique: str, **overrides) -> RumConfig:
    """A validated config for the named technique.

    The technique's own :attr:`RegisteredTechnique.config_defaults` are
    applied first, then ``overrides`` — so e.g. ``adaptive`` always assumes
    250 modifications/s unless the caller says otherwise, no matter which
    entry point (session, scenario engine, campaign) built the config.
    """
    import repro.core.techniques  # noqa: F401 - ensure builtins are registered
    from repro.core.techniques.registry import get_technique

    try:
        entry = get_technique(technique)
    except KeyError:
        # An unknown name still fails RumConfig validation with the
        # historical ValueError (not KeyError) contract.
        return RumConfig(technique=technique, **overrides).validated()
    config = entry.rum_config(**overrides)
    if config is None:
        raise ValueError(
            f"technique {technique!r} does not use a RUM layer and has no config"
        )
    return config
