"""First-class registry of acknowledgment techniques.

Historically a technique was a bare string that every layer interpreted on
its own: ``config_for_technique`` mapped it to a :class:`RumConfig`,
``create_technique`` mapped it to an implementation class, the experiment
engines special-cased ``"no-wait"`` with ``technique != NO_WAIT`` checks,
and per-technique configuration defaults (the adaptive model's
``assumed_rate``) leaked into the experiment harness.  The registry makes a
technique a value: a :class:`RegisteredTechnique` owns its implementation
class, its configuration defaults, and its wiring behaviour (does it use a
RUM proxy?  does its executor ignore plan dependencies?).

``no-wait`` — the consistency-free lower bound of Figure 7 — is registered
like any other technique.  It simply has no RUM implementation: call sites
ask :attr:`RegisteredTechnique.uses_rum` instead of comparing names.

Adding a technique is one registration::

    from repro.core.techniques.base import AckTechnique
    from repro.core.techniques.registry import register_technique_class

    @register_technique_class
    class MyTechnique(AckTechnique):
        name = "mine"
        config_defaults = {"timeout": 0.05}

and every session, scenario, and campaign path picks it up by name.

Registration is per-process: the built-in techniques self-register when this
package is imported, but a technique registered at runtime exists only in
the registering process.  Parallel campaign workers
(:class:`~repro.campaign.runner.CampaignRunner`) therefore only see
techniques whose registration runs at import time of a module the worker
also imports — put custom techniques in an importable module (or run cells
in-process with :func:`~repro.campaign.runner.run_cell`) rather than
registering them inline in a script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Type, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RumConfig
    from repro.core.techniques.base import AckTechnique

#: Name of the registered null technique (issue everything at once, wait for
#: nothing): the lower bound of Figure 7.
TECHNIQUE_NO_WAIT = "no-wait"


@dataclass(frozen=True)
class RegisteredTechnique:
    """One acknowledgment technique as a first-class value.

    ``implementation`` is the :class:`AckTechnique` subclass hosted by a RUM
    layer, or ``None`` for null techniques (``no-wait``) that run without a
    RUM proxy chain at all.
    """

    name: str
    implementation: Optional[Type["AckTechnique"]] = None
    description: str = ""
    #: Per-technique :class:`RumConfig` field defaults, applied under any
    #: caller overrides (this is where adaptive's ``assumed_rate`` lives).
    config_defaults: Mapping[str, object] = field(default_factory=dict)

    @property
    def uses_rum(self) -> bool:
        """Whether runs with this technique interpose a RUM proxy chain."""
        return self.implementation is not None

    @property
    def ignore_dependencies(self) -> bool:
        """Whether plan executors should ignore dependencies (no-wait mode)."""
        return not self.uses_rum

    def rum_config(self, **overrides) -> Optional["RumConfig"]:
        """A validated config (defaults + ``overrides``); ``None`` if no RUM."""
        if not self.uses_rum:
            return None
        from repro.core.config import RumConfig

        merged = {**self.config_defaults, **overrides}
        return RumConfig(technique=self.name, **merged).validated()

    def instantiate(self, layer) -> "AckTechnique":
        """Create the technique instance hosted by ``layer``."""
        if self.implementation is None:
            raise ValueError(
                f"technique {self.name!r} is a null technique and has no RUM "
                "implementation"
            )
        return self.implementation(layer)


_REGISTRY: Dict[str, RegisteredTechnique] = {}


def register_technique(
    name: str,
    implementation: Optional[Type["AckTechnique"]] = None,
    *,
    description: str = "",
    config_defaults: Optional[Mapping[str, object]] = None,
) -> RegisteredTechnique:
    """Register a technique under ``name`` and return the registry entry."""
    if not name:
        raise ValueError("technique name must be non-empty")
    if name in _REGISTRY:
        raise ValueError(f"technique {name!r} is already registered")
    entry = RegisteredTechnique(
        name=name,
        implementation=implementation,
        description=description,
        config_defaults=dict(config_defaults or {}),
    )
    _REGISTRY[name] = entry
    return entry


def register_technique_class(cls: Type["AckTechnique"]) -> Type["AckTechnique"]:
    """Class decorator: register an :class:`AckTechnique` subclass.

    Uses the class's ``name``, first docstring line, and optional
    ``config_defaults`` class attribute, so a new technique is defined and
    registered entirely inside its own module under ``core/techniques/``.
    """
    doc_lines = (cls.__doc__ or "").strip().splitlines()
    description = doc_lines[0] if doc_lines else ""
    register_technique(
        cls.name,
        cls,
        description=description,
        config_defaults=getattr(cls, "config_defaults", {}),
    )
    return cls


def unregister_technique(name: str) -> None:
    """Remove a registered technique (used by tests registering toys)."""
    _REGISTRY.pop(name, None)


def get_technique(name: str) -> RegisteredTechnique:
    """Look a technique up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown technique {name!r}; available: {available_techniques()}"
        ) from None


def resolve_technique(
    technique: Union[str, RegisteredTechnique]
) -> RegisteredTechnique:
    """Accept either a registry name or an already-resolved entry.

    Unknown names raise ``ValueError`` — the historical contract of the run
    entry points (``get_technique`` itself keeps dict-like ``KeyError``
    semantics for direct lookups).
    """
    if isinstance(technique, RegisteredTechnique):
        return technique
    try:
        return get_technique(technique)
    except KeyError as error:
        raise ValueError(str(error).strip('"')) from None


def available_techniques() -> List[str]:
    """All registered technique names, sorted."""
    return sorted(_REGISTRY)


def rum_technique_names() -> List[str]:
    """Names of techniques that run on a RUM layer (valid ``RumConfig`` values)."""
    return sorted(name for name, entry in _REGISTRY.items() if entry.uses_rum)


#: The registered null technique: all modifications issued at once, plan
#: dependencies ignored, no RUM proxy, no acknowledgment wait.
NO_WAIT_TECHNIQUE = register_technique(
    TECHNIQUE_NO_WAIT,
    None,
    description="issue everything at once; no consistency, no waiting "
                "(Figure 7 lower bound)",
)
