"""RUM acknowledgment techniques (Section 3 of the paper).

Each technique implements the same small interface
(:class:`~repro.core.techniques.base.AckTechnique`): it is notified whenever
the RUM layer forwards a controller FlowMod, it may intercept messages coming
back from the switch, and it decides *when* each modification is confirmed
towards the controller.

======================  =============================================================
Technique               When a modification is confirmed
======================  =============================================================
``barrier``             when the switch's barrier reply arrives (baseline — unsafe on
                        buggy switches)
``timeout``             a fixed delay after the barrier reply
``adaptive``            at a time estimated from a switch performance model and the
                        command issue rate
``sequential``          when a versioned probe rule installed after the batch is seen
                        forwarding probe packets in the data plane
``general``             when a per-rule probe packet is seen taking the path the rule
                        prescribes
======================  =============================================================
"""

from repro.core.techniques.base import AckTechnique, create_technique
from repro.core.techniques.barrier_baseline import BarrierBaselineTechnique
from repro.core.techniques.static_timeout import StaticTimeoutTechnique
from repro.core.techniques.adaptive import AdaptiveTimeoutTechnique
from repro.core.techniques.sequential import SequentialProbingTechnique
from repro.core.techniques.general import GeneralProbingTechnique

__all__ = [
    "AckTechnique",
    "AdaptiveTimeoutTechnique",
    "BarrierBaselineTechnique",
    "GeneralProbingTechnique",
    "SequentialProbingTechnique",
    "StaticTimeoutTechnique",
    "create_technique",
]
