"""RUM acknowledgment techniques (Section 3 of the paper).

Each technique implements the same small interface
(:class:`~repro.core.techniques.base.AckTechnique`): it is notified whenever
the RUM layer forwards a controller FlowMod, it may intercept messages coming
back from the switch, and it decides *when* each modification is confirmed
towards the controller.

======================  =============================================================
Technique               When a modification is confirmed
======================  =============================================================
``barrier``             when the switch's barrier reply arrives (baseline — unsafe on
                        buggy switches)
``timeout``             a fixed delay after the barrier reply
``adaptive``            at a time estimated from a switch performance model and the
                        command issue rate
``sequential``          when a versioned probe rule installed after the batch is seen
                        forwarding probe packets in the data plane
``general``             when a per-rule probe packet is seen taking the path the rule
                        prescribes
``no-wait``             immediately (null technique: no RUM proxy, no consistency —
                        the Figure 7 lower bound)
======================  =============================================================

Techniques are first-class registry entries
(:mod:`repro.core.techniques.registry`): each module registers its class
with :func:`register_technique_class`, and the registry entry owns the
technique's configuration defaults and wiring behaviour.  Experiment
sessions, scenarios, and campaigns all resolve techniques by name through
the registry, so adding one is a single registration in this package.
"""

from repro.core.techniques.base import AckTechnique, create_technique
from repro.core.techniques.registry import (
    NO_WAIT_TECHNIQUE,
    TECHNIQUE_NO_WAIT,
    RegisteredTechnique,
    available_techniques,
    get_technique,
    register_technique,
    register_technique_class,
    resolve_technique,
    rum_technique_names,
    unregister_technique,
)
from repro.core.techniques.barrier_baseline import BarrierBaselineTechnique
from repro.core.techniques.static_timeout import StaticTimeoutTechnique
from repro.core.techniques.adaptive import AdaptiveTimeoutTechnique
from repro.core.techniques.sequential import SequentialProbingTechnique
from repro.core.techniques.general import GeneralProbingTechnique

__all__ = [
    "AckTechnique",
    "AdaptiveTimeoutTechnique",
    "BarrierBaselineTechnique",
    "GeneralProbingTechnique",
    "NO_WAIT_TECHNIQUE",
    "RegisteredTechnique",
    "SequentialProbingTechnique",
    "StaticTimeoutTechnique",
    "TECHNIQUE_NO_WAIT",
    "available_techniques",
    "create_technique",
    "get_technique",
    "register_technique",
    "register_technique_class",
    "resolve_technique",
    "rum_technique_names",
    "unregister_technique",
]
