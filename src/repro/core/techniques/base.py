"""Common interface of the acknowledgment techniques."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.pending import PendingRule
from repro.openflow.messages import OFMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rum import RumLayer


class AckTechnique:
    """Base class of all acknowledgment techniques.

    A technique never talks to switches or to the controller directly: it
    uses the hosting :class:`~repro.core.rum.RumLayer` to send RUM-originated
    messages towards switches and to confirm pending modifications (which is
    what ultimately emits the fine-grained acknowledgment upstream).
    """

    #: Name used in configuration and reports.
    name = "base"

    def __init__(self, layer: "RumLayer") -> None:
        self.layer = layer
        self.sim = layer.sim
        self.config = layer.config

    # -- lifecycle -----------------------------------------------------------
    def prepare(self) -> None:
        """Deployment-time setup (e.g. installing probe-catch rules).

        Called once, after the layer is attached to the network and before
        any experiment traffic or updates run.
        """

    def start(self) -> None:
        """Start periodic background processes (probing loops, timers)."""

    # -- notifications ------------------------------------------------------------
    def on_flowmod_forwarded(self, switch_name: str, record: PendingRule) -> None:
        """A controller FlowMod was just forwarded to ``switch_name``."""

    def on_switch_message(self, switch_name: str, message: OFMessage) -> bool:
        """A message arrived from ``switch_name``.

        Return ``True`` to consume the message (it will not be forwarded to
        the controller), ``False`` to let the layer handle it normally.
        """
        return False

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return self.name


def create_technique(name: str, layer: "RumLayer") -> AckTechnique:
    """Instantiate the technique called ``name`` on ``layer``."""
    from repro.core import config as config_module
    from repro.core.techniques.adaptive import AdaptiveTimeoutTechnique
    from repro.core.techniques.barrier_baseline import BarrierBaselineTechnique
    from repro.core.techniques.general import GeneralProbingTechnique
    from repro.core.techniques.sequential import SequentialProbingTechnique
    from repro.core.techniques.static_timeout import StaticTimeoutTechnique

    factories = {
        config_module.TECHNIQUE_BARRIER: BarrierBaselineTechnique,
        config_module.TECHNIQUE_TIMEOUT: StaticTimeoutTechnique,
        config_module.TECHNIQUE_ADAPTIVE: AdaptiveTimeoutTechnique,
        config_module.TECHNIQUE_SEQUENTIAL: SequentialProbingTechnique,
        config_module.TECHNIQUE_GENERAL: GeneralProbingTechnique,
    }
    if name not in factories:
        raise ValueError(f"unknown acknowledgment technique {name!r}")
    return factories[name](layer)
