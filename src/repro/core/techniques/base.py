"""Common interface of the acknowledgment techniques."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.pending import PendingRule
from repro.openflow.messages import OFMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rum import RumLayer


class AckTechnique:
    """Base class of all acknowledgment techniques.

    A technique never talks to switches or to the controller directly: it
    uses the hosting :class:`~repro.core.rum.RumLayer` to send RUM-originated
    messages towards switches and to confirm pending modifications (which is
    what ultimately emits the fine-grained acknowledgment upstream).
    """

    #: Name used in configuration and reports.
    name = "base"
    #: :class:`~repro.core.config.RumConfig` field defaults owned by this
    #: technique, applied (under caller overrides) by the registry whenever a
    #: config is built for it by name.
    config_defaults: dict = {}

    def __init__(self, layer: "RumLayer") -> None:
        self.layer = layer
        self.sim = layer.sim
        self.config = layer.config

    # -- lifecycle -----------------------------------------------------------
    def prepare(self) -> None:
        """Deployment-time setup (e.g. installing probe-catch rules).

        Called once, after the layer is attached to the network and before
        any experiment traffic or updates run.
        """

    def start(self) -> None:
        """Start periodic background processes (probing loops, timers)."""

    # -- notifications ------------------------------------------------------------
    def on_flowmod_forwarded(self, switch_name: str, record: PendingRule) -> None:
        """A controller FlowMod was just forwarded to ``switch_name``."""

    def on_switch_message(self, switch_name: str, message: OFMessage) -> bool:
        """A message arrived from ``switch_name``.

        Return ``True`` to consume the message (it will not be forwarded to
        the controller), ``False`` to let the layer handle it normally.
        """
        return False

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return self.name


def create_technique(name: str, layer: "RumLayer") -> AckTechnique:
    """Instantiate the registered technique called ``name`` on ``layer``."""
    import repro.core.techniques  # noqa: F401 - ensure builtins are registered
    from repro.core.techniques.registry import get_technique

    try:
        entry = get_technique(name)
    except KeyError:
        raise ValueError(f"unknown acknowledgment technique {name!r}") from None
    return entry.instantiate(layer)
