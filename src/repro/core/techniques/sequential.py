"""Sequential probing (Section 3.2.1).

Assumes the switch never reorders modifications across barriers (it may still
answer barriers too early).  RUM then only needs evidence that the *latest*
modification of a batch reached the data plane to confirm the whole batch:

1. at deployment time every switch gets a probe-catch rule
   (``H1 == postprobe -> controller``) and the probed switch gets one
   versioned probe rule (``H1 == preprobe -> set H1=postprobe, set
   H2=version, forward to neighbour C``);
2. after every ``probe_batch`` real modifications RUM rewrites the probe
   rule's version (a single FlowMod — the only extra switch work);
3. RUM keeps injecting pre-probe packets through a neighbour A; when a
   post-probe carrying version ``v`` comes back from C, every batch up to the
   one that wrote ``v`` — and therefore every real modification preceding it —
   is known to be in the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.pending import PendingRule
from repro.core.techniques.base import AckTechnique
from repro.core.techniques.registry import register_technique_class
from repro.core.versioning import VersionAllocator, VersionSpaceExhausted
from repro.openflow.actions import OutputAction
from repro.openflow.messages import OFMessage, PacketIn, PacketOut
from repro.packet.fields import FIELD_REGISTRY, ETH_TYPE_IP, HeaderField
from repro.packet.packet import make_probe_packet
from repro.probing.catch_rules import (
    sequential_catch_flowmod,
    sequential_probe_rule_flowmod,
)


@dataclass
class _SwitchProbeState:
    """Per-switch sequential probing state."""

    probeable: bool
    catch_neighbor: str = ""
    inject_neighbor: str = ""
    probe_out_port: int = 0
    inject_port: int = 0
    allocator: Optional[VersionAllocator] = None
    #: logical batch -> highest covered pending-rule sequence number.
    outstanding: Dict[int, int] = field(default_factory=dict)
    since_last_probe_rule: int = 0
    highest_covered_sequence: int = 0


@register_technique_class
class SequentialProbingTechnique(AckTechnique):
    """Confirm batches of modifications with a versioned probe rule."""

    name = "sequential"

    def __init__(self, layer) -> None:
        super().__init__(layer)
        self._states: Dict[str, _SwitchProbeState] = {}
        #: ``(catch switch, wire version) -> (probed switch, logical batch)``.
        self._version_map: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self.probe_rule_updates_sent = 0
        self.probes_injected = 0
        self.probes_received = 0

    # -- deployment -------------------------------------------------------------
    def prepare(self) -> None:
        config = self.config
        topology = self.layer.topology
        switches = topology.switch_names()
        h2_max = FIELD_REGISTRY[config.sequential_h2_field].max_value

        # Install the probe-catch rule everywhere first, so it exists before
        # any probe rule can start rewriting packets into post-probes.
        for switch_name in switches:
            self.layer.install_directly(
                switch_name,
                sequential_catch_flowmod(config.sequential_h1_field, config.postprobe_value),
            )

        for index, switch_name in enumerate(switches):
            neighbors = topology.switch_neighbors(switch_name)
            if not neighbors:
                self._states[switch_name] = _SwitchProbeState(probeable=False)
                continue
            catch_neighbor = neighbors[0]
            inject_neighbor = neighbors[1] if len(neighbors) > 1 else neighbors[0]
            # Partition the H2 value space so two switches never share a wire
            # version; value 0 is reserved for "no version yet".
            usable = [value for value in range(1, h2_max + 1)
                      if value % len(switches) == index]
            state = _SwitchProbeState(
                probeable=True,
                catch_neighbor=catch_neighbor,
                inject_neighbor=inject_neighbor,
                probe_out_port=topology.port_between(switch_name, catch_neighbor),
                inject_port=topology.port_between(inject_neighbor, switch_name),
                allocator=VersionAllocator(h2_max, reserved=(0,), usable_values=usable),
            )
            self._states[switch_name] = state
            self.layer.install_directly(
                switch_name,
                sequential_probe_rule_flowmod(
                    config.sequential_h1_field,
                    config.preprobe_value,
                    config.postprobe_value,
                    config.sequential_h2_field,
                    0,
                    state.probe_out_port,
                ),
            )

    def start(self) -> None:
        self.sim.process(self._probe_loop(), name="rum.sequential.probe-loop")

    # -- FlowMod notifications -----------------------------------------------------
    def on_flowmod_forwarded(self, switch_name: str, record: PendingRule) -> None:
        state = self._states.get(switch_name)
        if state is None or not state.probeable:
            # A switch with no neighbours cannot be probed; fall back to the
            # conservative static timeout.
            self.sim.schedule_callback(
                self.config.fallback_timeout,
                self.layer.confirm_rule,
                switch_name,
                record.xid,
                "fallback",
            )
            return
        state.since_last_probe_rule += 1
        if state.since_last_probe_rule >= self.config.probe_batch:
            self._issue_probe_rule_update(switch_name, record.sequence)
        else:
            self.sim.schedule_callback(
                self.config.probe_interval * 5,
                self._flush_if_idle,
                switch_name,
            )

    def _flush_if_idle(self, switch_name: str) -> None:
        """Cover a partially filled batch that stopped growing."""
        state = self._states[switch_name]
        tracker = self.layer.pending(switch_name)
        unconfirmed = tracker.unconfirmed()
        if not unconfirmed or state.since_last_probe_rule == 0:
            return
        newest = max(record.sequence for record in unconfirmed)
        if newest > state.highest_covered_sequence:
            self._issue_probe_rule_update(switch_name, newest)

    def _issue_probe_rule_update(self, switch_name: str, covered_sequence: int) -> None:
        state = self._states[switch_name]
        config = self.config
        try:
            batch, wire_version = state.allocator.allocate()
        except VersionSpaceExhausted:
            # All wire values are tied up in unconfirmed batches; retry after
            # one probing interval (older batches will have resolved by then).
            self.sim.schedule_callback(
                config.probe_interval, self._issue_probe_rule_update,
                switch_name, covered_sequence,
            )
            return
        state.outstanding[batch] = covered_sequence
        state.highest_covered_sequence = max(state.highest_covered_sequence, covered_sequence)
        state.since_last_probe_rule = 0
        self._version_map[(state.catch_neighbor, wire_version)] = (switch_name, batch)
        flowmod = sequential_probe_rule_flowmod(
            config.sequential_h1_field,
            config.preprobe_value,
            config.postprobe_value,
            config.sequential_h2_field,
            wire_version,
            state.probe_out_port,
        )
        self.probe_rule_updates_sent += 1
        self.layer.send_to_switch(switch_name, flowmod)

    # -- probing loop -------------------------------------------------------------------
    def _probe_loop(self):
        config = self.config
        while True:
            yield config.probe_interval
            for switch_name, state in self._states.items():
                if not state.probeable or not state.outstanding:
                    continue
                self._inject_probe(switch_name, state)

    def _inject_probe(self, switch_name: str, state: _SwitchProbeState) -> None:
        config = self.config
        headers = {
            HeaderField.ETH_SRC: 0x00000000A0A0,
            HeaderField.ETH_DST: 0x00000000B0B0,
            HeaderField.ETH_TYPE: ETH_TYPE_IP,
            config.sequential_h1_field: config.preprobe_value,
            config.sequential_h2_field: 0,
        }
        packet = make_probe_packet(headers, created_at=self.sim.now,
                                   probe_id=f"seqprobe-{switch_name}")
        packet_out = PacketOut(packet, [OutputAction(state.inject_port)])
        self.probes_injected += 1
        self.layer.send_to_switch(state.inject_neighbor, packet_out)

    # -- switch messages ------------------------------------------------------------------
    def on_switch_message(self, switch_name: str, message: OFMessage) -> bool:
        if not isinstance(message, PacketIn):
            return False
        config = self.config
        h1_value = message.packet.get(config.sequential_h1_field)
        if h1_value == config.preprobe_value:
            # A pre-probe reached the controller without being rewritten
            # (probe rule not yet installed anywhere useful); swallow it.
            return True
        if h1_value != config.postprobe_value:
            return False
        self.probes_received += 1
        wire_version = message.packet.get(config.sequential_h2_field)
        target = self._version_map.get((switch_name, wire_version))
        if target is None:
            return True
        probed_switch, batch = target
        state = self._states[probed_switch]
        state.allocator.mark_observed(wire_version)
        released = state.allocator.release_through(batch)
        for released_batch in released:
            covered = state.outstanding.pop(released_batch, None)
            wire = None
            for (catch, value), (probed, candidate) in list(self._version_map.items()):
                if probed == probed_switch and candidate == released_batch:
                    wire = (catch, value)
            if wire is not None:
                self._version_map.pop(wire, None)
            if covered is not None:
                self.layer.confirm_up_to(probed_switch, covered, by="probe")
        return True

    def describe(self) -> str:
        return (
            f"sequential probing (probe rule update after {self.config.probe_batch} "
            f"modifications, probes every {self.config.probe_interval * 1000:.0f} ms)"
        )
