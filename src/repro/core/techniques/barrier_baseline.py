"""The barrier-based baseline (Section 3.1, "Using OpenFlow barrier commands").

RUM follows every batch of forwarded FlowMods with its own BarrierRequest and
confirms the whole batch when the BarrierReply arrives.  On a specification-
compliant switch this is exactly right; on the switches the paper measures it
confirms rules 100-300 ms before they forward packets, which is what makes
every downstream consistency mechanism unsafe.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.pending import PendingRule
from repro.core.techniques.base import AckTechnique
from repro.core.techniques.registry import register_technique_class
from repro.openflow.messages import BarrierReply, BarrierRequest, OFMessage


@register_technique_class
class BarrierBaselineTechnique(AckTechnique):
    """Confirm modifications on the switch's barrier reply."""

    name = "barrier"
    #: Label recorded on confirmations produced by this technique.
    confirm_label = "barrier"

    def __init__(self, layer) -> None:
        super().__init__(layer)
        #: ``(switch, barrier xid) -> highest covered sequence number``.
        self._barrier_coverage: Dict[Tuple[str, int], int] = {}
        #: FlowMods forwarded since the last RUM barrier, per switch.
        self._since_last_barrier: Dict[str, int] = {}
        self.barriers_sent = 0

    # -- FlowMod notifications -------------------------------------------------
    def on_flowmod_forwarded(self, switch_name: str, record: PendingRule) -> None:
        count = self._since_last_barrier.get(switch_name, 0) + 1
        if count >= self.config.barrier_batch:
            self._send_barrier(switch_name, record.sequence)
            self._since_last_barrier[switch_name] = 0
        else:
            self._since_last_barrier[switch_name] = count
            # Make sure a partially filled batch is eventually confirmed even
            # if the controller stops sending: flush after one probe interval
            # of idleness.
            self.sim.schedule_callback(
                self.config.probe_interval * 5,
                self._flush_if_idle,
                switch_name,
                record.sequence,
            )

    def _flush_if_idle(self, switch_name: str, sequence: int) -> None:
        tracker = self.layer.pending(switch_name)
        record = None
        for candidate in tracker.unconfirmed():
            if candidate.sequence == sequence:
                record = candidate
                break
        if record is not None and self._since_last_barrier.get(switch_name, 0) > 0:
            self._send_barrier(switch_name, max(
                rec.sequence for rec in tracker.unconfirmed()
            ))
            self._since_last_barrier[switch_name] = 0

    def _send_barrier(self, switch_name: str, covered_sequence: int) -> None:
        request = BarrierRequest()
        self._barrier_coverage[(switch_name, request.xid)] = covered_sequence
        self.barriers_sent += 1
        self.layer.send_to_switch(switch_name, request)

    # -- switch messages ------------------------------------------------------------
    def on_switch_message(self, switch_name: str, message: OFMessage) -> bool:
        if not isinstance(message, BarrierReply):
            return False
        key = (switch_name, message.xid)
        if key not in self._barrier_coverage:
            return False
        covered_sequence = self._barrier_coverage.pop(key)
        self.handle_barrier_confirmation(switch_name, covered_sequence)
        return True

    def handle_barrier_confirmation(self, switch_name: str, covered_sequence: int) -> None:
        """Confirm everything the answered barrier covers (hook for subclasses)."""
        self.layer.confirm_up_to(switch_name, covered_sequence, by=self.confirm_label)

    def describe(self) -> str:
        return f"barrier baseline (one barrier per {self.config.barrier_batch} FlowMods)"
