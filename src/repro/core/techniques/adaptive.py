"""The adaptive-timeout technique (Section 3.1, "Adaptive delay").

Instead of waiting a fixed worst-case bound after each barrier, RUM keeps a
model of the switch — here the simplest useful one: the switch applies rule
modifications sequentially at ``assumed_rate`` per second — and schedules
each confirmation for the moment the model predicts the modification will be
in the data plane.  The quality of the confirmation therefore depends
entirely on the model: if the real switch is slower than assumed (for
example because its rate degrades as the table fills up), confirmations
arrive too early and the technique is no safer than plain barriers — exactly
the failure mode Figure 6 shows for the "adaptive 250" configuration.
"""

from __future__ import annotations

from typing import Dict

from repro.core.pending import PendingRule
from repro.core.techniques.base import AckTechnique
from repro.core.techniques.registry import register_technique_class


@register_technique_class
class AdaptiveTimeoutTechnique(AckTechnique):
    """Confirm modifications at model-predicted data-plane apply times."""

    name = "adaptive"
    #: The paper's end-to-end experiments assume the hardware switch applies
    #: 250 modifications per second; this default is owned here (not by the
    #: experiment harness) so session, scenario and campaign runs all agree.
    config_defaults = {"assumed_rate": 250.0}

    def __init__(self, layer) -> None:
        super().__init__(layer)
        #: Model state per switch: when the switch is predicted to be done
        #: with everything forwarded so far.
        self._predicted_busy_until: Dict[str, float] = {}

    def on_flowmod_forwarded(self, switch_name: str, record: PendingRule) -> None:
        per_rule = 1.0 / self.config.assumed_rate
        start = max(
            self.sim.now + self.config.adaptive_base_delay,
            self._predicted_busy_until.get(switch_name, 0.0),
        )
        predicted_done = start + per_rule
        self._predicted_busy_until[switch_name] = predicted_done
        confirm_at = predicted_done + self.config.adaptive_margin
        self.sim.schedule_callback(
            confirm_at - self.sim.now,
            self._confirm,
            switch_name,
            record.xid,
        )

    def _confirm(self, switch_name: str, xid: int) -> None:
        self.layer.confirm_rule(switch_name, xid, by=self.name)

    def predicted_completion(self, switch_name: str) -> float:
        """The model's current estimate of when the switch becomes idle."""
        return self._predicted_busy_until.get(switch_name, 0.0)

    def describe(self) -> str:
        return (
            f"adaptive timeout (assumed rate {self.config.assumed_rate:.0f} mods/s, "
            f"margin {self.config.adaptive_margin * 1000:.0f} ms)"
        )
