"""The static-timeout technique (Section 3.1, "Delaying barrier acknowledgments").

Identical to the barrier baseline except that confirmations are delayed by a
fixed, pre-measured bound on how far the data plane can lag behind a barrier
reply.  Safe as long as the bound really holds (the paper notes it stops
holding when the flow table grows or in multi-second corner cases) and always
pays the full bound in update latency.
"""

from __future__ import annotations

from repro.core.techniques.barrier_baseline import BarrierBaselineTechnique
from repro.core.techniques.registry import register_technique_class


@register_technique_class
class StaticTimeoutTechnique(BarrierBaselineTechnique):
    """Confirm modifications a fixed delay after the barrier reply."""

    name = "timeout"
    confirm_label = "timeout"

    def handle_barrier_confirmation(self, switch_name: str, covered_sequence: int) -> None:
        self.sim.schedule_callback(
            self.config.timeout,
            self.layer.confirm_up_to,
            switch_name,
            covered_sequence,
            self.confirm_label,
        )

    def describe(self) -> str:
        return f"static timeout ({self.config.timeout * 1000:.0f} ms after barrier reply)"
