"""General probing (Section 3.2.2).

Handles switches that reorder rule modifications across barriers: a cumulative
confirmation (barrier or sequential probe) is then meaningless, so every
modification is confirmed *individually* by a probe packet that exercises the
modified rule itself.

Deployment reserves one header field H (ToS in the prototype); each switch
``i`` receives a value ``S_i`` (vertex colouring keeps the number of values
small) and a probe-catch rule ``H == S_i -> controller``.  To confirm a rule
installed at switch B that forwards to neighbour C, RUM builds a packet that
matches the rule, carries ``H = S_C``, and is injected through any other
neighbour A of B.  The moment the rule is active in B's data plane the probe
is forwarded to C, caught there, and returned to RUM inside a PacketIn.

Probe construction must respect the other rules installed at B
(:mod:`repro.probing.probe_packets`); when no distinguishing probe exists the
technique falls back to the static timeout for that rule, as the paper
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.pending import PendingRule
from repro.core.techniques.base import AckTechnique
from repro.core.techniques.registry import register_technique_class
from repro.openflow.actions import OutputAction
from repro.openflow.messages import OFMessage, PacketIn, PacketOut
from repro.packet.fields import FIELD_REGISTRY
from repro.packet.packet import make_probe_packet
from repro.probing.catch_rules import general_catch_flowmod
from repro.probing.coloring import assign_switch_values
from repro.probing.probe_packets import (
    ProbeGenerationError,
    RuleView,
    generate_probe_headers,
    probe_key,
)


@dataclass
class _ProbeInfo:
    """Everything needed to (re-)inject the probe for one pending rule."""

    headers: dict
    catch_switch: str
    inject_switch: str
    inject_port: int
    key: tuple
    probes_sent: int = 0


@register_technique_class
class GeneralProbingTechnique(AckTechnique):
    """Confirm every modification individually with a data-plane probe."""

    name = "general"

    def __init__(self, layer) -> None:
        super().__init__(layer)
        self.switch_values: Dict[str, int] = {}
        #: ``(probed switch, xid) -> _ProbeInfo``.
        self._probe_info: Dict[Tuple[str, int], _ProbeInfo] = {}
        #: ``(catch switch, probe key) -> (probed switch, xid)``.
        self._probe_registry: Dict[Tuple[str, tuple], Tuple[str, int]] = {}
        self.probes_injected = 0
        self.probes_received = 0
        self.fallbacks = 0

    # -- deployment -------------------------------------------------------------
    def prepare(self) -> None:
        topology = self.layer.topology
        field_spec = FIELD_REGISTRY[self.config.probe_field]
        self.switch_values = assign_switch_values(
            topology.switch_graph(),
            first_value=1,
            max_value=field_spec.max_value,
            unique=self.config.unique_switch_values,
        )
        for switch_name, value in self.switch_values.items():
            self.layer.install_directly(
                switch_name,
                general_catch_flowmod(self.config.probe_field, value),
            )

    def start(self) -> None:
        self.sim.process(self._probe_loop(), name="rum.general.probe-loop")

    # -- FlowMod notifications -----------------------------------------------------
    def on_flowmod_forwarded(self, switch_name: str, record: PendingRule) -> None:
        info = self._build_probe(switch_name, record)
        if info is None:
            self._fallback(switch_name, record)
            return
        self._probe_info[(switch_name, record.xid)] = info
        self._probe_registry[(info.catch_switch, info.key)] = (switch_name, record.xid)

    def _build_probe(self, switch_name: str, record: PendingRule) -> Optional[_ProbeInfo]:
        topology = self.layer.topology
        flowmod = record.flowmod
        if flowmod.is_delete:
            # Deletions are detectable by probes *stopping*; the reproduction
            # keeps the conservative fallback for them instead.
            return None
        output_ports = [action.port for action in flowmod.actions
                        if isinstance(action, OutputAction)]
        if not output_ports:
            return None
        catch_switch = topology.node_for_port(switch_name, output_ports[0])
        if catch_switch is None or not topology.is_switch(catch_switch):
            return None
        neighbors = [name for name in topology.switch_neighbors(switch_name)]
        if not neighbors:
            return None
        inject_candidates = [name for name in neighbors if name != catch_switch]
        inject_switch = inject_candidates[0] if inject_candidates else neighbors[0]

        overrides = {self.config.probe_field: self.switch_values[catch_switch]}
        table_view = [RuleView.from_entry(entry)
                      for entry in self.layer.mirror_table(switch_name).entries]
        try:
            headers = generate_probe_headers(
                RuleView.from_flowmod(flowmod), table_view, overrides
            )
        except ProbeGenerationError:
            return None
        return _ProbeInfo(
            headers=headers,
            catch_switch=catch_switch,
            inject_switch=inject_switch,
            inject_port=topology.port_between(inject_switch, switch_name),
            key=probe_key(headers),
        )

    def _fallback(self, switch_name: str, record: PendingRule) -> None:
        self.fallbacks += 1
        self.sim.schedule_callback(
            self.config.fallback_timeout,
            self.layer.confirm_rule,
            switch_name,
            record.xid,
            "fallback",
        )

    # -- probing loop -------------------------------------------------------------------
    def _probe_loop(self):
        while True:
            yield self.config.probe_interval
            for switch_name in self.layer.topology.switch_names():
                tracker = self.layer.pending(switch_name)
                if not len(tracker):
                    continue
                for record in tracker.oldest(self.config.probe_window):
                    info = self._probe_info.get((switch_name, record.xid))
                    if info is not None:
                        self._inject_probe(info)

    def _inject_probe(self, info: _ProbeInfo) -> None:
        packet = make_probe_packet(dict(info.headers), created_at=self.sim.now,
                                   probe_id=f"genprobe-{info.catch_switch}")
        packet_out = PacketOut(packet, [OutputAction(info.inject_port)])
        info.probes_sent += 1
        self.probes_injected += 1
        self.layer.send_to_switch(info.inject_switch, packet_out)

    # -- switch messages ------------------------------------------------------------------
    def on_switch_message(self, switch_name: str, message: OFMessage) -> bool:
        if not isinstance(message, PacketIn):
            return False
        probe_value = message.packet.get(self.config.probe_field)
        if probe_value != self.switch_values.get(switch_name):
            return False
        # This PacketIn is a probe caught by switch_name's probe-catch rule.
        self.probes_received += 1
        key = probe_key(message.packet.headers)
        target = self._probe_registry.pop((switch_name, key), None)
        if target is not None:
            probed_switch, xid = target
            self._probe_info.pop((probed_switch, xid), None)
            self.layer.confirm_rule(probed_switch, xid, by="probe")
        return True

    def describe(self) -> str:
        return (
            f"general probing (up to {self.config.probe_window} oldest rules probed "
            f"every {self.config.probe_interval * 1000:.0f} ms, field "
            f"{self.config.probe_field.value})"
        )
