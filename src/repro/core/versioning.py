"""Probe-rule version management with value recycling.

The sequential probing technique stores a version number in a header field
(the prototype uses the 6-bit ToS field, i.e. only 64 distinct values), so
versions have to be recycled in longer experiments.  The
:class:`VersionAllocator` hands out monotonically increasing logical batch
numbers and maps them onto the small wire-value space, refusing to reuse a
wire value while a batch carrying it is still outstanding.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple


class VersionSpaceExhausted(RuntimeError):
    """Raised when every wire value is still in use by an unconfirmed batch."""


class VersionAllocator:
    """Maps logical batch numbers to recycled wire version values."""

    def __init__(
        self,
        max_wire_value: int,
        reserved: Tuple[int, ...] = (0,),
        usable_values: Optional[List[int]] = None,
    ) -> None:
        if max_wire_value < 2:
            raise ValueError("need at least two usable wire values")
        self.max_wire_value = max_wire_value
        self.reserved = set(reserved)
        if usable_values is not None:
            self._usable = [value for value in usable_values
                            if value not in self.reserved and 0 <= value <= max_wire_value]
        else:
            self._usable = [value for value in range(max_wire_value + 1)
                            if value not in self.reserved]
        if len(self._usable) < 2:
            raise ValueError("not enough usable wire values after reservations")
        self._next_batch = 0
        self._next_slot = 0
        #: wire value -> logical batch currently using it (insertion ordered).
        self._in_use: "OrderedDict[int, int]" = OrderedDict()
        #: logical batch -> wire value, for all outstanding batches.
        self._batch_to_wire: Dict[int, int] = {}
        #: The wire value most recently observed in the data plane.  It must
        #: not be re-allocated until a *different* value has been observed,
        #: otherwise a stale probe still carrying it would be mistaken for
        #: the new batch (the ABA problem of recycling a tiny value space).
        self._last_observed: Optional[int] = None

    # -- allocation --------------------------------------------------------------
    def allocate(self) -> Tuple[int, int]:
        """Allocate the next batch; returns ``(logical_batch, wire_value)``.

        Raises :class:`VersionSpaceExhausted` when every usable value is
        either still tied to an outstanding batch or is the value the data
        plane was last observed emitting.
        """
        for offset in range(len(self._usable)):
            wire = self._usable[(self._next_slot + offset) % len(self._usable)]
            if wire in self._in_use or wire == self._last_observed:
                continue
            self._next_slot = (self._next_slot + offset + 1) % len(self._usable)
            batch = self._next_batch
            self._next_batch += 1
            self._in_use[wire] = batch
            self._batch_to_wire[batch] = wire
            return batch, wire
        raise VersionSpaceExhausted(
            "every usable wire value is outstanding or still visible in the "
            "data plane; confirm or expire older batches first"
        )

    def mark_observed(self, wire_value: int) -> None:
        """Record that the data plane was seen emitting ``wire_value``."""
        self._last_observed = wire_value

    def outstanding(self) -> List[int]:
        """Logical batch numbers not yet released, oldest first."""
        return sorted(self._batch_to_wire)

    def wire_value_of(self, batch: int) -> Optional[int]:
        """Wire value of an outstanding batch (``None`` once released)."""
        return self._batch_to_wire.get(batch)

    # -- resolution ----------------------------------------------------------------
    def resolve(self, wire_value: int) -> Optional[int]:
        """The newest outstanding logical batch carried by ``wire_value``."""
        batch = self._in_use.get(wire_value)
        return batch

    def release_through(self, batch: int) -> List[int]:
        """Release ``batch`` and every older outstanding batch.

        Sequential probing confirmations are cumulative: observing version
        ``v`` in the data plane means every earlier probe-rule version (and
        therefore every earlier real modification) has been applied too.
        Returns the list of released logical batches.
        """
        released = [candidate for candidate in self._batch_to_wire if candidate <= batch]
        for candidate in released:
            wire = self._batch_to_wire.pop(candidate)
            if self._in_use.get(wire) == candidate:
                del self._in_use[wire]
        return sorted(released)

    @property
    def capacity(self) -> int:
        """Number of distinct wire values available for recycling."""
        return len(self._usable)
