"""RUM's view of the network topology.

The probing techniques need to know which switches neighbour which, which
port leads where, and which node an output port points at.  In a real
deployment RUM would learn this from the controller's topology discovery (or
be configured with it); here the view is derived from the simulated
:class:`~repro.net.network.Network`, but only through a narrow, read-only
interface so the RUM code never reaches into simulation internals.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.net.network import Network


class TopologyView:
    """Read-only topology information handed to the acknowledgment techniques."""

    def __init__(self, network: Network) -> None:
        self._network = network

    def switch_names(self) -> List[str]:
        """All switch names."""
        return self._network.switch_names()

    def is_switch(self, name: str) -> bool:
        """Whether ``name`` is a switch (as opposed to a host)."""
        return name in self._network.switches

    def switch_neighbors(self, name: str) -> List[str]:
        """Switches directly linked to ``name`` (hosts are excluded)."""
        return self._network.neighbors_of_switch(name)

    def port_between(self, from_node: str, to_node: str) -> int:
        """Port on ``from_node`` facing ``to_node``."""
        return self._network.port_between(from_node, to_node)

    def node_for_port(self, node: str, port: int) -> Optional[str]:
        """Node reached through ``port`` of ``node`` (``None`` if unknown)."""
        return self._network.node_for_port(node, port)

    def switch_graph(self) -> nx.Graph:
        """Switch-to-switch adjacency graph (used for probe-value colouring)."""
        return self._network.topology.switch_graph()
