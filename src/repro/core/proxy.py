"""The transparent proxy framework.

The RUM prototype is a TCP proxy between the switches and the controller
(Section 4): switches connect to it as if it were the controller, and it
connects onward to the real controller impersonating each switch.  Because
every functional piece (the acknowledgment layer, the reliable barrier layer)
is "just another proxy", they can be chained freely.

:class:`ProxyLayer` implements that plumbing on top of the simulated
connections: it claims the controller-side endpoint of each switch's control
channel (its *downstream*), creates a fresh upstream connection per switch,
and by default forwards every message unchanged in both directions.
Subclasses override :meth:`ProxyLayer.handle_from_controller` and
:meth:`ProxyLayer.handle_from_switch` to intercept, buffer, rewrite, drop or
inject messages.
"""

from __future__ import annotations

from typing import Dict, List

from repro.openflow.connection import Connection, ConnectionEndpoint
from repro.openflow.messages import OFMessage
from repro.sim.kernel import Simulator


class ProxyLayer:
    """A per-switch, bidirectional message interception layer."""

    def __init__(self, sim: Simulator, name: str = "proxy", latency: float = 0.0002) -> None:
        self.sim = sim
        self.name = name
        self.latency = latency
        #: Endpoint towards the switch (or the next proxy below), per switch.
        self._downstream: Dict[str, ConnectionEndpoint] = {}
        #: Connection towards the controller (or the next proxy above).
        self._upstream: Dict[str, Connection] = {}
        self.messages_from_controller = 0
        self.messages_from_switch = 0

    # -- wiring ----------------------------------------------------------------
    def attach_switch(self, switch_name: str, downstream: ConnectionEndpoint) -> None:
        """Interpose on the control channel of ``switch_name``.

        ``downstream`` is the controller-side endpoint of the channel that
        terminates at the switch (or at the proxy below us in a chain).
        """
        if switch_name in self._downstream:
            raise ValueError(f"switch {switch_name!r} already attached to {self.name}")
        self._downstream[switch_name] = downstream
        upstream = Connection(
            self.sim,
            name=f"{self.name}-{switch_name}",
            latency=self.latency,
            name_a=f"{self.name}-{switch_name}-down",
            name_b=f"{self.name}-{switch_name}-up",
        )
        self._upstream[switch_name] = upstream
        downstream.on_message(
            lambda message, name=switch_name: self._on_switch_message(name, message)
        )
        upstream.side_a.on_message(
            lambda message, name=switch_name: self._on_controller_message(name, message)
        )

    def attach_network(self, network) -> None:
        """Interpose on every switch of a :class:`~repro.net.network.Network`."""
        for switch_name in network.switch_names():
            self.attach_switch(switch_name, network.controller_endpoint(switch_name))

    def controller_endpoint(self, switch_name: str) -> ConnectionEndpoint:
        """The endpoint the controller (or the proxy above) should connect to."""
        return self._upstream[switch_name].side_b

    def switch_names(self) -> List[str]:
        """Names of the switches this proxy interposes on."""
        return list(self._downstream)

    # -- default forwarding -----------------------------------------------------------
    def _on_controller_message(self, switch_name: str, message: OFMessage) -> None:
        self.messages_from_controller += 1
        self.handle_from_controller(switch_name, message)

    def _on_switch_message(self, switch_name: str, message: OFMessage) -> None:
        self.messages_from_switch += 1
        self.handle_from_switch(switch_name, message)

    def handle_from_controller(self, switch_name: str, message: OFMessage) -> None:
        """Controller → switch direction.  Default: forward unchanged."""
        self.forward_to_switch(switch_name, message)

    def handle_from_switch(self, switch_name: str, message: OFMessage) -> None:
        """Switch → controller direction.  Default: forward unchanged."""
        self.forward_to_controller(switch_name, message)

    # -- primitives -----------------------------------------------------------------------
    def forward_to_switch(self, switch_name: str, message: OFMessage) -> None:
        """Send a message towards the switch."""
        self._downstream[switch_name].send(message)

    def forward_to_controller(self, switch_name: str, message: OFMessage) -> None:
        """Send a message towards the controller."""
        self._upstream[switch_name].side_a.send(message)

    def start(self) -> None:
        """Start any background processes the layer needs (default: none)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name} switches={self.switch_names()}>"


def chain_proxies(network, layers: List[ProxyLayer]) -> Dict[str, ConnectionEndpoint]:
    """Chain proxies bottom-up between a network and a controller.

    ``layers[0]`` sits closest to the switches; the returned mapping gives,
    per switch, the endpoint the controller should finally connect to (the
    top of the chain).  With an empty list the network's own endpoints are
    returned (no proxying).
    """
    if not layers:
        return {name: network.controller_endpoint(name) for name in network.switch_names()}
    layers[0].attach_network(network)
    for below, above in zip(layers, layers[1:]):
        for switch_name in below.switch_names():
            above.attach_switch(switch_name, below.controller_endpoint(switch_name))
    top = layers[-1]
    return {name: top.controller_endpoint(name) for name in top.switch_names()}
