"""The RUM acknowledgment layer.

:class:`RumLayer` is the transparent proxy that sits directly above the
switches.  For every controller FlowMod it forwards, it tracks a pending
record, lets the configured acknowledgment technique decide when the rule is
demonstrably active in the data plane, and only then emits the fine-grained
positive acknowledgment upstream (a repurposed OpenFlow error message with an
otherwise-unused code, exactly like the prototype).  The controller can
therefore never observe an acknowledgment before the corresponding rule
forwards packets — the paper's central guarantee.

Messages that RUM itself originates (its barriers, probe-rule updates and
probe PacketOuts) are tracked by xid so that their replies are consumed
rather than leaked to the controller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import RumConfig
from repro.core.pending import PendingRule, PendingRuleTracker
from repro.core.techniques.base import AckTechnique, create_technique
from repro.core.proxy import ProxyLayer
from repro.core.topology_view import TopologyView
from repro.net.network import Network
from repro.obs import tracer as obs_tracer
from repro.obs.events import PHASE_ACK_SENT
from repro.openflow.flowtable import FlowTable
from repro.openflow.messages import (
    BarrierReply,
    ErrorMessage,
    FlowMod,
    OFMessage,
    PacketIn,
)
from repro.sim.kernel import Simulator


class RumLayer(ProxyLayer):
    """Rule Update Monitoring: reliable fine-grained rule acknowledgments."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[RumConfig] = None,
        name: str = "rum",
    ) -> None:
        self.config = (config or RumConfig()).validated()
        super().__init__(sim, name=name, latency=self.config.proxy_latency)
        self.network: Optional[Network] = None
        self.topology: Optional[TopologyView] = None
        self._trackers: Dict[str, PendingRuleTracker] = {}
        #: RUM's mirror of each switch's rule state, built from everything it
        #: forwards (controller rules and its own probing rules).  Used by
        #: probe-packet generation for the overlapping-rule checks.
        self._mirrors: Dict[str, FlowTable] = {}
        #: Xids of messages RUM itself injected towards switches.
        self.rum_xids: Set[int] = set()
        #: Deployment-time rules per switch (probe catch rules, ...), kept so
        #: the recovery subsystem can re-seed a switch whose crash wiped them.
        self._deployment_rules: Dict[str, List[FlowMod]] = {}
        #: Measurement log: ``(switch, xid) -> (forwarded, confirmed, how)``.
        self.confirmation_log: Dict[Tuple[str, int], Tuple[float, float, str]] = {}
        self.technique: AckTechnique = create_technique(self.config.technique, self)
        self._prepared = False
        self._started = False

    # -- wiring ----------------------------------------------------------------
    def attach_network(self, network: Network) -> None:
        """Interpose on every switch of ``network`` and learn its topology."""
        self.network = network
        self.topology = TopologyView(network)
        super().attach_network(network)

    def attach_switch(self, switch_name: str, downstream) -> None:
        super().attach_switch(switch_name, downstream)
        self._trackers[switch_name] = PendingRuleTracker(switch_name)
        self._mirrors[switch_name] = FlowTable(name=f"rum-mirror-{switch_name}")

    def prepare(self) -> None:
        """Deployment-time setup of the active technique (probe-catch rules)."""
        if self._prepared:
            return
        if self.topology is None:
            raise RuntimeError("attach_network() must be called before prepare()")
        self._prepared = True
        self.technique.prepare()

    def start(self) -> None:
        """Start the technique's background processes (probing loops, timers)."""
        if self._started:
            return
        if not self._prepared:
            self.prepare()
        self._started = True
        self.technique.start()

    # -- accessors used by techniques ---------------------------------------------
    def pending(self, switch_name: str) -> PendingRuleTracker:
        """The pending-rule tracker of one switch."""
        return self._trackers[switch_name]

    def mirror_table(self, switch_name: str) -> FlowTable:
        """RUM's mirror of one switch's rules."""
        return self._mirrors[switch_name]

    def install_directly(self, switch_name: str, flowmod: FlowMod) -> None:
        """Install a deployment-time rule (probe catch / probe rule).

        These rules are part of RUM's setup, not of any measured update, so
        they are written into the switch directly (and mirrored), the same
        way experiment setup preinstalls forwarding state.
        """
        if self.network is None:
            raise RuntimeError("attach_network() must be called before install_directly()")
        self.network.switch(switch_name).install_rule_directly(flowmod)
        self._mirrors[switch_name].apply_flowmod(flowmod, now=self.sim.now)
        self._deployment_rules.setdefault(switch_name, []).append(flowmod)

    def reinstall_deployment(self, switch_name: str) -> int:
        """Re-apply the deployment-time rules a crash wiped off a switch.

        Registered as a controller reconnect handler when recovery is armed:
        without its probe-catch rules back, a restored switch's neighbourhood
        can never confirm another rule.  Returns the number of rules
        re-applied (idempotent — re-application replaces identical rules).
        """
        rules = self._deployment_rules.get(switch_name, [])
        for flowmod in rules:
            self.network.switch(switch_name).install_rule_directly(flowmod)
            self._mirrors[switch_name].apply_flowmod(flowmod, now=self.sim.now)
        return len(rules)

    def send_to_switch(self, switch_name: str, message: OFMessage) -> None:
        """Send a RUM-originated message to a switch (reply will be consumed)."""
        self.rum_xids.add(message.xid)
        if isinstance(message, FlowMod):
            self._mirrors[switch_name].apply_flowmod(message, now=self.sim.now)
        self.forward_to_switch(switch_name, message)

    # -- confirmations ----------------------------------------------------------------
    def confirm_rule(self, switch_name: str, xid: int, by: str = "") -> Optional[PendingRule]:
        """Confirm a single modification and notify the controller."""
        record = self._trackers[switch_name].confirm(xid, self.sim.now, by=by)
        if record is None:
            return None
        self._emit_confirmation(record)
        return record

    def confirm_up_to(self, switch_name: str, sequence: int, by: str = "") -> List[PendingRule]:
        """Confirm every modification forwarded up to ``sequence`` (cumulative)."""
        records = self._trackers[switch_name].confirm_up_to_sequence(
            sequence, self.sim.now, by=by
        )
        for record in records:
            self._emit_confirmation(record)
        return records

    def _emit_confirmation(self, record: PendingRule) -> None:
        self.confirmation_log[(record.switch, record.xid)] = (
            record.forwarded_at,
            record.confirmed_at,
            record.confirmed_by,
        )
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_ACK_SENT, self.sim.now, record.switch, record.xid,
                    detail=record.confirmed_by)
        if self.config.emit_confirmations:
            self.forward_to_controller(
                record.switch, ErrorMessage.rule_confirmation(record.xid)
            )

    # -- message handling ------------------------------------------------------------------
    def handle_from_controller(self, switch_name: str, message: OFMessage) -> None:
        if isinstance(message, FlowMod):
            record = self._trackers[switch_name].add(message, self.sim.now)
            self._mirrors[switch_name].apply_flowmod(message, now=self.sim.now)
            self.forward_to_switch(switch_name, message)
            self.technique.on_flowmod_forwarded(switch_name, record)
            return
        # Everything else (controller barriers, stats requests, PacketOuts,
        # echo) passes through unchanged; RUM stays transparent.
        self.forward_to_switch(switch_name, message)

    def handle_from_switch(self, switch_name: str, message: OFMessage) -> None:
        if self.technique.on_switch_message(switch_name, message):
            return
        if isinstance(message, (BarrierReply, ErrorMessage)) and message.xid in self.rum_xids:
            # Reply to something RUM injected; never leak it upstream.
            self.rum_xids.discard(message.xid)
            return
        if isinstance(message, PacketIn) and message.packet.is_probe:
            # A probe that the active technique did not claim (e.g. a stale
            # probe from a previous batch); probes never reach the controller.
            return
        self.forward_to_controller(switch_name, message)

    # -- measurement -----------------------------------------------------------------------
    def confirmation_times(self, switch_name: Optional[str] = None) -> Dict[int, float]:
        """``xid -> confirmation time`` (optionally restricted to one switch)."""
        return {
            xid: confirmed
            for (switch, xid), (_fwd, confirmed, _by) in self.confirmation_log.items()
            if switch_name is None or switch == switch_name
        }

    def unconfirmed_count(self) -> int:
        """Total modifications still awaiting confirmation across all switches."""
        return sum(len(tracker) for tracker in self._trackers.values())

    def describe(self) -> str:
        """Human-readable one-liner about the active technique."""
        return f"RUM[{self.technique.describe()}]"
