"""Tracking of rule modifications that RUM has forwarded but not yet confirmed."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.openflow.messages import FlowMod


@dataclass
class PendingRule:
    """One FlowMod forwarded to a switch and awaiting data-plane confirmation."""

    switch: str
    xid: int
    flowmod: FlowMod
    forwarded_at: float
    #: Monotonically increasing per-switch sequence number (forwarding order).
    sequence: int
    confirmed_at: Optional[float] = None
    #: How the confirmation was obtained (technique-specific label, e.g.
    #: ``"probe"``, ``"barrier"``, ``"timeout"``, ``"fallback"``).
    confirmed_by: str = ""

    @property
    def confirmed(self) -> bool:
        """Whether RUM has confirmed this modification."""
        return self.confirmed_at is not None


class PendingRuleTracker:
    """Ordered collection of unconfirmed rule modifications for one switch."""

    def __init__(self, switch: str) -> None:
        self.switch = switch
        self._pending: "OrderedDict[int, PendingRule]" = OrderedDict()
        self._history: List[PendingRule] = []
        self._sequence = 0

    # -- adding ------------------------------------------------------------------
    def add(self, flowmod: FlowMod, now: float) -> PendingRule:
        """Track a newly forwarded FlowMod."""
        self._sequence += 1
        record = PendingRule(
            switch=self.switch,
            xid=flowmod.xid,
            flowmod=flowmod,
            forwarded_at=now,
            sequence=self._sequence,
        )
        self._pending[flowmod.xid] = record
        self._history.append(record)
        return record

    # -- queries -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, xid: int) -> bool:
        return xid in self._pending

    def get(self, xid: int) -> Optional[PendingRule]:
        """The pending record for ``xid`` (``None`` if unknown or confirmed)."""
        return self._pending.get(xid)

    def oldest(self, count: int) -> List[PendingRule]:
        """Up to ``count`` unconfirmed records, oldest first."""
        result = []
        for record in self._pending.values():
            result.append(record)
            if len(result) >= count:
                break
        return result

    def unconfirmed(self) -> List[PendingRule]:
        """All unconfirmed records, oldest first."""
        return list(self._pending.values())

    def unconfirmed_xids(self) -> List[int]:
        """Xids of all unconfirmed records, oldest first."""
        return list(self._pending.keys())

    def history(self) -> List[PendingRule]:
        """Every record ever tracked (confirmed and unconfirmed)."""
        return list(self._history)

    # -- confirming --------------------------------------------------------------------
    def confirm(self, xid: int, now: float, by: str = "") -> Optional[PendingRule]:
        """Mark ``xid`` confirmed; returns the record, or ``None`` if unknown."""
        record = self._pending.pop(xid, None)
        if record is None:
            return None
        record.confirmed_at = now
        record.confirmed_by = by
        return record

    def confirm_up_to_sequence(self, sequence: int, now: float, by: str = "") -> List[PendingRule]:
        """Confirm every unconfirmed record with sequence number <= ``sequence``.

        Used by techniques whose confirmations are cumulative (barriers,
        timeouts, sequential probing): seeing evidence that modification *n*
        is in the data plane confirms everything forwarded before it, as long
        as the switch does not reorder.
        """
        confirmed = []
        for xid in list(self._pending.keys()):
            record = self._pending[xid]
            if record.sequence <= sequence:
                confirmed.append(self.confirm(xid, now, by=by))
        return [record for record in confirmed if record is not None]

    def confirm_all(self, now: float, by: str = "") -> List[PendingRule]:
        """Confirm every outstanding record."""
        if not self._pending:
            return []
        last_sequence = max(record.sequence for record in self._pending.values())
        return self.confirm_up_to_sequence(last_sequence, now, by=by)

    # -- statistics -----------------------------------------------------------------------
    def confirmation_latencies(self) -> List[Tuple[int, float]]:
        """``(xid, confirmed_at - forwarded_at)`` for all confirmed records."""
        return [
            (record.xid, record.confirmed_at - record.forwarded_at)
            for record in self._history
            if record.confirmed_at is not None
        ]
