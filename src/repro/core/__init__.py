"""RUM — Rule Update Monitoring (the paper's primary contribution).

The package contains the transparent proxy framework, the acknowledgment
layer with its five techniques, and the reliable barrier layer:

* :class:`~repro.core.rum.RumLayer` — the acknowledgment layer; attach it to
  a :class:`~repro.net.network.Network`, pick a technique via
  :class:`~repro.core.config.RumConfig`, connect the controller to
  :meth:`~repro.core.proxy.ProxyLayer.controller_endpoint`, then call
  :meth:`~repro.core.rum.RumLayer.prepare` and
  :meth:`~repro.core.rum.RumLayer.start`.
* :class:`~repro.core.barrier_layer.ReliableBarrierLayer` — stack it above
  the acknowledgment layer (``chain_proxies``) to give unmodified,
  barrier-based controllers trustworthy barrier replies.
"""

from repro.core.config import (
    ALL_TECHNIQUES,
    RumConfig,
    TECHNIQUE_ADAPTIVE,
    TECHNIQUE_BARRIER,
    TECHNIQUE_GENERAL,
    TECHNIQUE_SEQUENTIAL,
    TECHNIQUE_TIMEOUT,
    config_for_technique,
)
from repro.core.pending import PendingRule, PendingRuleTracker
from repro.core.proxy import ProxyLayer, chain_proxies
from repro.core.rum import RumLayer
from repro.core.barrier_layer import ReliableBarrierLayer
from repro.core.topology_view import TopologyView
from repro.core.versioning import VersionAllocator, VersionSpaceExhausted
from repro.core.techniques import (
    AckTechnique,
    AdaptiveTimeoutTechnique,
    BarrierBaselineTechnique,
    GeneralProbingTechnique,
    NO_WAIT_TECHNIQUE,
    RegisteredTechnique,
    SequentialProbingTechnique,
    StaticTimeoutTechnique,
    TECHNIQUE_NO_WAIT,
    available_techniques,
    create_technique,
    get_technique,
    register_technique,
    register_technique_class,
    resolve_technique,
)

__all__ = [
    "ALL_TECHNIQUES",
    "AckTechnique",
    "AdaptiveTimeoutTechnique",
    "BarrierBaselineTechnique",
    "GeneralProbingTechnique",
    "NO_WAIT_TECHNIQUE",
    "PendingRule",
    "PendingRuleTracker",
    "ProxyLayer",
    "RegisteredTechnique",
    "ReliableBarrierLayer",
    "RumConfig",
    "RumLayer",
    "SequentialProbingTechnique",
    "StaticTimeoutTechnique",
    "TECHNIQUE_ADAPTIVE",
    "TECHNIQUE_BARRIER",
    "TECHNIQUE_GENERAL",
    "TECHNIQUE_NO_WAIT",
    "TECHNIQUE_SEQUENTIAL",
    "TECHNIQUE_TIMEOUT",
    "TopologyView",
    "VersionAllocator",
    "VersionSpaceExhausted",
    "available_techniques",
    "chain_proxies",
    "config_for_technique",
    "create_technique",
    "get_technique",
    "register_technique",
    "register_technique_class",
    "resolve_technique",
]
