"""The switch data plane: the table packets actually hit.

The data plane owns its own :class:`~repro.openflow.flowtable.FlowTable`,
separate from the control plane's table.  The whole point of the paper is
that these two tables can disagree for hundreds of milliseconds; keeping them
as two distinct objects makes that divergence explicit and measurable
(:meth:`DataPlane.divergence_from`).

A lookup cache keyed by the packet's full header tuple keeps per-packet cost
low for the high-rate traffic used in the end-to-end experiments; the cache
is invalidated whenever a rule is applied to the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import tracer as obs_tracer
from repro.obs.events import PHASE_HW_ACTIVATED
from repro.openflow.actions import apply_actions
from repro.openflow.constants import CONTROLLER_PORT
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.messages import FlowMod
from repro.packet.fields import FIELD_INDEX, HeaderField
from repro.packet.packet import Packet

#: Array index of ``in_port`` in a packet's header value array.
_IN_PORT_INDEX = FIELD_INDEX[HeaderField.IN_PORT]

#: Cache-miss sentinel (``None`` is a valid cached value: a table miss).
_MISS = object()


@dataclass
class ForwardingResult:
    """Outcome of processing one packet in the data plane."""

    #: Physical output ports the (possibly rewritten) packet must be sent to.
    output_ports: List[int] = field(default_factory=list)
    #: Whether a copy must be encapsulated in a PacketIn to the controller.
    to_controller: bool = False
    #: The rule that matched, or ``None`` on a table miss.
    matched_entry: Optional[FlowEntry] = None
    #: The packet after rewrite actions were applied.
    packet: Optional[Packet] = None

    @property
    def dropped(self) -> bool:
        """True when the packet leaves the switch on no port at all."""
        return not self.output_ports and not self.to_controller


class DataPlane:
    """Data-plane forwarding state and packet processing."""

    def __init__(self, table_mode: str = "priority", capacity: Optional[int] = None,
                 name: str = "dataplane") -> None:
        self.table = FlowTable(mode=table_mode, capacity=capacity, name=name)
        self.name = name
        #: Owning switch, for trace events (the table is named ``<switch>.data``).
        self.switch_name = name[:-5] if name.endswith(".data") else name
        self._lookup_cache: Dict[Tuple, Optional[FlowEntry]] = {}
        #: (time, flowmod xid) history of when each rule became visible to
        #: packets — the measurement layer uses this as ground truth for
        #: "data plane activation".
        self.apply_log: List[Tuple[float, int]] = []
        self.packets_processed = 0
        self.packets_dropped = 0

    # -- rule application -----------------------------------------------------
    def apply_flowmod(self, flowmod: FlowMod, now: float) -> List[FlowEntry]:
        """Apply a rule modification to the data plane (cache is invalidated)."""
        entries = self.table.apply_flowmod(flowmod, now=now)
        self._lookup_cache.clear()
        self.apply_log.append((now, flowmod.xid))
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_HW_ACTIVATED, now, self.switch_name, flowmod.xid)
        return entries

    def occupancy(self) -> int:
        """Number of rules currently visible to packets."""
        return len(self.table)

    def wipe(self) -> None:
        """Crash semantics: every rule vanishes from the data plane at once."""
        self.table.clear()
        self._lookup_cache.clear()

    # -- packet processing --------------------------------------------------------
    def _cache_key(self, packet: Packet, in_port: int) -> Tuple:
        """Full-header cache key: the fixed-order value array with ``in_port``.

        Field order is static (:data:`~repro.packet.fields.FIELD_ORDER`), so
        no sorting is needed — the array is already canonical.
        """
        key = packet._values.copy()
        key[_IN_PORT_INDEX] = in_port
        return tuple(key)

    def process_packet(self, packet: Packet, in_port: int) -> ForwardingResult:
        """Classify ``packet`` and compute its forwarding result.

        Rewrite actions are applied to a copy so the caller's packet object
        (still owned by the upstream link) is not mutated.
        """
        self.packets_processed += 1
        key = self._cache_key(packet, in_port)
        entry = self._lookup_cache.get(key, _MISS)
        if entry is _MISS:
            entry = self.table.lookup_values(list(key))
            self._lookup_cache[key] = entry

        if entry is None:
            self.packets_dropped += 1
            return ForwardingResult(packet=packet)

        entry.record_hit(packet)
        forwarded = packet.copy()
        ports = apply_actions(forwarded, entry.actions)
        output_ports = [port for port in ports if port != CONTROLLER_PORT]
        to_controller = CONTROLLER_PORT in ports
        if not ports:
            self.packets_dropped += 1
        return ForwardingResult(
            output_ports=output_ports,
            to_controller=to_controller,
            matched_entry=entry,
            packet=forwarded,
        )

    # -- diagnostics -----------------------------------------------------------------
    def divergence_from(self, control_table: FlowTable) -> Tuple[set, set]:
        """Rules only in the control plane and rules only in the data plane.

        Returns a pair of signature sets ``(control_only, data_only)``; both
        empty means the planes agree.
        """
        control = control_table.signature_set()
        data = self.table.signature_set()
        return control - data, data - control

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<DataPlane {self.name} rules={len(self.table)} pkts={self.packets_processed}>"
