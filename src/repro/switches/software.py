"""The well-behaved software switch used as S1, S3 and the probe helpers."""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.switches.base import Switch
from repro.switches.profiles import SwitchProfile, software_switch_profile


class SoftwareSwitch(Switch):
    """An Open vSwitch-like switch.

    Rules become visible to the data plane as soon as the control plane
    processes them and barrier replies are only sent once that has happened,
    so all acknowledgment techniques (including the plain barrier baseline)
    are trustworthy on this switch.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: Optional[SwitchProfile] = None,
        datapath_id: Optional[int] = None,
        rng: Optional[SeededRandom] = None,
    ) -> None:
        super().__init__(
            sim,
            name,
            profile if profile is not None else software_switch_profile(),
            datapath_id=datapath_id,
            rng=rng,
        )
