"""Switch models.

The paper's observation is that OpenFlow switches maintain *two* views of the
forwarding state: the control-plane view (what the switch agent believes, and
what barriers/statistics report) and the data-plane view (what packets
actually hit, e.g. TCAM contents).  On several hardware switches the data
plane lags the control plane by 100-300 ms and barrier replies are emitted
from the control-plane view, which breaks every consistent-update scheme.

:class:`~repro.switches.profiles.SwitchProfile` captures the externally
observable behaviour of a switch: how fast it processes FlowMods, when it
answers barriers, how and when control-plane state is synchronised into the
data plane, whether it reorders modifications across barriers, and how fast
it handles PacketIn/PacketOut.  :class:`~repro.switches.base.Switch` is the
simulation model parameterised by a profile;
:class:`~repro.switches.software.SoftwareSwitch` and
:class:`~repro.switches.hardware.HardwareSwitch` are the two concrete
configurations used throughout the evaluation.
"""

from repro.switches.profiles import (
    BarrierMode,
    DataPlaneSyncModel,
    SwitchProfile,
    correct_hardware_profile,
    hp5406zl_profile,
    reordering_switch_profile,
    software_switch_profile,
)
from repro.switches.base import Switch
from repro.switches.dataplane import DataPlane, ForwardingResult
from repro.switches.controlplane import ControlPlane, PendingOperation
from repro.switches.software import SoftwareSwitch
from repro.switches.hardware import HardwareSwitch

#: Names still re-exported from the deprecated fault shim.  Resolved lazily
#: so ``import repro.switches`` alone never triggers the shim's
#: DeprecationWarning — only actually touching one of these names does.
_FAULT_SHIM_NAMES = ("DelaySpikeFault", "FaultInjector", "ReorderFault")


def __getattr__(name: str):
    if name in _FAULT_SHIM_NAMES:
        from repro.switches import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BarrierMode",
    "ControlPlane",
    "DataPlane",
    "DataPlaneSyncModel",
    "DelaySpikeFault",
    "FaultInjector",
    "ForwardingResult",
    "HardwareSwitch",
    "PendingOperation",
    "ReorderFault",
    "SoftwareSwitch",
    "Switch",
    "SwitchProfile",
    "correct_hardware_profile",
    "hp5406zl_profile",
    "reordering_switch_profile",
    "software_switch_profile",
]
