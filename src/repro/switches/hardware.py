"""The buggy hardware switch model (HP ProCurve 5406zl-like)."""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.switches.base import Switch
from repro.switches.profiles import (
    SwitchProfile,
    hp5406zl_profile,
    reordering_switch_profile,
)


class HardwareSwitch(Switch):
    """Hardware switch whose barrier replies precede data-plane visibility.

    The default profile (:func:`~repro.switches.profiles.hp5406zl_profile`)
    keeps rule ordering across barriers but synchronises the data plane in
    periodic batches, so barrier replies may arrive up to ~300 ms before the
    corresponding rule forwards packets.  Pass
    ``profile=reordering_switch_profile()`` (or ``reordering=True``) to model
    the worse class of switches that also reorder modifications across
    barriers.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: Optional[SwitchProfile] = None,
        reordering: bool = False,
        datapath_id: Optional[int] = None,
        rng: Optional[SeededRandom] = None,
    ) -> None:
        if profile is None:
            profile = reordering_switch_profile() if reordering else hp5406zl_profile()
        super().__init__(sim, name, profile, datapath_id=datapath_id, rng=rng)
