"""Switch behaviour profiles.

A profile is the *calibration* of a switch model: every timing and ordering
property RUM (or any controller) can observe from the outside.  The default
hardware profile reproduces the observable behaviour the paper and its
accompanying technical report [Kuzniar et al., EPFL-REPORT-199497] describe
for the HP ProCurve 5406zl:

* FlowMods are accepted and processed by the control plane at a sustained
  rate of roughly 275 per second,
* the control-plane state is pushed into the data plane (TCAM) in periodic
  synchronisation rounds, so data-plane visibility lags the control plane by
  anywhere from a few milliseconds up to ~300 ms — this also produces the
  "three visible steps" in flow installation times for a 300-rule update,
* barrier replies are generated from the control-plane view, i.e. up to
  ~300 ms before the corresponding rules forward packets,
* the switch processes roughly 7 000 PacketOut/s and 5 500 PacketIn/s,
* rule priorities are ignored; installation order decides importance,
* the sustained FlowMod rate degrades as table occupancy grows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional


class BarrierMode(str, Enum):
    """When the switch emits a barrier reply."""

    #: Reply only after every preceding modification is visible in the data
    #: plane — the behaviour the OpenFlow specification arguably intends.
    CORRECT = "correct"
    #: Reply as soon as preceding messages were processed by the control
    #: plane, which may be long before the data plane catches up.  This is
    #: the buggy behaviour the paper measures on hardware.
    CONTROL_PLANE = "control_plane"


class DataPlaneSyncModel(str, Enum):
    """How control-plane rule state propagates into the data plane."""

    #: Rules become visible to packets the moment the control plane applies
    #: them (software switches).
    IMMEDIATE = "immediate"
    #: The switch periodically synchronises all control-plane changes into
    #: the data plane in one batch (HP 5406zl-like; produces the step
    #: pattern and the 0-300 ms lag).
    PERIODIC_BATCH = "periodic_batch"
    #: Rules trickle into the data plane at a fixed rate with a fixed extra
    #: latency per rule.
    RATE_LIMITED = "rate_limited"


@dataclass
class SwitchProfile:
    """Externally observable behaviour of one switch model."""

    name: str = "generic"

    # -- control plane ------------------------------------------------------
    #: Sustained FlowMod processing rate (rules/second) with an empty table.
    flowmod_rate: float = 275.0
    #: Fractional jitter applied to each FlowMod processing time.
    flowmod_jitter: float = 0.05
    #: Additional per-rule slowdown as the table grows: the effective
    #: processing time is multiplied by ``1 + occupancy_slowdown * occupancy``.
    occupancy_slowdown: float = 0.0
    #: Processing time for lightweight messages (echo, features, stats).
    trivial_processing_time: float = 0.0001
    #: Control-plane CPU time consumed by one PacketOut (interferes with
    #: FlowMod processing; the egress rate cap below is separate).
    packet_out_processing_time: float = 0.0001
    #: Control-plane CPU time consumed by encapsulating one PacketIn.
    packet_in_processing_time: float = 0.00002

    # -- barriers --------------------------------------------------------------
    barrier_mode: BarrierMode = BarrierMode.CONTROL_PLANE
    #: Whether the switch may apply modifications to the data plane in a
    #: different order than they were received, even across barriers.
    reorders_across_barriers: bool = False

    # -- data plane synchronisation ----------------------------------------------
    sync_model: DataPlaneSyncModel = DataPlaneSyncModel.PERIODIC_BATCH
    #: Period of the batched control->data plane synchronisation (seconds).
    sync_period: float = 0.3
    #: Per-rule time spent during a synchronisation round (seconds).
    sync_per_rule_time: float = 0.0002
    #: Extra latency per rule for the RATE_LIMITED model.
    dataplane_extra_latency: float = 0.1
    #: Rule apply rate for the RATE_LIMITED model (rules/second).
    dataplane_apply_rate: float = 275.0
    #: Per-rule slowdown of the data-plane apply rate as the table grows
    #: (TCAM insertion gets slower with occupancy); the effective apply time
    #: is multiplied by ``1 + dataplane_occupancy_slowdown * occupancy``.
    dataplane_occupancy_slowdown: float = 0.0

    # -- packet I/O -----------------------------------------------------------------
    #: Maximum PacketOut injection rate (packets/second).
    packet_out_rate: float = 7006.0
    #: Maximum PacketIn generation rate (packets/second).
    packet_in_rate: float = 5531.0
    #: Data-plane forwarding latency per packet (seconds).
    forwarding_latency: float = 0.00002

    # -- flow table --------------------------------------------------------------------
    table_capacity: Optional[int] = None
    #: ``"priority"`` or ``"install_order"`` (the paper's hardware switch
    #: ignores priorities).
    table_mode: str = "priority"

    # -- misc ---------------------------------------------------------------------------
    description: str = ""

    def with_overrides(self, **kwargs) -> "SwitchProfile":
        """A copy of the profile with selected fields replaced."""
        return replace(self, **kwargs)

    def flowmod_processing_time(self, occupancy: int) -> float:
        """Nominal control-plane processing time of one FlowMod."""
        base = 1.0 / self.flowmod_rate
        return base * (1.0 + self.occupancy_slowdown * occupancy)

    def validate(self) -> None:
        """Sanity-check numeric parameters; raises :class:`ValueError`."""
        if self.flowmod_rate <= 0:
            raise ValueError("flowmod_rate must be positive")
        if self.packet_out_rate <= 0 or self.packet_in_rate <= 0:
            raise ValueError("packet I/O rates must be positive")
        if self.sync_period < 0 or self.sync_per_rule_time < 0:
            raise ValueError("sync timings must be non-negative")
        if self.table_mode not in ("priority", "install_order"):
            raise ValueError(f"unknown table mode {self.table_mode!r}")


def software_switch_profile() -> SwitchProfile:
    """A well-behaved software switch (Open vSwitch-like).

    Barriers are correct, rules are visible to the data plane immediately
    after the control plane applies them, and updates are fast.
    """
    return SwitchProfile(
        name="software",
        flowmod_rate=2000.0,
        flowmod_jitter=0.02,
        barrier_mode=BarrierMode.CORRECT,
        reorders_across_barriers=False,
        sync_model=DataPlaneSyncModel.IMMEDIATE,
        sync_period=0.0,
        packet_out_rate=50000.0,
        packet_in_rate=50000.0,
        forwarding_latency=0.00001,
        table_mode="priority",
        description="Correct software switch: immediate data-plane visibility.",
    )


def hp5406zl_profile() -> SwitchProfile:
    """The buggy hardware switch used in the paper's end-to-end experiment.

    Calibrated so that, for a 300-rule burst, barrier replies precede
    data-plane visibility by up to ~250-300 ms (the lag grows with the
    backlog between the control plane and the slower TCAM insertion path and
    with table occupancy), the sustained modification rate is in the 200-285
    rules/s range reported by the technical report, and the effective
    data-plane apply rate drops below 250/s as the table fills — which is
    what makes the "adaptive 250" model unsafe late in the experiment.
    """
    return SwitchProfile(
        name="hp5406zl",
        flowmod_rate=285.0,
        flowmod_jitter=0.05,
        occupancy_slowdown=0.0,
        barrier_mode=BarrierMode.CONTROL_PLANE,
        reorders_across_barriers=False,
        sync_model=DataPlaneSyncModel.RATE_LIMITED,
        sync_period=0.3,
        sync_per_rule_time=0.0002,
        dataplane_apply_rate=265.0,
        dataplane_extra_latency=0.04,
        dataplane_occupancy_slowdown=0.0005,
        packet_out_rate=7006.0,
        packet_in_rate=5531.0,
        packet_out_processing_time=0.0001,
        packet_in_processing_time=0.00002,
        forwarding_latency=0.00002,
        table_mode="priority",
        description=(
            "HP ProCurve 5406zl-like: early barrier replies, periodic batched "
            "control->data plane synchronisation (0-300 ms lag).  The real "
            "switch additionally ignores priorities in favour of installation "
            "order; use table_mode='install_order' to model that quirk."
        ),
    )


def reordering_switch_profile() -> SwitchProfile:
    """A switch that both replies to barriers early *and* reorders
    modifications across barriers — the worst class the paper considers,
    which only the general probing technique (and the buffering barrier
    layer) can handle."""
    profile = hp5406zl_profile()
    return profile.with_overrides(
        name="reordering-hw",
        reorders_across_barriers=True,
        description=(
            "Hardware switch that reorders rule modifications across barriers "
            "in addition to replying to barriers from the control plane."
        ),
    )


def correct_hardware_profile() -> SwitchProfile:
    """A slow hardware switch whose barriers are nonetheless correct.

    The paper notes one of the tested switches does implement barriers
    correctly; this profile lets tests and ablations compare against it.
    """
    profile = hp5406zl_profile()
    return profile.with_overrides(
        name="correct-hw",
        barrier_mode=BarrierMode.CORRECT,
        description="Hardware-speed switch whose barrier replies wait for the data plane.",
    )
