"""Fault injection for switch behaviour.

The evaluation in the paper relies on naturally-occurring switch bugs; the
fault injectors below let tests and ablation benchmarks create those
conditions on demand and in a controlled way:

* :class:`DelaySpikeFault` — occasionally the control→data plane lag jumps to
  several seconds ("in hard to predict corner cases, the delay may reach
  several seconds"), which breaks static-timeout techniques.
* :class:`ReorderFault` — modifications are applied to the data plane out of
  order, which breaks sequential probing but not general probing.

A :class:`FaultInjector` wraps a switch's ``apply_to_dataplane`` hook, so the
fault sits exactly at the control/data plane boundary where the real bugs
live.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.openflow.messages import FlowMod
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.switches.base import Switch


class Fault:
    """Base class: a transformation of (flowmod, apply_time) streams."""

    def arm(self, sim: Simulator, rng: SeededRandom) -> None:
        """Bind to the simulation before first use."""
        self.sim = sim
        self.rng = rng

    def intercept(
        self, flowmod: FlowMod, apply: Callable[[FlowMod, float], None]
    ) -> bool:
        """Handle one data-plane application.

        Returns ``True`` when the fault consumed the application (it will
        apply it later itself), ``False`` to let it proceed normally.
        """
        raise NotImplementedError


class DelaySpikeFault(Fault):
    """With probability ``probability`` delay an application by ``spike`` seconds."""

    def __init__(self, probability: float = 0.01, spike: float = 2.0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.spike = spike
        self.spikes_injected = 0

    def intercept(self, flowmod: FlowMod, apply: Callable[[FlowMod, float], None]) -> bool:
        if self.rng.uniform(0.0, 1.0) >= self.probability:
            return False
        self.spikes_injected += 1
        self.sim.schedule_callback(self.spike, apply, flowmod, self.sim.now + self.spike)
        return True


class ReorderFault(Fault):
    """Hold applications in a small buffer and release them in shuffled order."""

    def __init__(self, window: int = 4, hold_time: float = 0.02) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.hold_time = hold_time
        self._buffer: List[FlowMod] = []
        self._apply: Optional[Callable[[FlowMod, float], None]] = None
        self.reorders_performed = 0

    def intercept(self, flowmod: FlowMod, apply: Callable[[FlowMod, float], None]) -> bool:
        self._apply = apply
        self._buffer.append(flowmod)
        if len(self._buffer) >= self.window:
            self._flush()
        else:
            self.sim.schedule_callback(self.hold_time, self._flush_if_stale, len(self._buffer))
        return True

    def _flush_if_stale(self, expected_size: int) -> None:
        if self._buffer and len(self._buffer) <= expected_size:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer or self._apply is None:
            return
        batch, self._buffer = self._buffer, []
        shuffled = self.rng.shuffle(batch)
        if shuffled != batch:
            self.reorders_performed += 1
        for flowmod in shuffled:
            self._apply(flowmod, self.sim.now)


class FaultInjector:
    """Installs faults at a switch's control→data plane boundary."""

    def __init__(self, switch: Switch, faults: List[Fault], seed: int = 7) -> None:
        self.switch = switch
        self.faults = faults
        self.rng = SeededRandom(seed)
        self._original_apply = switch.dataplane.apply_flowmod
        for fault in faults:
            fault.arm(switch.sim, self.rng.fork(type(fault).__name__))
        # Redirect the control plane's data-plane hook through the faults.
        switch.controlplane._apply_to_dataplane = self._apply_with_faults

    def _apply_with_faults(self, flowmod: FlowMod, now: float) -> None:
        for fault in self.faults:
            if fault.intercept(flowmod, self._original_apply):
                return
        self._original_apply(flowmod, now)

    def remove(self) -> None:
        """Restore the unfaulted behaviour."""
        self.switch.controlplane._apply_to_dataplane = self._original_apply

    def injected_counts(self) -> List[Tuple[str, int]]:
        """``(fault name, activation count)`` pairs for reporting."""
        counts = []
        for fault in self.faults:
            if isinstance(fault, DelaySpikeFault):
                counts.append((type(fault).__name__, fault.spikes_injected))
            elif isinstance(fault, ReorderFault):
                counts.append((type(fault).__name__, fault.reorders_performed))
            else:
                counts.append((type(fault).__name__, 0))
        return counts
