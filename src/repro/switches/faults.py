"""Deprecated shim: fault injection moved to :mod:`repro.faults`.

The ad-hoc wrappers that used to live here grew into a full subsystem — a
fault-model registry, control-channel and lifecycle faults, and declarative
:class:`~repro.faults.plan.FaultPlan` support on every session — under
``src/repro/faults/``.  This module re-exports the historical names so
existing imports keep working:

* ``Fault`` is now :class:`repro.faults.base.DataPlaneFault` (same
  ``arm``/``intercept`` contract);
* ``DelaySpikeFault`` / ``ReorderFault`` are the registered ``delay-spike``
  and ``reorder`` models (same parameters, same RNG draws);
* ``FaultInjector`` is the legacy arm-and-wrap harness.

New code should import from :mod:`repro.faults` and describe faults with a
:class:`~repro.faults.plan.FaultPlan`.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.switches.faults is deprecated; import from repro.faults instead "
    "(DelaySpikeFault/ReorderFault/RuleDropFault live in "
    "repro.faults.dataplane, FaultInjector in repro.faults.harness, and "
    "Fault is repro.faults.base.DataPlaneFault)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.faults.base import DataPlaneFault as Fault  # noqa: E402
from repro.faults.dataplane import (  # noqa: E402
    DelaySpikeFault,
    ReorderFault,
    RuleDropFault,
)
from repro.faults.harness import DataPlaneFaultHarness, FaultInjector  # noqa: E402

__all__ = [
    "DataPlaneFaultHarness",
    "DelaySpikeFault",
    "Fault",
    "FaultInjector",
    "ReorderFault",
    "RuleDropFault",
]
