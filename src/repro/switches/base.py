"""The composed switch model: ports + control plane + data plane."""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

from repro.openflow.actions import Action, apply_actions
from repro.openflow.connection import ConnectionEndpoint
from repro.openflow.constants import CONTROLLER_PORT, FLOOD_PORT, PacketInReason
from repro.openflow.messages import FlowMod, OFMessage, PacketIn
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom
from repro.switches.controlplane import ControlPlane
from repro.switches.dataplane import DataPlane
from repro.switches.profiles import SwitchProfile

#: Signature of the callable a port uses to hand a packet to its link:
#: ``(packet) -> None``.
PortTransmit = Callable[[Packet], None]


class Switch:
    """One OpenFlow switch in the simulated network.

    The switch is profile-driven: all behavioural differences between the
    well-behaved software switches and the buggy hardware switch live in the
    :class:`~repro.switches.profiles.SwitchProfile`, not in subclasses.
    :class:`~repro.switches.software.SoftwareSwitch` and
    :class:`~repro.switches.hardware.HardwareSwitch` only pick defaults.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: SwitchProfile,
        datapath_id: Optional[int] = None,
        rng: Optional[SeededRandom] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.profile = profile
        # Process-stable default: ``hash()`` on strings is randomized per
        # interpreter (PYTHONHASHSEED), which made the derived datapath id —
        # and the rng seed below — vary run to run for directly-constructed
        # switches (the Network always passes both explicitly).
        if datapath_id is None:
            datapath_id = zlib.crc32(name.encode("utf-8")) % (1 << 32)
        self.datapath_id = datapath_id
        self.rng = rng or SeededRandom(self.datapath_id & 0xFFFF)

        self.dataplane = DataPlane(
            table_mode=profile.table_mode,
            capacity=profile.table_capacity,
            name=f"{name}.data",
        )
        self.controlplane = ControlPlane(
            sim,
            profile,
            send_to_controller=self._send_to_controller,
            apply_to_dataplane=self.dataplane.apply_flowmod,
            inject_packet=self.inject_packet,
            rng=self.rng.fork("controlplane"),
            datapath_id=self.datapath_id,
            ports=[],
            name=name,
        )

        self._ports: Dict[int, PortTransmit] = {}
        self._controller_endpoint: Optional[ConnectionEndpoint] = None
        self._started = False
        self._crashed = False
        #: Bumped on every crash; work captured under an older epoch (a
        #: delayed fault callback, a handler mid-yield) must not take effect.
        self.crash_epoch = 0
        #: ``(switch name, "crash"|"restore")`` observers — the recovery
        #: subsystem's reconnect hook.  Empty (and never iterated) unless
        #: something registered, so the fault-free path is unchanged.
        self._lifecycle_listeners: List[Callable[[str, str], None]] = []

        # Counters used by tests and the microbenchmarks.
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_to_controller = 0

    # -- wiring ----------------------------------------------------------------
    def attach_port(self, port_no: int, transmit: PortTransmit) -> None:
        """Attach a link transmit function to ``port_no``."""
        if port_no in self._ports:
            raise ValueError(f"port {port_no} of {self.name} already attached")
        self._ports[port_no] = transmit
        self.controlplane.ports = sorted(self._ports)

    @property
    def port_numbers(self) -> List[int]:
        """The attached port numbers, sorted."""
        return sorted(self._ports)

    def connect_controller(self, endpoint: ConnectionEndpoint) -> None:
        """Bind the switch to its side of a controller connection."""
        self._controller_endpoint = endpoint
        endpoint.on_message(self.controlplane.receive)

    def start(self) -> None:
        """Start the switch's control-plane processes."""
        if self._started:
            return
        self._started = True
        self.controlplane.start()

    # -- lifecycle faults --------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the switch is currently down (see :meth:`crash`)."""
        return self._crashed

    def crash(self, wipe_control_plane: bool = True) -> None:
        """Power-fail the switch: ports go dark and the flow tables are wiped.

        While crashed, every packet arriving on a port and every message on
        the control connection is silently lost, and in-flight data-plane
        synchronisation state is discarded.  ``wipe_control_plane=False``
        models a data-plane-only reset (line-card reboot): the agent's table
        survives but packets hit an empty data plane until something
        re-synchronises it.
        """
        self._crashed = True
        self.crash_epoch += 1
        self.dataplane.wipe()
        self.controlplane.crash_reset(wipe_table=wipe_control_plane)
        self._notify_lifecycle("crash")

    def restore(self) -> None:
        """Bring a crashed switch back up — with whatever (empty) tables it has.

        A no-op on a switch that is not crashed: a stray restore (overlapping
        fault schedules, double restore) must not fire reconnect hooks or
        trigger a resync.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.controlplane.restore()
        self._notify_lifecycle("restore")

    def on_lifecycle(self, listener: Callable[[str, str], None]) -> None:
        """Register a ``(switch name, event)`` crash/restore observer."""
        self._lifecycle_listeners.append(listener)

    def _notify_lifecycle(self, event: str) -> None:
        for listener in self._lifecycle_listeners:
            listener(self.name, event)

    # -- control plane output ---------------------------------------------------
    def _send_to_controller(self, message: OFMessage) -> None:
        # A crashed switch's connection is down: nothing it was about to say
        # (echo/barrier replies queued behind processing delays) gets out.
        if self._controller_endpoint is None or self._crashed:
            return
        self._controller_endpoint.send(message)

    # -- data plane ----------------------------------------------------------------
    def receive_packet(self, packet: Packet, in_port: int) -> None:
        """A packet arrived on ``in_port``; classify and forward it."""
        if self._crashed:
            return
        self.packets_received += 1
        packet.trace.append((self.sim.now, self.name))
        self.sim.schedule_callback(
            self.profile.forwarding_latency, self._forward, packet, in_port
        )

    def _forward(self, packet: Packet, in_port: int) -> None:
        if self._crashed:
            return
        result = self.dataplane.process_packet(packet, in_port)
        if result.to_controller:
            self.packets_to_controller += 1
            captured = result.packet.copy() if result.packet is not None else packet.copy()
            self.controlplane.send_packet_in(
                lambda: PacketIn(
                    captured,
                    in_port=in_port,
                    reason=PacketInReason.ACTION,
                    datapath_id=self.datapath_id,
                )
            )
        for port in result.output_ports:
            self._transmit(result.packet, port, in_port)

    def inject_packet(self, packet: Packet, actions: List[Action], in_port: int) -> None:
        """PacketOut semantics: apply ``actions`` to ``packet`` and emit it."""
        if self._crashed:
            return
        forwarded = packet.copy()
        ports = apply_actions(forwarded, actions)
        for port in ports:
            if port == CONTROLLER_PORT:
                captured = forwarded.copy()
                self.controlplane.send_packet_in(
                    lambda: PacketIn(
                        captured,
                        in_port=in_port,
                        reason=PacketInReason.ACTION,
                        datapath_id=self.datapath_id,
                    )
                )
            else:
                self._transmit(forwarded, port, in_port)

    def _transmit(self, packet: Packet, port: int, in_port: int) -> None:
        if port == FLOOD_PORT:
            for port_no, transmit in self._ports.items():
                if port_no != in_port:
                    self.packets_forwarded += 1
                    transmit(packet.copy())
            return
        transmit = self._ports.get(port)
        if transmit is None:
            # Forwarding to a non-existent port silently drops, as hardware does.
            return
        self.packets_forwarded += 1
        transmit(packet)

    # -- convenience for tests ---------------------------------------------------------
    def install_rule_directly(self, flowmod: FlowMod) -> None:
        """Apply a rule to both planes immediately, bypassing the control channel.

        Used by tests and by experiment setup phases that pre-install state
        before the measured part of a run begins.
        """
        self.controlplane.table.apply_flowmod(flowmod, now=self.sim.now)
        self.dataplane.apply_flowmod(flowmod, now=self.sim.now)

    def rules_in_dataplane(self) -> int:
        """Number of rules currently visible to packets."""
        return self.dataplane.occupancy()

    def rules_in_controlplane(self) -> int:
        """Number of rules in the control-plane table."""
        return len(self.controlplane.table)

    def planes_agree(self) -> bool:
        """Whether control- and data-plane tables currently hold the same rules."""
        control_only, data_only = self.dataplane.divergence_from(self.controlplane.table)
        return not control_only and not data_only

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Switch {self.name} profile={self.profile.name} ports={self.port_numbers}>"
