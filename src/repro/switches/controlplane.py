"""The switch control plane: the OpenFlow agent.

The control plane consumes messages from the controller connection in FIFO
order, spends model-defined CPU time on each, updates its *own* flow table
immediately, and hands rule modifications to the data-plane synchronisation
machinery defined by the switch profile.  Depending on the profile it answers
barriers either when the control plane has caught up (buggy, observed on
hardware) or when the data plane has (correct).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.openflow.constants import StatsType
from repro.openflow.flowtable import FlowTable, TableFullError
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    OFMessage,
    PacketOut,
    StatsReply,
    StatsRequest,
)
from repro.obs import tracer as obs_tracer
from repro.obs.events import (
    PHASE_ACK_SENT,
    PHASE_CONTROL_APPLIED,
    PHASE_SWITCH_RECEIVED,
)
from repro.openflow.constants import OFErrorCode, OFErrorType
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.resources import Queue
from repro.sim.rng import SeededRandom
from repro.switches.profiles import BarrierMode, DataPlaneSyncModel, SwitchProfile

_op_ids = itertools.count(1)


class PendingOperation:
    """A rule modification accepted by the control plane but not yet visible
    in the data plane."""

    __slots__ = (
        "op_id",
        "flowmod",
        "received_at",
        "control_applied_at",
        "barrier_epoch",
        "applied",
        "applied_at",
    )

    def __init__(self, flowmod: FlowMod, received_at: float, barrier_epoch: int) -> None:
        self.op_id = next(_op_ids)
        self.flowmod = flowmod
        self.received_at = received_at
        self.control_applied_at: Optional[float] = None
        self.barrier_epoch = barrier_epoch
        self.applied = False
        self.applied_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "applied" if self.applied else "pending"
        return f"<PendingOp #{self.op_id} xid={self.flowmod.xid} {state}>"


class _BarrierWaiter:
    """Bookkeeping for a barrier whose reply must wait for the data plane."""

    __slots__ = ("request", "waiting_for", "replied")

    def __init__(self, request: BarrierRequest, waiting_for: set) -> None:
        self.request = request
        self.waiting_for = waiting_for
        self.replied = False


class ControlPlane:
    """OpenFlow agent of one switch.

    Parameters
    ----------
    sim:
        The simulation kernel.
    profile:
        Behavioural calibration (:class:`SwitchProfile`).
    send_to_controller:
        Callback used to emit messages on the controller connection.
    apply_to_dataplane:
        Callback ``(flowmod, now) -> None`` that makes a rule visible to
        packets.
    inject_packet:
        Callback ``(packet, actions, in_port) -> None`` implementing
        PacketOut semantics on the data plane / ports.
    rng:
        Seeded randomness source for jitter and reordering.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: SwitchProfile,
        send_to_controller: Callable[[OFMessage], None],
        apply_to_dataplane: Callable[[FlowMod, float], None],
        inject_packet: Callable[[Packet, list, int], None],
        rng: Optional[SeededRandom] = None,
        datapath_id: int = 1,
        ports: Optional[List[int]] = None,
        name: str = "switch",
    ) -> None:
        profile.validate()
        self.sim = sim
        self.profile = profile
        self.name = name
        self.datapath_id = datapath_id
        self.ports = list(ports or [])
        self._send = send_to_controller
        self._apply_to_dataplane = apply_to_dataplane
        self._inject_packet = inject_packet
        self.rng = rng or SeededRandom(datapath_id)

        #: Control-plane view of the flow table (always up to date with
        #: processed FlowMods; may be *ahead* of the data plane).
        self.table = FlowTable(mode=profile.table_mode, capacity=profile.table_capacity,
                               name=f"{name}.control")

        self.inbox: Queue = Queue(sim, name=f"{name}.inbox")
        self._pending_ops: Deque[PendingOperation] = deque()
        self._barrier_waiters: List[_BarrierWaiter] = []
        self._barrier_epoch = 0
        self._stolen_time = 0.0
        self._next_packet_out_time = 0.0
        self._next_packet_in_time = 0.0

        # Measurement hooks ---------------------------------------------------
        #: ``flowmod xid -> control-plane apply time``.
        self.control_apply_log: Dict[int, float] = {}
        #: ``(time, barrier xid)`` for every barrier reply sent.
        self.barrier_reply_log: List[Tuple[float, int]] = []
        self.flowmods_processed = 0
        self.packet_outs_processed = 0
        self.packet_ins_sent = 0
        #: FlowMod xids applied since the last (re)boot: controller-side
        #: retransmissions of an un-acked FlowMod are idempotent within one
        #: boot, but a retransmit arriving after a crash-wipe must apply —
        #: the rule is gone — so the set is cleared by :meth:`crash_reset`
        #: (*not* :attr:`control_apply_log`, which deliberately survives
        #: crashes for measurement).
        self._applied_xids: set = set()
        self.duplicate_flowmods = 0

        self._processes_started = False
        #: Set while the switch is crashed (lifecycle faults): inbound
        #: messages are lost and queued ones are discarded unprocessed.
        self.crashed = False
        #: Bumped on every crash; a handler that started before a crash must
        #: not take effect after it, even once the switch has restarted.
        self.crash_epoch = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start the control-plane processing and data-plane sync processes."""
        if self._processes_started:
            return
        self._processes_started = True
        self.sim.process(self._main_loop(), name=f"{self.name}.controlplane")
        if self.profile.sync_model == DataPlaneSyncModel.PERIODIC_BATCH:
            self.sim.process(self._periodic_sync_loop(), name=f"{self.name}.sync")
        elif self.profile.sync_model == DataPlaneSyncModel.RATE_LIMITED:
            self.sim.process(self._rate_limited_sync_loop(), name=f"{self.name}.sync")

    def receive(self, message: OFMessage) -> None:
        """Entry point for messages arriving on the controller connection."""
        if self.crashed:
            # The TCP connection of a crashed switch is gone; anything the
            # controller still had in flight is lost.
            return
        tr = obs_tracer.TRACER
        if tr.active and isinstance(message, (FlowMod, BarrierRequest)):
            tr.rule(PHASE_SWITCH_RECEIVED, self.sim.now, self.name,
                    message.xid, detail=type(message).__name__)
        self.inbox.put(message)

    def crash_reset(self, wipe_table: bool = True) -> None:
        """Drop all in-flight state on a switch crash (lifecycle faults)."""
        self.crashed = True
        self.crash_epoch += 1
        self.inbox.clear()
        self._pending_ops.clear()
        self._barrier_waiters.clear()
        self._stolen_time = 0.0
        self._applied_xids.clear()
        if wipe_table:
            self.table.clear()

    def restore(self) -> None:
        """Accept control-channel traffic again after a restart."""
        self.crashed = False

    # -- properties ------------------------------------------------------------
    @property
    def pending_dataplane_ops(self) -> int:
        """Number of modifications not yet visible in the data plane."""
        return len(self._pending_ops)

    # -- main control-plane loop ---------------------------------------------------
    def _main_loop(self):
        while True:
            message = yield self.inbox.get()
            if self.crashed:
                # Messages queued before the crash die with the agent.
                continue
            # Time stolen by PacketIn encapsulation since the last message is
            # charged here, serialising it with FlowMod processing the way a
            # single management CPU would.
            if self._stolen_time > 0:
                stolen, self._stolen_time = self._stolen_time, 0.0
                yield stolen
            yield from self._dispatch(message)

    def _dispatch(self, message: OFMessage):
        if isinstance(message, FlowMod):
            yield from self._handle_flowmod(message)
        elif isinstance(message, BarrierRequest):
            yield from self._handle_barrier(message)
        elif isinstance(message, PacketOut):
            yield from self._handle_packet_out(message)
        elif isinstance(message, EchoRequest):
            yield self.profile.trivial_processing_time
            self._send(EchoReply(payload=message.payload, xid=message.xid))
        elif isinstance(message, FeaturesRequest):
            yield self.profile.trivial_processing_time
            self._send(FeaturesReply(self.datapath_id, self.ports, xid=message.xid))
        elif isinstance(message, StatsRequest):
            yield from self._handle_stats(message)
        elif isinstance(message, Hello):
            yield self.profile.trivial_processing_time
        else:
            # Unknown message: consume trivial time and ignore, as a real
            # agent would for unsupported-but-harmless messages.
            yield self.profile.trivial_processing_time

    # -- FlowMod ---------------------------------------------------------------------
    def _handle_flowmod(self, flowmod: FlowMod):
        epoch = self.crash_epoch
        processing = self.rng.jitter(
            self.profile.flowmod_processing_time(len(self.table)),
            self.profile.flowmod_jitter,
        )
        yield processing
        if self.crashed or self.crash_epoch != epoch:
            # The agent died mid-processing (even if it restarted since):
            # the modification is lost and must not touch the wiped tables.
            return
        if flowmod.xid in self._applied_xids:
            # A controller-side retransmission of a FlowMod this boot already
            # applied: drop it (same-xid delivery is exactly-once per boot).
            self.duplicate_flowmods += 1
            return
        try:
            self.table.apply_flowmod(flowmod, now=self.sim.now)
        except TableFullError:
            self._send(ErrorMessage(OFErrorType.FLOW_MOD_FAILED,
                                    int(OFErrorCode.ALL_TABLES_FULL), data=flowmod.xid,
                                    xid=flowmod.xid))
            return
        self._applied_xids.add(flowmod.xid)
        self.flowmods_processed += 1
        self.control_apply_log[flowmod.xid] = self.sim.now
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_CONTROL_APPLIED, self.sim.now, self.name, flowmod.xid)

        operation = PendingOperation(flowmod, received_at=self.sim.now,
                                     barrier_epoch=self._barrier_epoch)
        operation.control_applied_at = self.sim.now
        if self.profile.sync_model == DataPlaneSyncModel.IMMEDIATE:
            self._apply_operation(operation)
        else:
            self._pending_ops.append(operation)

    def _apply_operation(self, operation: PendingOperation) -> None:
        if self.crashed:
            # A sync loop woke up with an operation popped before the crash;
            # the data plane of a dead switch must stay wiped.
            return
        self._apply_to_dataplane(operation.flowmod, self.sim.now)
        operation.applied = True
        operation.applied_at = self.sim.now
        self._check_barrier_waiters(operation)

    # -- barriers ---------------------------------------------------------------------
    def _handle_barrier(self, request: BarrierRequest):
        epoch = self.crash_epoch
        yield self.profile.trivial_processing_time
        if self.crashed or self.crash_epoch != epoch:
            return
        self._barrier_epoch += 1
        if (self.profile.barrier_mode == BarrierMode.CONTROL_PLANE
                or not self._pending_ops):
            self._send_barrier_reply(request)
            return
        waiter = _BarrierWaiter(request, {op.op_id for op in self._pending_ops})
        self._barrier_waiters.append(waiter)

    def _send_barrier_reply(self, request: BarrierRequest) -> None:
        self.barrier_reply_log.append((self.sim.now, request.xid))
        tr = obs_tracer.TRACER
        if tr.active:
            tr.rule(PHASE_ACK_SENT, self.sim.now, self.name, request.xid,
                    detail="barrier-reply")
        self._send(BarrierReply(xid=request.xid))

    def _check_barrier_waiters(self, operation: PendingOperation) -> None:
        finished: List[_BarrierWaiter] = []
        for waiter in self._barrier_waiters:
            waiter.waiting_for.discard(operation.op_id)
            if not waiter.waiting_for and not waiter.replied:
                waiter.replied = True
                finished.append(waiter)
        if finished:
            self._barrier_waiters = [w for w in self._barrier_waiters if not w.replied]
            for waiter in finished:
                self._send_barrier_reply(waiter.request)

    # -- PacketOut / PacketIn -------------------------------------------------------------
    def _handle_packet_out(self, message: PacketOut):
        epoch = self.crash_epoch
        yield self.profile.packet_out_processing_time
        if self.crashed or self.crash_epoch != epoch:
            return
        self.packet_outs_processed += 1
        # Enforce the hardware PacketOut rate cap on the egress side.
        spacing = 1.0 / self.profile.packet_out_rate
        emit_at = max(self.sim.now, self._next_packet_out_time)
        self._next_packet_out_time = emit_at + spacing
        delay = emit_at - self.sim.now
        self.sim.schedule_callback(
            delay, self._inject_packet, message.packet, message.actions, message.in_port
        )

    def send_packet_in(self, packet_in_factory: Callable[[], OFMessage]) -> None:
        """Rate-limit and send a PacketIn built by ``packet_in_factory``.

        Called from the data-plane path; charges the (small) encapsulation
        cost to the control-plane CPU as stolen time.
        """
        spacing = 1.0 / self.profile.packet_in_rate
        emit_at = max(self.sim.now, self._next_packet_in_time)
        self._next_packet_in_time = emit_at + spacing
        self._stolen_time += self.profile.packet_in_processing_time
        self.packet_ins_sent += 1
        self.sim.schedule_callback(emit_at - self.sim.now, lambda: self._send(packet_in_factory()))

    # -- statistics ---------------------------------------------------------------------------
    def _handle_stats(self, request: StatsRequest):
        epoch = self.crash_epoch
        yield self.profile.trivial_processing_time
        if self.crashed or self.crash_epoch != epoch:
            return
        if request.stats_type == StatsType.FLOW:
            body = [
                {
                    "priority": entry.priority,
                    "match": repr(entry.match),
                    "packets": entry.packet_count,
                    "bytes": entry.byte_count,
                }
                for entry in self.table
                if request.match.is_match_all or request.match.covers(entry.match)
            ]
        elif request.stats_type == StatsType.TABLE:
            body = [{"table": self.table.name, "active": len(self.table)}]
        elif request.stats_type == StatsType.AGGREGATE:
            body = [{
                "flows": len(self.table),
                "packets": sum(entry.packet_count for entry in self.table),
            }]
        else:
            body = [{"switch": self.name, "datapath_id": self.datapath_id}]
        self._send(StatsReply(request.stats_type, body=body, xid=request.xid))

    # -- data-plane synchronisation ------------------------------------------------------------
    def _periodic_sync_loop(self):
        """PERIODIC_BATCH model: every ``sync_period`` push all pending ops."""
        # Offset the first round so switches created together do not sync in
        # lock step (the hardware's sync phase is arbitrary relative to the
        # controller's update).
        yield self.rng.uniform(0.0, max(self.profile.sync_period, 1e-6))
        while True:
            if self._pending_ops:
                epoch = self.crash_epoch
                batch = list(self._pending_ops)
                self._pending_ops.clear()
                if self.profile.reorders_across_barriers and len(batch) > 1:
                    batch = self.rng.shuffle(batch)
                for operation in batch:
                    if self.profile.sync_per_rule_time > 0:
                        yield self.profile.sync_per_rule_time
                    if self.crash_epoch != epoch:
                        break  # the rest of the batch died with the switch
                    self._apply_operation(operation)
            yield self.profile.sync_period

    def _rate_limited_sync_loop(self):
        """RATE_LIMITED model: ops trickle into the data plane at a bounded rate.

        The effective per-rule apply time grows with the number of rules
        already pushed to the data plane (TCAM insertion slows down as the
        table fills), which is what makes the lag between control plane and
        data plane grow over a long burst of modifications.
        """
        base_spacing = 1.0 / self.profile.dataplane_apply_rate
        applied = 0
        while True:
            if not self._pending_ops:
                yield base_spacing / 4
                continue
            if self.profile.reorders_across_barriers and len(self._pending_ops) > 1:
                index = self.rng.randint(0, len(self._pending_ops) - 1)
                operation = self._pending_ops[index]
                del self._pending_ops[index]
            else:
                operation = self._pending_ops.popleft()
            spacing = base_spacing * (
                1.0 + self.profile.dataplane_occupancy_slowdown * applied
            )
            earliest = operation.control_applied_at + self.profile.dataplane_extra_latency
            epoch = self.crash_epoch
            wait = max(spacing, earliest - self.sim.now)
            yield wait
            if self.crash_epoch != epoch:
                continue  # the popped operation died with the switch
            self._apply_operation(operation)
            applied += 1
