"""Measurement and analysis utilities.

These turn the raw simulation artefacts (delivery records, switch data-plane
apply logs, RUM confirmation logs, executor issue/ack times) into the
quantities the paper reports:

* per-flow *broken time* and the fraction of flows broken for at least a
  given duration (Figure 1b),
* per-flow old-path/new-path switchover times (Figures 6 and 7),
* per-rule delay between data-plane activation and control-plane
  acknowledgment (Figure 8),
* usable rule-update rates (Table 1),
* text rendering of tables and simple CDF/series plots for the experiment
  harness and benchmark output.
"""

from repro.analysis.cdf import Distribution, cdf_points, percentile
from repro.analysis.flowstats import (
    FlowUpdateStats,
    broken_time_distribution,
    flow_update_stats,
)
from repro.analysis.activation import ActivationDelays, activation_delays
from repro.analysis.report import format_table, render_cdf, render_series, summarize_distribution

__all__ = [
    "ActivationDelays",
    "Distribution",
    "FlowUpdateStats",
    "activation_delays",
    "broken_time_distribution",
    "cdf_points",
    "flow_update_stats",
    "format_table",
    "percentile",
    "render_cdf",
    "render_series",
    "summarize_distribution",
]
