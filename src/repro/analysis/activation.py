"""Data-plane vs control-plane activation analysis (Figure 8).

For every rule modification the low-level benchmark measures

* *data-plane activation* — when packets matching the rule start being
  forwarded according to it (ground truth: the switch data plane's apply
  log), and
* *control-plane activation* — when the controller receives the confirmation
  that the rule was installed.

The paper plots ``control-plane activation - data-plane activation`` per
rule: negative values mean the controller was told too early (incorrect
behaviour), positive values are wasted waiting time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cdf import Distribution
from repro.switches.base import Switch


@dataclass
class ActivationDelays:
    """Per-rule activation delays of one technique."""

    technique: str
    #: ``xid -> (data-plane activation, control-plane ack, delay)``.
    per_rule: Dict[int, Tuple[float, float, float]]

    @property
    def delays(self) -> List[float]:
        """All per-rule delays (ack time minus data-plane activation)."""
        return [delay for (_dp, _cp, delay) in self.per_rule.values()]

    @property
    def negative_count(self) -> int:
        """Rules acknowledged before they were active (incorrect behaviour)."""
        return sum(1 for delay in self.delays if delay < 0)

    @property
    def never_negative(self) -> bool:
        """Whether the technique never acknowledged early."""
        return self.negative_count == 0

    def summary(self) -> Distribution:
        """Distribution summary of the delays."""
        return Distribution.from_values(self.delays)

    def ranked(self) -> List[Tuple[int, float]]:
        """``(rank, delay)`` pairs sorted by delay — the paper's Figure 8 axes."""
        return list(enumerate(sorted(self.delays), start=1))


def dataplane_activation_times(switch: Switch) -> Dict[int, float]:
    """``FlowMod xid -> first time it was applied to the data plane``."""
    activations: Dict[int, float] = {}
    for time, xid in switch.dataplane.apply_log:
        activations.setdefault(xid, time)
    return activations


def activation_delays(
    switch: Switch,
    ack_times: Dict[int, float],
    technique: str = "",
    xids: Optional[Sequence[int]] = None,
) -> ActivationDelays:
    """Correlate data-plane activations with controller-visible ack times.

    ``ack_times`` maps FlowMod xids to the time the controller learned the
    modification was complete (from the controller's ack log or RUM's
    confirmation log).  Restrict to ``xids`` when only a subset of the
    switch's modifications belongs to the experiment.
    """
    dataplane = dataplane_activation_times(switch)
    wanted = set(xids) if xids is not None else None
    per_rule: Dict[int, Tuple[float, float, float]] = {}
    for xid, acked_at in ack_times.items():
        if wanted is not None and xid not in wanted:
            continue
        applied_at = dataplane.get(xid)
        if applied_at is None:
            continue
        per_rule[xid] = (applied_at, acked_at, acked_at - applied_at)
    return ActivationDelays(technique=technique, per_rule=per_rule)
