"""Plain-text rendering of experiment results.

The experiment harness and the benchmark suite print their results as simple
aligned tables and ASCII series so that ``pytest benchmarks/ --benchmark-only``
output can be compared side by side with the paper's tables and figures
without any plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cdf import Distribution, cdf_points


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned, pipe-separated table."""
    columns = len(headers)
    normalised_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
        normalised_rows.append([_format_cell(cell) for cell in row])
    header_cells = [str(cell) for cell in headers]
    widths = [
        max(len(header_cells[index]), *(len(row[index]) for row in normalised_rows))
        if normalised_rows else len(header_cells[index])
        for index in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(cell.ljust(width) for cell, width in zip(header_cells, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in normalised_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


#: Scenario metric keys that count safety violations (summed per group).
VIOLATION_METRICS = (
    "http_bypassing_firewall",
    "residual_drained_deliveries",
)

#: Column headers of :func:`correctness_under_fault_rows`.
RESILIENCE_HEADERS = ["fault", "technique", "runs", "completed",
                      "mean duration [s]", "dropped", "violations",
                      "max broken [s]", "fault events", "recovered",
                      "reinstalled"]


def correctness_under_fault_rows(
    groups: Dict[Tuple[str, str], Sequence[Dict[str, object]]],
) -> List[List[object]]:
    """Per-(fault, technique) correctness rows from flat run summaries.

    ``groups`` maps ``(fault label, technique)`` to
    :meth:`~repro.session.record.RunRecord.summary` dicts (campaign records
    qualify as-is).  One row per group: how often the update completed, how
    long it took, and what correctness damage — dropped packets, safety
    violations, broken time — the fault caused, next to the number of fault
    activations that caused it.  Fault-free groups (label ``"none"``) serve
    as the control rows.

    The last two columns report the recovery subsystem: ``recovered`` counts
    runs whose armed recovery manager reported full reconvergence (``-``
    when no run of the group armed recovery — the pre-recovery rendering),
    and ``reinstalled`` sums the rules replayed from shadow state.
    """
    rows: List[List[object]] = []
    for (fault, technique), summaries in sorted(groups.items()):
        durations = [s["update_duration"] for s in summaries
                     if s.get("update_duration") is not None]
        broken = [s.get("max_broken_time") or 0.0 for s in summaries]
        violations = sum(
            int((s.get("metrics") or {}).get(key, 0))
            for s in summaries for key in VIOLATION_METRICS
        )
        recoveries = [s.get("recovery") or {} for s in summaries]
        recoveries = [r for r in recoveries if r]
        recovered = (
            f"{sum(1 for r in recoveries if r.get('reconverged'))}/{len(recoveries)}"
            if recoveries else "-"
        )
        reinstalled = (sum(int(r.get("rules_reinstalled") or 0)
                           for r in recoveries) if recoveries else "-")
        rows.append([
            fault,
            technique,
            len(summaries),
            f"{sum(1 for s in summaries if s.get('completed'))}/{len(summaries)}",
            (sum(durations) / len(durations)) if durations else "-",
            sum(int(s.get("dropped_packets") or 0) for s in summaries),
            violations,
            max(broken, default=0.0),
            sum(sum((s.get("faults") or {}).values()) for s in summaries),
            recovered,
            reinstalled,
        ])
    return rows


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_run_summaries(summaries: Sequence[Dict[str, object]],
                         title: str = "") -> str:
    """Table over unified run-record summaries, one row per record.

    ``summaries`` are flat dicts with the keys of
    ``repro.session.record.SUMMARY_KEYS`` (what ``RunRecord.summary()``
    returns and campaign result files store per cell); this renderer is the
    one table every run path can feed.
    """
    rows = []
    for summary in summaries:
        duration = summary.get("update_duration")
        digest = summary.get("digest") or ""
        rows.append([
            summary.get("scenario") or summary.get("kind", "?"),
            summary.get("technique", "?"),
            summary.get("topology", "?"),
            summary.get("seed", "?"),
            duration if duration is not None else "-",
            summary.get("dropped_packets", 0),
            summary.get("max_broken_time", 0.0),
            digest[:8] if digest else "-",
        ])
    return format_table(
        ["workload", "technique", "topology", "seed", "duration [s]",
         "dropped", "max broken [s]", "digest"],
        rows,
        title=title,
    )


def render_series(series: Dict[str, Sequence[float]], title: str = "",
                  unit: str = "") -> str:
    """Render named value series as summary rows (count / mean / p90 / max)."""
    rows = []
    for name, values in series.items():
        if not values:
            rows.append([name, 0, "-", "-", "-"])
            continue
        summary = Distribution.from_values(list(values))
        rows.append([name, summary.count, summary.mean, summary.p90, summary.maximum])
    suffix = f" [{unit}]" if unit else ""
    return format_table(
        ["series", "count", f"mean{suffix}", f"p90{suffix}", f"max{suffix}"],
        rows,
        title=title,
    )


def render_cdf(values: Sequence[float], title: str = "", width: int = 50,
               unit: str = "s") -> str:
    """A small ASCII CDF: one bar per decile."""
    points = cdf_points(list(values))
    if not points:
        return f"{title}\n(no samples)"
    lines = [title] if title else []
    deciles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    total = len(points)
    for fraction in deciles:
        index = min(int(fraction * total) - 1, total - 1)
        index = max(index, 0)
        value = points[index][0]
        bar = "#" * max(1, int(fraction * width))
        lines.append(f"p{int(fraction * 100):>3} {value:>10.4f}{unit} {bar}")
    return "\n".join(lines)


def summarize_distribution(values: Sequence[float], label: str = "",
                           unit: str = "s") -> str:
    """One-line textual summary of a distribution."""
    if not values:
        return f"{label}: no samples"
    summary = Distribution.from_values(list(values))
    return (
        f"{label}: n={summary.count} min={summary.minimum:.4f}{unit} "
        f"median={summary.median:.4f}{unit} mean={summary.mean:.4f}{unit} "
        f"p90={summary.p90:.4f}{unit} max={summary.maximum:.4f}{unit}"
    )


def render_flow_update_curves(
    per_technique: Dict[str, List[Tuple[Optional[float], Optional[float]]]],
    title: str = "",
) -> str:
    """Summarise (last-old-path, first-new-path) pairs per technique.

    The full curves are what the paper plots; for terminal output the table
    reports, per technique, the mean/median/max of the first-new-path times
    and the worst gap between the curves (the longest per-flow outage).
    """
    rows = []
    for technique, pairs in per_technique.items():
        new_times = [new for (_old, new) in pairs if new is not None]
        gaps = [
            max(0.0, new - old)
            for (old, new) in pairs
            if old is not None and new is not None
        ]
        if new_times:
            summary = Distribution.from_values(new_times)
            worst_gap = max(gaps) if gaps else 0.0
            rows.append([technique, summary.count, summary.mean, summary.maximum, worst_gap])
        else:
            rows.append([technique, 0, "-", "-", "-"])
    return format_table(
        ["technique", "flows", "mean update time [s]", "max update time [s]",
         "worst outage [s]"],
        rows,
        title=title,
    )
