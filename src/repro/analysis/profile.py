"""Rendering of :class:`~repro.obs.profiler.ProfileReport` attributions.

The profiler's raw output is per-callback-site accounting; this module turns
it into the plain-text views the kernel-optimisation work reads: a top-N
hot-callback table (where the wall time went), the per-event-class rollup,
and the per-phase wall/memory split.  Everything renders through the same
:func:`~repro.analysis.report.format_table` machinery as the campaign and
resilience reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.obs.profiler import ProfileReport

#: Headers of the hot-callback table.
HOT_CALLBACK_HEADERS = [
    "callback site", "calls", "wall [ms]", "share", "us/call", "scheduled",
]

#: Headers of the per-phase table.
PHASE_HEADERS = ["phase", "wall [ms]", "share", "events", "alloc [kB]",
                 "peak [kB]"]


def hot_callbacks(report: ProfileReport,
                  top: int = 10) -> List[Dict[str, object]]:
    """The ``top`` callback rows by attributed wall time, descending.

    Ties (and the zero-wall tail) break on call count then site name, so the
    selection is stable across runs even when wall measurements jitter.
    """
    ranked = sorted(
        report.callbacks,
        key=lambda row: (-float(row.get("wall_s", 0.0)),
                         -int(row.get("calls", 0)), str(row.get("site"))),
    )
    return ranked[:max(0, top)]


def _share(value: float, total: float) -> str:
    return f"{100.0 * value / total:.1f}%" if total > 0 else "-"


def hot_callback_rows(report: ProfileReport,
                      top: int = 10) -> List[List[object]]:
    """Table rows for the top-N hot callbacks."""
    total_wall = float(report.totals.get("wall_s", 0.0))
    rows: List[List[object]] = []
    for entry in hot_callbacks(report, top=top):
        wall = float(entry.get("wall_s", 0.0))
        calls = int(entry.get("calls", 0))
        rows.append([
            _strip_site(str(entry.get("site", "?"))),
            calls,
            f"{wall * 1000.0:.2f}",
            _share(wall, total_wall),
            f"{wall * 1e6 / calls:.1f}" if calls else "-",
            entry.get("scheduled", 0),
        ])
    return rows


def _strip_site(site: str) -> str:
    """Drop the common ``repro.`` prefix; full dotted paths stay unambiguous."""
    return site[6:] if site.startswith("repro.") else site


def phase_rows(report: ProfileReport) -> List[List[object]]:
    total_wall = sum(float(row.get("wall_s", 0.0)) for row in report.phases)
    rows: List[List[object]] = []
    for row in report.phases:
        wall = float(row.get("wall_s", 0.0))
        rows.append([
            row.get("name", "?"),
            f"{wall * 1000.0:.2f}",
            _share(wall, total_wall),
            row.get("events", 0),
            row.get("alloc_kb", "-"),
            row.get("peak_kb", "-"),
        ])
    return rows


def event_class_rows(report: ProfileReport) -> List[List[object]]:
    total_wall = float(report.totals.get("wall_s", 0.0))
    rows: List[List[object]] = []
    for entry in sorted(report.by_class(),
                        key=lambda row: -float(row.get("wall_s", 0.0))):
        wall = float(entry.get("wall_s", 0.0))
        rows.append([
            entry.get("event_class", "?"),
            entry.get("calls", 0),
            f"{wall * 1000.0:.2f}",
            _share(wall, total_wall),
            entry.get("scheduled", 0),
        ])
    return rows


def render_profile_report(report: ProfileReport, top: int = 10) -> str:
    """The full plain-text profile: header, phases, classes, hot callbacks."""
    if not report:
        return "(empty profile: the session dispatched no observed events)"
    events = report.totals.get("events", 0)
    wall = float(report.totals.get("wall_s", 0.0))
    rate = f"{events / wall:,.0f} events/s" if wall > 0 else "-"
    header = (f"Profile — {report.kind or 'session'}"
              f"/{report.technique or '?'} seed={report.seed} "
              f"({events} events, {wall * 1000.0:.1f} ms wall, {rate})")
    sections = [header]
    if report.phases:
        sections.append(format_table(PHASE_HEADERS, phase_rows(report),
                                     title="Phases"))
    if report.callbacks:
        sections.append(format_table(
            ["event class", "calls", "wall [ms]", "share", "scheduled"],
            event_class_rows(report),
            title="Event classes"))
        sections.append(format_table(
            HOT_CALLBACK_HEADERS, hot_callback_rows(report, top=top),
            title=f"Top {min(top, len(report.callbacks))} hot callbacks"))
    return "\n\n".join(sections)
