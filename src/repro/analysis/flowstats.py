"""Per-flow statistics for the end-to-end path-migration experiments.

The paper plots, per flow,

* the time the *last* data-plane packet following the old path arrived, and
* the time the *first* packet following the updated path arrived

(Figures 6 and 7; the area between the curves is the period during which
packets are being dropped), as well as the distribution of *broken time* —
how long each flow went without delivering packets during the update
(Figure 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.analysis.cdf import fraction_at_least
from repro.net.monitor import DeliveryMonitor


@dataclass
class FlowUpdateStats:
    """Update-related timing of one flow (times relative to the update start)."""

    flow_id: str
    #: Last delivery that avoided the new-path switch, relative to update start.
    last_old_path: Optional[float]
    #: First delivery that traversed the new-path switch, relative to update start.
    first_new_path: Optional[float]
    #: Longest delivery gap beyond the flow's nominal packet spacing.
    broken_time: float
    packets_sent: int
    packets_received: int

    @property
    def packets_dropped(self) -> int:
        """Packets that never arrived."""
        return self.packets_sent - self.packets_received

    @property
    def switched(self) -> bool:
        """Whether the flow was observed on the new path at all."""
        return self.first_new_path is not None


def flow_update_stats(
    monitor: DeliveryMonitor,
    *,
    new_path_switch: Union[str, Mapping[str, str]],
    update_start: float,
    expected_interval: float,
) -> List[FlowUpdateStats]:
    """Compute :class:`FlowUpdateStats` for every flow the monitor observed.

    ``new_path_switch`` is the switch that distinguishes the new path from
    the old one (S2 in the paper's triangle).  When flows migrate to
    different paths — the scenario subsystem's ECMP rebalance, for example —
    it may instead be a per-flow mapping ``{flow_id: switch}``; flows absent
    from the mapping are not migrating and are skipped.  ``expected_interval``
    is the nominal packet spacing used to turn delivery gaps into broken time.
    """
    per_flow: Optional[Mapping[str, str]] = None
    if not isinstance(new_path_switch, str):
        per_flow = new_path_switch
    stats: List[FlowUpdateStats] = []
    for flow_id in monitor.flows():
        if per_flow is None:
            marker = new_path_switch
        elif flow_id in per_flow:
            marker = per_flow[flow_id]
        else:
            continue
        old_records = monitor.arrivals_not_via(flow_id, marker)
        new_records = monitor.arrivals_via(flow_id, marker)
        last_old = old_records[-1].received_at - update_start if old_records else None
        first_new = new_records[0].received_at - update_start if new_records else None
        stats.append(
            FlowUpdateStats(
                flow_id=flow_id,
                last_old_path=last_old,
                first_new_path=first_new,
                broken_time=monitor.largest_gap(flow_id, expected_interval),
                packets_sent=monitor.sent_count(flow_id),
                packets_received=monitor.received_count(flow_id),
            )
        )
    return stats


def broken_time_distribution(
    stats: Sequence[FlowUpdateStats],
    thresholds: Sequence[float] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3),
) -> Dict[float, float]:
    """Fraction of flows broken for at least each threshold (Figure 1b).

    Returns ``{threshold_seconds: percentage_of_flows}``.
    """
    broken_times = [entry.broken_time for entry in stats]
    return {
        threshold: 100.0 * fraction_at_least(broken_times, threshold)
        for threshold in thresholds
    }


def total_dropped(stats: Sequence[FlowUpdateStats]) -> int:
    """Packets dropped across all flows."""
    return sum(entry.packets_dropped for entry in stats)


def mean_update_time(stats: Sequence[FlowUpdateStats]) -> Optional[float]:
    """Average time (after the update started) at which flows reached the new path."""
    times = [entry.first_new_path for entry in stats if entry.first_new_path is not None]
    if not times:
        return None
    return sum(times) / len(times)


def update_completion_time(stats: Sequence[FlowUpdateStats]) -> Optional[float]:
    """Time at which the last flow reached the new path."""
    times = [entry.first_new_path for entry in stats if entry.first_new_path is not None]
    return max(times) if times else None
