"""Per-rule lifecycle timelines from a :class:`~repro.obs.events.TraceLog`.

Where :mod:`repro.analysis.activation` correlates two end-of-run logs, this
module reads the full trace of a session and reconstructs every rule's
lifecycle — issued, sent, received, applied to the control plane,
acknowledged, activated in hardware — as one :class:`RuleLifecycle` per
``(switch, xid)``.  The headline quantity is the **activation gap**

    ``ack_received - hw_activated``

per rule, with the paper's sign convention (negative = the controller was
told the rule was active before packets could hit it — the unsafe early
acknowledgment; positive = wasted waiting time).  Rules acknowledged but
*never* activated get an infinite gap and are reported separately.

Renderers produce the per-switch activation-gap report and the fault-overlay
view (what each armed fault model was doing while gaps were open).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    PHASE_ACK_RECEIVED,
    PHASE_ACK_SENT,
    PHASE_CONTROL_APPLIED,
    PHASE_FAULT,
    PHASE_HW_ACTIVATED,
    PHASE_MSG_SENT,
    PHASE_SWITCH_RECEIVED,
    PHASE_UPDATE_ISSUED,
    TraceLog,
)


@dataclass
class RuleLifecycle:
    """The traced lifecycle of one rule modification on one switch."""

    switch: str
    xid: int
    issued: Optional[float] = None
    msg_sent: Optional[float] = None
    switch_received: Optional[float] = None
    control_applied: Optional[float] = None
    ack_sent: Optional[float] = None
    ack_received: Optional[float] = None
    hw_activated: Optional[float] = None
    #: Who confirmed the rule (technique detail on the ack-sent event).
    confirmed_by: str = ""

    @property
    def acknowledged(self) -> bool:
        return self.ack_received is not None

    @property
    def activated(self) -> bool:
        return self.hw_activated is not None

    @property
    def activation_gap(self) -> Optional[float]:
        """``ack_received - hw_activated`` (paper sign: negative = early ack).

        ``+inf`` for rules acknowledged but never activated — the paper's
        worst case, an acknowledgment for a rule that never forwards.
        ``None`` when the rule was never acknowledged (nothing to compare).
        """
        if self.ack_received is None:
            return None
        if self.hw_activated is None:
            return math.inf
        return self.ack_received - self.hw_activated

    @property
    def control_to_hw_lag(self) -> Optional[float]:
        """How long the data plane trailed the control plane for this rule."""
        if self.control_applied is None or self.hw_activated is None:
            return None
        return self.hw_activated - self.control_applied


def rule_lifecycles(log: TraceLog) -> Dict[Tuple[str, int], RuleLifecycle]:
    """Reconstruct every ``(switch, xid)`` lifecycle from a trace.

    Slots keep the *first* occurrence of each phase (re-activations of the
    same xid — rule overwrites, fault-induced re-applies — do not move the
    original timestamps), matching how
    :func:`repro.analysis.activation.dataplane_activation_times` reads the
    apply log.  ``msg-sent`` events carry the channel name (``ctl-<switch>``
    or ``<proxy>-<switch>``), so they are matched to a lifecycle by suffix.
    """
    lifecycles: Dict[Tuple[str, int], RuleLifecycle] = {}
    slot_by_phase = {
        PHASE_UPDATE_ISSUED: "issued",
        PHASE_SWITCH_RECEIVED: "switch_received",
        PHASE_CONTROL_APPLIED: "control_applied",
        PHASE_ACK_SENT: "ack_sent",
        PHASE_ACK_RECEIVED: "ack_received",
        PHASE_HW_ACTIVATED: "hw_activated",
    }

    def lifecycle(switch: str, xid: int) -> RuleLifecycle:
        key = (switch, xid)
        entry = lifecycles.get(key)
        if entry is None:
            entry = lifecycles[key] = RuleLifecycle(switch=switch, xid=xid)
        return entry

    for event in log.events:
        if event.xid is None:
            continue
        slot = slot_by_phase.get(event.phase)
        if slot is not None and event.switch:
            entry = lifecycle(event.switch, event.xid)
            if getattr(entry, slot) is None:
                setattr(entry, slot, event.ts)
                if event.phase == PHASE_ACK_SENT and event.detail:
                    entry.confirmed_by = event.detail

    # Second pass: channel sends.  A channel named ``<anything>-<switch>``
    # carries that switch's control traffic; the first matching send of a
    # known (switch, xid) pair is the controller-side transmit time.
    for event in log.events:
        if event.phase != PHASE_MSG_SENT or event.xid is None:
            continue
        for (switch, xid), entry in lifecycles.items():
            if xid != event.xid or entry.msg_sent is not None:
                continue
            if event.switch == switch or event.switch.endswith(f"-{switch}"):
                entry.msg_sent = event.ts

    return lifecycles


def activation_gaps_by_switch(log: TraceLog) -> Dict[str, List[float]]:
    """``switch -> sorted activation gaps`` of every acknowledged rule."""
    gaps: Dict[str, List[float]] = {}
    for (switch, _xid), entry in sorted(rule_lifecycles(log).items()):
        gap = entry.activation_gap
        if gap is not None:
            gaps.setdefault(switch, []).append(gap)
    for values in gaps.values():
        values.sort()
    return gaps


def activation_gap_summary(log: TraceLog) -> Dict[str, Dict[str, float]]:
    """Per-switch distribution summary of the activation gaps.

    Gap values are the paper's per-rule ``ack - activation`` delays;
    ``early`` counts the unsafe (negative) ones and ``never`` the
    acknowledged-but-never-activated rules (excluded from min/max/mean).
    """
    summary: Dict[str, Dict[str, float]] = {}
    for switch, gaps in activation_gaps_by_switch(log).items():
        finite = [gap for gap in gaps if math.isfinite(gap)]
        entry: Dict[str, float] = {
            "rules": len(gaps),
            "early": sum(1 for gap in gaps if gap < 0),
            "never": sum(1 for gap in gaps if math.isinf(gap)),
        }
        if finite:
            entry.update(
                min=min(finite),
                max=max(finite),
                mean=sum(finite) / len(finite),
            )
        summary[switch] = entry
    return summary


def _fmt_ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if math.isinf(value):
        return "never"
    return f"{value * 1000.0:+.2f}ms"


def render_timeline_report(log: TraceLog, title: str = "") -> str:
    """Human-readable per-rule lifecycle table with activation gaps."""
    lines: List[str] = []
    header = title or f"Rule lifecycle timeline — {log.technique or 'unknown'}"
    lines.append(header)
    lines.append("=" * len(header))
    lifecycles = sorted(rule_lifecycles(log).items())
    if not lifecycles:
        lines.append("(no rule lifecycle events in trace)")
        return "\n".join(lines) + "\n"
    lines.append(f"{'switch':<8} {'xid':>6} {'issued':>9} {'received':>9} "
                 f"{'acked':>9} {'hw-active':>9} {'gap':>10}  confirmed-by")
    for (switch, xid), entry in lifecycles:
        def stamp(value: Optional[float]) -> str:
            return f"{value:9.4f}" if value is not None else f"{'-':>9}"

        lines.append(
            f"{switch:<8} {xid:>6} {stamp(entry.issued)} "
            f"{stamp(entry.switch_received)} {stamp(entry.ack_received)} "
            f"{stamp(entry.hw_activated)} {_fmt_ms(entry.activation_gap):>10}  "
            f"{entry.confirmed_by}"
        )
    lines.append("")
    lines.append("Per-switch activation-gap summary (ack - hw activation; "
                 "negative = unsafe early ack)")
    for switch, stats in sorted(activation_gap_summary(log).items()):
        detail = (f"  {switch}: {int(stats['rules'])} rules, "
                  f"{int(stats['early'])} early, {int(stats['never'])} never")
        if "mean" in stats:
            detail += (f", gap min {_fmt_ms(stats['min'])} / "
                       f"mean {_fmt_ms(stats['mean'])} / "
                       f"max {_fmt_ms(stats['max'])}")
        lines.append(detail)
    return "\n".join(lines) + "\n"


@dataclass
class FaultOverlap:
    """One fault activation and the rules that were in flight around it."""

    ts: float
    switch: str
    detail: str
    #: Rules issued but not yet hardware-activated at the fault instant.
    open_rules: List[Tuple[str, int]] = field(default_factory=list)


def fault_overlaps(log: TraceLog) -> List[FaultOverlap]:
    """Correlate fault activations with rules whose lifecycle was open."""
    lifecycles = rule_lifecycles(log)
    overlaps: List[FaultOverlap] = []
    for event in log.events:
        if event.phase != PHASE_FAULT:
            continue
        open_rules = [
            (switch, xid)
            for (switch, xid), entry in sorted(lifecycles.items())
            if entry.issued is not None and entry.issued <= event.ts
            and (entry.hw_activated is None or entry.hw_activated > event.ts)
        ]
        overlaps.append(FaultOverlap(ts=event.ts, switch=event.switch,
                                     detail=event.detail,
                                     open_rules=open_rules))
    return overlaps


def render_fault_overlay(log: TraceLog, title: str = "") -> str:
    """Fault activations interleaved with the rules they could affect."""
    lines: List[str] = []
    header = title or "Fault overlay"
    lines.append(header)
    lines.append("=" * len(header))
    overlaps = fault_overlaps(log)
    if not overlaps:
        lines.append("(no fault activations in trace)")
        return "\n".join(lines) + "\n"
    for overlap in overlaps:
        rules = (", ".join(f"{switch}/{xid}"
                           for switch, xid in overlap.open_rules)
                 or "none")
        lines.append(f"t={overlap.ts:9.4f}  {overlap.detail:<32} "
                     f"@{overlap.switch or '*':<6} open rules: {rules}")
    return "\n".join(lines) + "\n"
