"""Differential run analytics: align two runs and name where they diverge.

The paper's argument is inherently differential — the same update plan is
safe under acknowledgment-based techniques and unsafe under timeouts — and
this module is the comparison primitive behind ``python -m repro.store
diff`` and the campaign report's ``--baseline`` mode.  Two layers:

* **summary level** — the flat :data:`~repro.session.record.SUMMARY_KEYS`
  view of each run (outcome, durations, drops, fault/recovery accounting,
  digest), compared key by key.  Works on any pair of runs, traced or not.
* **lifecycle level** — when both runs carry a
  :class:`~repro.obs.events.TraceLog`, their per-``(switch, xid)`` rule
  lifecycles (:func:`repro.analysis.timeline.rule_lifecycles`) are aligned
  phase by phase and the **first divergent lifecycle event** is named with
  its time, switch and phase — the same first-divergence discipline the
  determinism sanitizer applies to raw kernel event streams.  Cross-run
  alignment on xids is sound because xid counters reset per run.

A diff of a traced run against a trace-off run degrades to the summary
level (``traced`` is ``False``; no divergence is reported) instead of
failing: comparability should never depend on both sides having paid for
observability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.timeline import activation_gap_summary, rule_lifecycles
from repro.obs.events import (
    PHASE_ACK_RECEIVED,
    PHASE_ACK_SENT,
    PHASE_CONTROL_APPLIED,
    PHASE_HW_ACTIVATED,
    PHASE_MSG_SENT,
    PHASE_SWITCH_RECEIVED,
    PHASE_UPDATE_ISSUED,
    TraceLog,
)

#: Lifecycle phases paired with their :class:`RuleLifecycle` slot, in causal
#: order — the order divergences are reported in when timestamps tie.
PHASE_SLOTS: Tuple[Tuple[str, str], ...] = (
    (PHASE_UPDATE_ISSUED, "issued"),
    (PHASE_MSG_SENT, "msg_sent"),
    (PHASE_SWITCH_RECEIVED, "switch_received"),
    (PHASE_CONTROL_APPLIED, "control_applied"),
    (PHASE_ACK_SENT, "ack_sent"),
    (PHASE_ACK_RECEIVED, "ack_received"),
    (PHASE_HW_ACTIVATED, "hw_activated"),
)

#: Flat keys compared at the summary level, in report order.
SUMMARY_DIFF_KEYS: Tuple[str, ...] = (
    "technique",
    "scenario",
    "completed",
    "update_duration",
    "mean_update_time",
    "completion_time",
    "dropped_packets",
    "max_broken_time",
    "plan_size",
    "flows",
    "faults",
    "recovery",
    "digest",
)


def _fmt_ts(value: Optional[float]) -> str:
    return f"{value:.4f}s" if value is not None else "never"


@dataclass
class FirstDivergence:
    """The first lifecycle event at which two runs disagree."""

    ts: float
    switch: str
    xid: int
    phase: str
    left_ts: Optional[float]
    right_ts: Optional[float]

    @property
    def reason(self) -> str:
        if self.left_ts is None:
            return "reached only on right"
        if self.right_ts is None:
            return "reached only on left"
        delta = (self.right_ts - self.left_ts) * 1000.0
        return f"time shifted {delta:+.2f}ms"

    def describe(self) -> str:
        return (f"first divergence at t={self.ts:.4f}s: rule "
                f"{self.switch}/{self.xid} phase {self.phase} — left "
                f"{_fmt_ts(self.left_ts)}, right {_fmt_ts(self.right_ts)} "
                f"({self.reason})")

    def as_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "switch": self.switch,
            "xid": self.xid,
            "phase": self.phase,
            "left_ts": self.left_ts,
            "right_ts": self.right_ts,
            "reason": self.reason,
        }


def first_lifecycle_divergence(left: TraceLog,
                               right: TraceLog) -> Optional[FirstDivergence]:
    """The earliest ``(switch, xid, phase)`` where the two traces disagree.

    Every phase slot present on exactly one side, or present on both at
    different times, is a discrepancy; the one anchored earliest in
    simulated time (ties broken by switch, xid, then causal phase order)
    is *the* first divergence.  ``None`` means the lifecycles agree
    exactly — which for two different techniques essentially never happens,
    and for a determinism double-run always should.
    """
    left_cycles = rule_lifecycles(left)
    right_cycles = rule_lifecycles(right)
    best: Optional[Tuple[float, str, int, int, FirstDivergence]] = None
    for key in sorted(set(left_cycles) | set(right_cycles)):
        switch, xid = key
        left_entry = left_cycles.get(key)
        right_entry = right_cycles.get(key)
        for order, (phase, slot) in enumerate(PHASE_SLOTS):
            left_ts = getattr(left_entry, slot) if left_entry else None
            right_ts = getattr(right_entry, slot) if right_entry else None
            if left_ts == right_ts:
                continue
            anchor = min(ts for ts in (left_ts, right_ts) if ts is not None)
            candidate = (anchor, switch, xid, order, FirstDivergence(
                ts=anchor, switch=switch, xid=xid, phase=phase,
                left_ts=left_ts, right_ts=right_ts))
            if best is None or candidate[:4] < best[:4]:
                best = candidate
    return best[4] if best else None


def flat_summary(payload: Dict[str, object]) -> Dict[str, object]:
    """The flat summary view of any run payload.

    Accepts either a full :meth:`RunRecord.as_dict` payload (recognised by
    its ``schema`` stamp; converted through the record round trip) or a
    campaign JSONL record, which is already flat.
    """
    if "schema" in payload and "stats" in payload:
        from repro.session.record import RunRecord

        return RunRecord.from_dict(payload).summary()
    return dict(payload)


def trace_of(payload: Dict[str, object],
             trace: Optional[Dict[str, object]] = None) -> Optional[TraceLog]:
    """The :class:`TraceLog` of a payload, from it or the override dict."""
    raw = trace if trace is not None else payload.get("trace")
    if not raw:
        return None
    if isinstance(raw, TraceLog):
        return raw
    return TraceLog.from_dict(raw)


@dataclass
class RunDiff:
    """Everything the differential comparison of two runs found."""

    left_label: str
    right_label: str
    #: ``key -> (left value, right value)`` for every compared summary key.
    summary: Dict[str, Tuple[object, object]] = field(default_factory=dict)
    #: ``switch -> stat -> (left, right)`` activation-gap deltas (traced).
    gap_deltas: Dict[str, Dict[str, Tuple[object, object]]] = field(
        default_factory=dict)
    divergence: Optional[FirstDivergence] = None
    #: Whether *both* sides carried a trace (lifecycle level ran).
    traced: bool = False

    @property
    def changed(self) -> List[str]:
        return [key for key, (left, right) in self.summary.items()
                if left != right]

    @property
    def identical(self) -> bool:
        left, right = self.summary.get("digest", (None, None))
        return left is not None and left == right

    def explain(self) -> str:
        """The one-line explanation (baseline tables, CLI summaries)."""
        if self.identical:
            digest = self.summary["digest"][0]
            return f"identical outcome (digest {digest})"
        if self.divergence is not None:
            return self.divergence.describe()
        for key in self.changed:
            left, right = self.summary[key]
            if key in ("technique", "scenario", "digest"):
                continue
            return f"{key}: {left} -> {right}"
        if self.changed:
            key = self.changed[0]
            left, right = self.summary[key]
            return f"{key}: {left} -> {right}"
        return "no observable differences"

    def as_dict(self) -> Dict[str, object]:
        return {
            "left": self.left_label,
            "right": self.right_label,
            "identical": self.identical,
            "traced": self.traced,
            "summary": {key: list(values)
                        for key, values in self.summary.items()},
            "changed": self.changed,
            "gap_deltas": {
                switch: {stat: list(values)
                         for stat, values in stats.items()}
                for switch, stats in self.gap_deltas.items()
            },
            "divergence": self.divergence.as_dict() if self.divergence else None,  # repro: noqa(RL005): diff payloads are never digested; null is the explicit "aligned, no divergence" marker consumers key on
            "explanation": self.explain(),
        }


def _gap_deltas(left: TraceLog,
                right: TraceLog) -> Dict[str, Dict[str, Tuple[object, object]]]:
    left_summary = activation_gap_summary(left)
    right_summary = activation_gap_summary(right)
    deltas: Dict[str, Dict[str, Tuple[object, object]]] = {}
    for switch in sorted(set(left_summary) | set(right_summary)):
        left_stats = left_summary.get(switch, {})
        right_stats = right_summary.get(switch, {})
        row: Dict[str, Tuple[object, object]] = {}
        for stat in ("rules", "early", "never", "min", "mean", "max"):
            left_value = left_stats.get(stat)
            right_value = right_stats.get(stat)
            if left_value is None and right_value is None:
                continue
            row[stat] = (left_value, right_value)
        if any(left != right for left, right in row.values()):
            deltas[switch] = row
    return deltas


def diff_runs(
    left_payload: Dict[str, object],
    right_payload: Dict[str, object],
    left_trace: Optional[Dict[str, object]] = None,
    right_trace: Optional[Dict[str, object]] = None,
    left_label: str = "left",
    right_label: str = "right",
) -> RunDiff:
    """Compare two runs; lifecycle level only when both carry traces."""
    left_flat = flat_summary(left_payload)
    right_flat = flat_summary(right_payload)
    diff = RunDiff(left_label=left_label, right_label=right_label)
    for key in SUMMARY_DIFF_KEYS:
        if key in left_flat or key in right_flat:
            diff.summary[key] = (left_flat.get(key), right_flat.get(key))

    left_log = trace_of(left_payload, left_trace)
    right_log = trace_of(right_payload, right_trace)
    if left_log is not None and right_log is not None:
        diff.traced = True
        diff.divergence = first_lifecycle_divergence(left_log, right_log)
        diff.gap_deltas = _gap_deltas(left_log, right_log)
    return diff


def _fmt_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        return f"{value:.4f}"
    return str(value)


def render_run_diff(diff: RunDiff) -> str:
    """The human-readable diff report."""
    lines: List[str] = []
    header = f"Run diff — {diff.left_label} vs {diff.right_label}"
    lines.append(header)
    lines.append("=" * len(header))
    if diff.identical:
        lines.append(diff.explain())
    changed = diff.changed
    if changed:
        width = max(len(key) for key in changed)
        lines.append("Summary deltas (left -> right):")
        for key in changed:
            left, right = diff.summary[key]
            lines.append(f"  {key:<{width}}  "
                         f"{_fmt_value(left)} -> {_fmt_value(right)}")
    elif not diff.identical:
        lines.append("(no summary-level differences)")
    if not diff.traced:
        lines.append("")
        lines.append("(summary-level diff only: at least one side has no "
                     "trace — re-run with trace=True for lifecycle "
                     "alignment)")
        return "\n".join(lines) + "\n"
    lines.append("")
    if diff.divergence is not None:
        lines.append(diff.divergence.describe())
    else:
        lines.append("rule lifecycles are identical on both sides")
    if diff.gap_deltas:
        lines.append("")
        lines.append("Activation-gap deltas per switch (ack - hw "
                     "activation; negative = unsafe early ack):")
        for switch in sorted(diff.gap_deltas):
            stats = diff.gap_deltas[switch]
            parts = []
            for stat, (left, right) in stats.items():
                if left == right:
                    continue
                parts.append(f"{stat} {_fmt_value(left)} -> "
                             f"{_fmt_value(right)}")
            if parts:
                lines.append(f"  {switch}: " + ", ".join(parts))
    return "\n".join(lines) + "\n"
