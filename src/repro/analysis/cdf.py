"""Distribution helpers (percentiles, CDFs, summaries)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` (linear interpolation).

    ``fraction`` is in ``[0, 1]``; an empty input raises :class:`ValueError`.
    """
    if not values:
        raise ValueError("cannot compute a percentile of no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    # This form is numerically exact when the two samples are equal, which
    # keeps the result inside [min(values), max(values)].
    return ordered[lower] + (ordered[upper] - ordered[lower]) * weight


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """``(value, cumulative fraction)`` pairs, suitable for plotting a CDF."""
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return []
    return [(value, (index + 1) / count) for index, value in enumerate(ordered)]


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of values greater than or equal to ``threshold``."""
    if not values:
        return 0.0
    return sum(1 for value in values if value >= threshold) / len(values)


@dataclass
class Distribution:
    """Summary statistics of a set of samples."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    p10: float
    p90: float
    p99: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Distribution":
        """Build a summary; raises :class:`ValueError` on empty input."""
        if not values:
            raise ValueError("cannot summarise an empty distribution")
        values = list(values)
        return cls(
            count=len(values),
            minimum=min(values),
            maximum=max(values),
            mean=sum(values) / len(values),
            median=percentile(values, 0.5),
            p10=percentile(values, 0.1),
            p90=percentile(values, 0.9),
            p99=percentile(values, 0.99),
        )

    def as_dict(self) -> Dict[str, float]:
        """JSON-able representation."""
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "p10": self.p10,
            "p90": self.p90,
            "p99": self.p99,
        }
