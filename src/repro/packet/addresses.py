"""IPv4 / MAC address helpers.

Addresses are stored internally as integers (fast masking and comparison in
the flow-table lookup path) and converted to dotted / colon notation only for
display.
"""

from __future__ import annotations


def ip_to_int(address: str | int) -> int:
    """Convert ``"10.0.0.1"`` (or an already-converted int) to a 32-bit integer."""
    if isinstance(address, int):
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 integer out of range: {address}")
        return address
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(address: str | int) -> int:
    """Convert ``"00:00:00:00:00:01"`` (or an int) to a 48-bit integer."""
    if isinstance(address, int):
        if not 0 <= address <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC integer out of range: {address}")
        return address
    parts = address.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part, 16)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed MAC address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_mac(value: int) -> str:
    """Convert a 48-bit integer to colon-separated hex notation."""
    if not 0 <= value <= 0xFFFFFFFFFFFF:
        raise ValueError(f"MAC integer out of range: {value}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0))


def prefix_mask(prefix_length: int) -> int:
    """32-bit network mask for an IPv4 prefix length (``/24`` -> ``0xFFFFFF00``)."""
    if not 0 <= prefix_length <= 32:
        raise ValueError(f"prefix length out of range: {prefix_length}")
    if prefix_length == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_length)) & 0xFFFFFFFF


def same_subnet(address_a: str | int, address_b: str | int, prefix_length: int) -> bool:
    """Whether two IPv4 addresses share the given prefix."""
    mask = prefix_mask(prefix_length)
    return (ip_to_int(address_a) & mask) == (ip_to_int(address_b) & mask)
