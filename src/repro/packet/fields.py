"""Header-field registry.

OpenFlow 1.0 matches on a fixed 12-tuple of header fields.  The registry
below names those fields, records their bit widths, whether a switch can
rewrite them with a ``set_field`` action, and whether RUM may use them as a
probing field (the paper uses ToS; VLAN id and MPLS label are the documented
alternatives).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List


class HeaderField(str, Enum):
    """Canonical names of the header fields used throughout the repository."""

    IN_PORT = "in_port"
    ETH_SRC = "eth_src"
    ETH_DST = "eth_dst"
    ETH_TYPE = "eth_type"
    VLAN_ID = "vlan_id"
    VLAN_PCP = "vlan_pcp"
    MPLS_LABEL = "mpls_label"
    IP_SRC = "ip_src"
    IP_DST = "ip_dst"
    IP_PROTO = "ip_proto"
    IP_TOS = "ip_tos"
    TP_SRC = "tp_src"
    TP_DST = "tp_dst"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FieldSpec:
    """Static description of one header field."""

    name: HeaderField
    bits: int
    rewritable: bool
    probe_candidate: bool
    description: str

    @property
    def max_value(self) -> int:
        """Largest representable value of the field."""
        return (1 << self.bits) - 1

    def validate(self, value: int) -> None:
        """Raise :class:`ValueError` if ``value`` does not fit in the field."""
        if not isinstance(value, int):
            raise ValueError(f"{self.name} value must be an int, got {type(value).__name__}")
        if not 0 <= value <= self.max_value:
            raise ValueError(
                f"{self.name} value {value} out of range 0..{self.max_value}"
            )


FIELD_REGISTRY: Dict[HeaderField, FieldSpec] = {
    spec.name: spec
    for spec in [
        FieldSpec(HeaderField.IN_PORT, 16, False, False, "switch ingress port"),
        FieldSpec(HeaderField.ETH_SRC, 48, True, False, "Ethernet source MAC"),
        FieldSpec(HeaderField.ETH_DST, 48, True, False, "Ethernet destination MAC"),
        FieldSpec(HeaderField.ETH_TYPE, 16, False, False, "EtherType"),
        FieldSpec(HeaderField.VLAN_ID, 12, True, True, "802.1Q VLAN identifier"),
        FieldSpec(HeaderField.VLAN_PCP, 3, True, False, "802.1Q priority code point"),
        FieldSpec(HeaderField.MPLS_LABEL, 20, True, True, "MPLS label"),
        FieldSpec(HeaderField.IP_SRC, 32, True, False, "IPv4 source address"),
        FieldSpec(HeaderField.IP_DST, 32, True, False, "IPv4 destination address"),
        FieldSpec(HeaderField.IP_PROTO, 8, False, False, "IPv4 protocol number"),
        FieldSpec(HeaderField.IP_TOS, 6, True, True, "IPv4 ToS / DSCP bits"),
        FieldSpec(HeaderField.TP_SRC, 16, True, False, "TCP/UDP source port"),
        FieldSpec(HeaderField.TP_DST, 16, True, False, "TCP/UDP destination port"),
    ]
}

#: Canonical field order used by the packet header array: enum declaration
#: order.  :class:`~repro.packet.packet.Packet` stores header values in a
#: fixed-size list indexed by this order instead of a dict — the data-plane
#: fast path relies on these indices.
FIELD_ORDER: List[HeaderField] = list(HeaderField)

#: ``field -> array index``.  Because :class:`HeaderField` is a ``str`` enum,
#: members and their value strings hash and compare equal, so this single
#: mapping serves lookups by enum member *and* by plain string name.
FIELD_INDEX: Dict[HeaderField, int] = {
    member: index for index, member in enumerate(FIELD_ORDER)
}

#: Number of header fields (the length of a packet's value array).
FIELD_COUNT = len(FIELD_ORDER)

#: Per-index :class:`FieldSpec`, aligned with :data:`FIELD_ORDER`.
FIELD_SPECS_BY_INDEX: List[FieldSpec] = [
    FIELD_REGISTRY[member] for member in FIELD_ORDER
]

#: Per-index maximum value, aligned with :data:`FIELD_ORDER` (fast range
#: checks without attribute lookups).
FIELD_MAX_BY_INDEX: List[int] = [spec.max_value for spec in FIELD_SPECS_BY_INDEX]

# EtherType constants used by the traffic generators and probe construction.
ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_VLAN = 0x8100

# IP protocol numbers.
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17


def rewritable_fields() -> List[FieldSpec]:
    """Fields a ``set_field`` action may modify."""
    return [spec for spec in FIELD_REGISTRY.values() if spec.rewritable]


def probe_candidate_fields() -> List[FieldSpec]:
    """Fields the paper considers usable as the reserved probing field H."""
    return [spec for spec in FIELD_REGISTRY.values() if spec.probe_candidate]


def field_spec(field: HeaderField | str) -> FieldSpec:
    """Look up a :class:`FieldSpec` by enum member or string name."""
    key = HeaderField(field)
    return FIELD_REGISTRY[key]
