"""Packet model shared by the data plane, the traffic generators and RUM's
data-plane probes.

A :class:`~repro.packet.packet.Packet` is a mapping of OpenFlow-1.0-style
header fields to concrete values plus a payload and bookkeeping metadata
(flow id, sequence number, creation time).  The header-field registry in
:mod:`repro.packet.fields` defines which fields exist, their widths, and
which ones are rewritable — the general probing technique needs to reserve a
rewritable field (ToS, VLAN or MPLS label) that live traffic does not use.
"""

from repro.packet.fields import (
    FIELD_REGISTRY,
    FieldSpec,
    HeaderField,
    rewritable_fields,
)
from repro.packet.addresses import (
    ip_to_int,
    int_to_ip,
    mac_to_int,
    int_to_mac,
    prefix_mask,
)
from repro.packet.packet import Packet, make_ip_packet, make_probe_packet

__all__ = [
    "FIELD_REGISTRY",
    "FieldSpec",
    "HeaderField",
    "Packet",
    "int_to_ip",
    "int_to_mac",
    "ip_to_int",
    "mac_to_int",
    "make_ip_packet",
    "make_probe_packet",
    "prefix_mask",
    "rewritable_fields",
]
