"""The :class:`Packet` class and constructors for data-plane traffic and probes."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from repro.packet.addresses import ip_to_int, mac_to_int
from repro.packet.fields import (
    ETH_TYPE_IP,
    FIELD_REGISTRY,
    HeaderField,
    IP_PROTO_UDP,
)

_packet_ids = itertools.count(1)


class Packet:
    """A single data-plane packet.

    Header values are stored as integers keyed by :class:`HeaderField`.
    Fields that are absent from the mapping are treated as zero by the flow
    table (OpenFlow 1.0 semantics: a field always has *some* value; only
    matches can be wildcarded).

    Parameters
    ----------
    headers:
        Mapping of header fields to integer values.
    payload_size:
        Payload length in bytes, used by link models for serialisation delay.
    flow_id:
        Identifier of the application-level flow this packet belongs to
        (``None`` for control-plane-originated packets such as probes).
    created_at:
        Simulated time at which the packet was created by its sender.
    """

    __slots__ = (
        "packet_id",
        "headers",
        "payload_size",
        "flow_id",
        "created_at",
        "sequence",
        "is_probe",
        "trace",
    )

    def __init__(
        self,
        headers: Dict[HeaderField, int],
        payload_size: int = 100,
        flow_id: Optional[str] = None,
        created_at: float = 0.0,
        sequence: int = 0,
        is_probe: bool = False,
    ) -> None:
        validated: Dict[HeaderField, int] = {}
        for field, value in headers.items():
            field = HeaderField(field)
            FIELD_REGISTRY[field].validate(value)
            validated[field] = value
        self.packet_id = next(_packet_ids)
        self.headers = validated
        self.payload_size = int(payload_size)
        self.flow_id = flow_id
        self.created_at = created_at
        self.sequence = sequence
        self.is_probe = is_probe
        # List of (time, node_name) hops, filled in by the network simulator.
        self.trace: list = []

    # -- header access -----------------------------------------------------
    def get(self, field: HeaderField | str, default: int = 0) -> int:
        """Value of ``field`` (0 when the packet does not carry it)."""
        return self.headers.get(HeaderField(field), default)

    def set(self, field: HeaderField | str, value: int) -> None:
        """Set (rewrite) a header field in place."""
        field = HeaderField(field)
        FIELD_REGISTRY[field].validate(value)
        self.headers[field] = value

    def copy(self) -> "Packet":
        """A copy with a new identity but the same headers, payload and trace.

        Switches copy packets before applying rewrite actions; the hop trace
        is carried over because the copy logically *is* the same packet
        continuing through the network.
        """
        clone = Packet(
            dict(self.headers),
            payload_size=self.payload_size,
            flow_id=self.flow_id,
            created_at=self.created_at,
            sequence=self.sequence,
            is_probe=self.is_probe,
        )
        clone.trace = list(self.trace)
        return clone

    def items(self) -> Iterator:
        """Iterate over ``(field, value)`` pairs."""
        return iter(self.headers.items())

    @property
    def total_size(self) -> int:
        """Approximate wire size in bytes (headers + payload)."""
        return 42 + self.payload_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "probe" if self.is_probe else "pkt"
        fields = ", ".join(f"{field.value}={value}" for field, value in sorted(
            self.headers.items(), key=lambda item: item[0].value))
        return f"<{kind} #{self.packet_id} flow={self.flow_id} {fields}>"


def make_ip_packet(
    ip_src: str | int,
    ip_dst: str | int,
    *,
    eth_src: str | int = "00:00:00:00:00:01",
    eth_dst: str | int = "00:00:00:00:00:02",
    ip_proto: int = IP_PROTO_UDP,
    ip_tos: int = 0,
    tp_src: int = 10000,
    tp_dst = 80,
    vlan_id: int = 0,
    payload_size: int = 100,
    flow_id: Optional[str] = None,
    created_at: float = 0.0,
    sequence: int = 0,
) -> Packet:
    """Build a normal IPv4 data packet (used by the traffic generators)."""
    headers = {
        HeaderField.ETH_SRC: mac_to_int(eth_src),
        HeaderField.ETH_DST: mac_to_int(eth_dst),
        HeaderField.ETH_TYPE: ETH_TYPE_IP,
        HeaderField.VLAN_ID: vlan_id,
        HeaderField.VLAN_PCP: 0,
        HeaderField.IP_SRC: ip_to_int(ip_src),
        HeaderField.IP_DST: ip_to_int(ip_dst),
        HeaderField.IP_PROTO: ip_proto,
        HeaderField.IP_TOS: ip_tos,
        HeaderField.TP_SRC: tp_src,
        HeaderField.TP_DST: tp_dst,
    }
    return Packet(
        headers,
        payload_size=payload_size,
        flow_id=flow_id,
        created_at=created_at,
        sequence=sequence,
    )


def make_probe_packet(
    headers: Dict[HeaderField, int],
    *,
    created_at: float = 0.0,
    probe_id: Optional[str] = None,
) -> Packet:
    """Build a RUM data-plane probe packet.

    Probes are small, carry no application payload, and are flagged so the
    delivery monitor does not count them as flow traffic.
    """
    packet = Packet(
        dict(headers),
        payload_size=0,
        flow_id=probe_id,
        created_at=created_at,
        is_probe=True,
    )
    return packet
