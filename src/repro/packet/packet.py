"""The :class:`Packet` class and constructors for data-plane traffic and probes."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from repro.packet.addresses import ip_to_int, mac_to_int
from repro.packet.fields import (
    ETH_TYPE_IP,
    FIELD_COUNT,
    FIELD_INDEX,
    FIELD_MAX_BY_INDEX,
    FIELD_ORDER,
    FIELD_REGISTRY,
    HeaderField,
    IP_PROTO_UDP,
)

_packet_ids = itertools.count(1)


class Packet:
    """A single data-plane packet.

    Header values are stored as integers in a fixed-order array indexed by
    :data:`~repro.packet.fields.FIELD_INDEX` (``None`` marks an absent
    field).  Absent fields are treated as zero by the flow table (OpenFlow
    1.0 semantics: a field always has *some* value; only matches can be
    wildcarded).  The :attr:`headers` property presents the classic
    ``{HeaderField: value}`` dict view for construction, wire encoding and
    debugging; the forwarding fast path reads the array directly.

    Parameters
    ----------
    headers:
        Mapping of header fields (members or their string names) to integer
        values.
    payload_size:
        Payload length in bytes, used by link models for serialisation delay.
    flow_id:
        Identifier of the application-level flow this packet belongs to
        (``None`` for control-plane-originated packets such as probes).
    created_at:
        Simulated time at which the packet was created by its sender.
    """

    __slots__ = (
        "packet_id",
        "_values",
        "payload_size",
        "flow_id",
        "created_at",
        "sequence",
        "is_probe",
        "trace",
    )

    def __init__(
        self,
        headers: Dict[HeaderField, int],
        payload_size: int = 100,
        flow_id: Optional[str] = None,
        created_at: float = 0.0,
        sequence: int = 0,
        is_probe: bool = False,
    ) -> None:
        values: List[Optional[int]] = [None] * FIELD_COUNT
        field_index = FIELD_INDEX
        field_max = FIELD_MAX_BY_INDEX
        for field, value in headers.items():
            index = field_index.get(field)
            if index is None:
                # Re-raise through the enum for the canonical error message.
                index = field_index[HeaderField(field)]
            if not (isinstance(value, int) and 0 <= value <= field_max[index]):
                FIELD_REGISTRY[FIELD_ORDER[index]].validate(value)
            values[index] = value
        self.packet_id = next(_packet_ids)
        self._values = values
        self.payload_size = int(payload_size)
        self.flow_id = flow_id
        self.created_at = created_at
        self.sequence = sequence
        self.is_probe = is_probe
        # List of (time, node_name) hops, filled in by the network simulator.
        self.trace: list = []

    # -- header access -----------------------------------------------------
    @property
    def headers(self) -> Dict[HeaderField, int]:
        """The carried header fields as a ``{HeaderField: value}`` dict.

        A fresh dict per access — mutate the packet through :meth:`set`,
        not through this view.
        """
        values = self._values
        return {
            FIELD_ORDER[index]: value
            for index, value in enumerate(values)
            if value is not None
        }

    def get(self, field: HeaderField | str, default: int = 0) -> int:
        """Value of ``field`` (0 when the packet does not carry it)."""
        index = FIELD_INDEX.get(field)
        if index is None:
            index = FIELD_INDEX[HeaderField(field)]
        value = self._values[index]
        return default if value is None else value

    def set(self, field: HeaderField | str, value: int) -> None:
        """Set (rewrite) a header field in place."""
        index = FIELD_INDEX.get(field)
        if index is None:
            index = FIELD_INDEX[HeaderField(field)]
        if not (isinstance(value, int) and 0 <= value <= FIELD_MAX_BY_INDEX[index]):
            FIELD_REGISTRY[FIELD_ORDER[index]].validate(value)
        self._values[index] = value

    def header_values(self) -> List[Optional[int]]:
        """The internal fixed-order value array (treat as read-only)."""
        return self._values

    def copy(self) -> "Packet":
        """A copy with a new identity but the same headers, payload and trace.

        Switches copy packets before applying rewrite actions; the hop trace
        is carried over because the copy logically *is* the same packet
        continuing through the network.  Header values were validated when
        first set, so the copy clones the array without re-validating.
        """
        clone = Packet.__new__(Packet)
        clone.packet_id = next(_packet_ids)
        clone._values = self._values.copy()
        clone.payload_size = self.payload_size
        clone.flow_id = self.flow_id
        clone.created_at = self.created_at
        clone.sequence = self.sequence
        clone.is_probe = self.is_probe
        clone.trace = self.trace.copy()
        return clone

    @classmethod
    def from_values(
        cls,
        values: List[Optional[int]],
        payload_size: int = 100,
        flow_id: Optional[str] = None,
        created_at: float = 0.0,
        sequence: int = 0,
        is_probe: bool = False,
    ) -> "Packet":
        """Build a packet from a pre-validated fixed-order value array.

        Fast path for the traffic generators; ``values`` must follow
        :data:`~repro.packet.fields.FIELD_ORDER` and is owned by the packet
        after the call.
        """
        packet = cls.__new__(cls)
        packet.packet_id = next(_packet_ids)
        packet._values = values
        packet.payload_size = payload_size
        packet.flow_id = flow_id
        packet.created_at = created_at
        packet.sequence = sequence
        packet.is_probe = is_probe
        packet.trace = []
        return packet

    def items(self) -> Iterator:
        """Iterate over ``(field, value)`` pairs."""
        return iter(self.headers.items())

    @property
    def total_size(self) -> int:
        """Approximate wire size in bytes (headers + payload)."""
        return 42 + self.payload_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "probe" if self.is_probe else "pkt"
        fields = ", ".join(f"{field.value}={value}" for field, value in sorted(
            self.headers.items(), key=lambda item: item[0].value))
        return f"<{kind} #{self.packet_id} flow={self.flow_id} {fields}>"


#: Field indices used by :func:`make_ip_packet` (module-level constants keep
#: the per-packet cost to plain list stores).
_IDX_ETH_SRC = FIELD_INDEX[HeaderField.ETH_SRC]
_IDX_ETH_DST = FIELD_INDEX[HeaderField.ETH_DST]
_IDX_ETH_TYPE = FIELD_INDEX[HeaderField.ETH_TYPE]
_IDX_VLAN_ID = FIELD_INDEX[HeaderField.VLAN_ID]
_IDX_VLAN_PCP = FIELD_INDEX[HeaderField.VLAN_PCP]
_IDX_IP_SRC = FIELD_INDEX[HeaderField.IP_SRC]
_IDX_IP_DST = FIELD_INDEX[HeaderField.IP_DST]
_IDX_IP_PROTO = FIELD_INDEX[HeaderField.IP_PROTO]
_IDX_IP_TOS = FIELD_INDEX[HeaderField.IP_TOS]
_IDX_TP_SRC = FIELD_INDEX[HeaderField.TP_SRC]
_IDX_TP_DST = FIELD_INDEX[HeaderField.TP_DST]

_MAX_VLAN_ID = FIELD_MAX_BY_INDEX[_IDX_VLAN_ID]
_MAX_IP_PROTO = FIELD_MAX_BY_INDEX[_IDX_IP_PROTO]
_MAX_IP_TOS = FIELD_MAX_BY_INDEX[_IDX_IP_TOS]
_MAX_TP = FIELD_MAX_BY_INDEX[_IDX_TP_SRC]


def make_ip_packet(
    ip_src: str | int,
    ip_dst: str | int,
    *,
    eth_src: str | int = "00:00:00:00:00:01",
    eth_dst: str | int = "00:00:00:00:00:02",
    ip_proto: int = IP_PROTO_UDP,
    ip_tos: int = 0,
    tp_src: int = 10000,
    tp_dst = 80,
    vlan_id: int = 0,
    payload_size: int = 100,
    flow_id: Optional[str] = None,
    created_at: float = 0.0,
    sequence: int = 0,
) -> Packet:
    """Build a normal IPv4 data packet (used by the traffic generators)."""
    for value, limit, label in (
        (vlan_id, _MAX_VLAN_ID, "vlan_id"),
        (ip_proto, _MAX_IP_PROTO, "ip_proto"),
        (ip_tos, _MAX_IP_TOS, "ip_tos"),
        (tp_src, _MAX_TP, "tp_src"),
        (tp_dst, _MAX_TP, "tp_dst"),
    ):
        if not (isinstance(value, int) and 0 <= value <= limit):
            raise ValueError(f"{label} value {value!r} out of range 0..{limit}")
    values: List[Optional[int]] = [None] * FIELD_COUNT
    values[_IDX_ETH_SRC] = mac_to_int(eth_src)
    values[_IDX_ETH_DST] = mac_to_int(eth_dst)
    values[_IDX_ETH_TYPE] = ETH_TYPE_IP
    values[_IDX_VLAN_ID] = vlan_id
    values[_IDX_VLAN_PCP] = 0
    values[_IDX_IP_SRC] = ip_to_int(ip_src)
    values[_IDX_IP_DST] = ip_to_int(ip_dst)
    values[_IDX_IP_PROTO] = ip_proto
    values[_IDX_IP_TOS] = ip_tos
    values[_IDX_TP_SRC] = tp_src
    values[_IDX_TP_DST] = tp_dst
    return Packet.from_values(
        values,
        payload_size=int(payload_size),
        flow_id=flow_id,
        created_at=created_at,
        sequence=sequence,
    )


def make_probe_packet(
    headers: Dict[HeaderField, int],
    *,
    created_at: float = 0.0,
    probe_id: Optional[str] = None,
) -> Packet:
    """Build a RUM data-plane probe packet.

    Probes are small, carry no application payload, and are flagged so the
    delivery monitor does not count them as flow traffic.
    """
    packet = Packet(
        dict(headers),
        payload_size=0,
        flow_id=probe_id,
        created_at=created_at,
        is_probe=True,
    )
    return packet
