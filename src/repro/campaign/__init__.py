"""Campaign subsystem: parallel (scenario × technique × fault × scale × seed) sweeps.

The grid (:mod:`repro.campaign.grid`) expands a :class:`CampaignSpec` into
hash-keyed cells, the runner (:mod:`repro.campaign.runner`) executes pending
cells across worker processes with JSON-lines resume, and the report module
aggregates results with the :mod:`repro.analysis.report` table machinery.
``python -m repro.campaign`` is the command-line entry point.
"""

from repro.campaign.grid import CampaignCell, CampaignSpec, cell_from_config
from repro.campaign.report import (
    aggregate,
    render_report,
    render_resilience_report,
    resilience,
)
from repro.campaign.runner import (
    CampaignOutcome,
    CampaignRunner,
    completed_cell_ids,
    load_records,
    run_cell,
)

__all__ = [
    "CampaignCell",
    "CampaignOutcome",
    "CampaignRunner",
    "CampaignSpec",
    "aggregate",
    "cell_from_config",
    "completed_cell_ids",
    "load_records",
    "render_report",
    "render_resilience_report",
    "resilience",
    "run_cell",
]
