"""The campaign CLI: ``python -m repro.campaign``.

Subcommands::

    list                       show scenarios, topology families, fault models
    run [axes...]              expand a grid, run pending cells in parallel
    report [--out FILE]        aggregate a results file into a summary table

plus the live fleet monitor — usable *while* a campaign runs, since it only
reads the per-worker heartbeat shards::

    python -m repro.campaign --status results/

Fault sweeps add a ``--faults`` axis of fault-plan strings (quote them, the
shell dislikes parentheses)::

    python -m repro.campaign run --scenarios fault-sweep \
        --techniques barrier,general,no-wait \
        --faults 'none,ack-loss(probability=0.3),delay-spike(probability=0.1)'

and the report then includes the per-technique correctness-under-fault table.

``run`` appends to its results file and skips cells that already succeeded,
so re-invoking the same command resumes an interrupted campaign.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.analysis.report import format_table
from repro.campaign.grid import CampaignSpec
from repro.campaign.report import render_report
from repro.campaign.runner import CampaignRunner
from repro.campaign.status import DEFAULT_STALE_AFTER, DEFAULT_STRAGGLER_FACTOR
from repro.faults import available_faults, get_fault
from repro.faults.plan import split_outside_parens
from repro.scenarios import SCENARIOS, TOPOLOGY_FAMILIES, available_scenarios

DEFAULT_RESULTS = "campaign-results.jsonl"

logger = logging.getLogger("repro.campaign")


def setup_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Configure progress logging for the CLI.

    Progress and status go to stderr through the ``repro.campaign`` logger
    hierarchy; report tables stay on stdout (scripts and CI pipe them).
    """
    level = (logging.DEBUG if verbose
             else logging.WARNING if quiet else logging.INFO)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root = logging.getLogger("repro")
    root.setLevel(level)
    # Idempotent under repeated main() calls (tests): one handler, ever.
    if not any(isinstance(existing, logging.StreamHandler)
               for existing in root.handlers):
        root.addHandler(handler)


def _csv(value: str):
    return [item for item in value.split(",") if item]


def _int_csv(value: str):
    return [int(item) for item in _csv(value)]


def _fault_csv(value: str):
    """Split a fault axis on commas *outside* parentheses.

    ``none,ack-loss(probability=0.3,spike=2)`` is two entries, not three —
    parameter lists carry their own commas.
    """
    return split_outside_parens(value, ",")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Scenario campaign runner (parallel parameter sweeps).",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="debug-level progress output")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="warnings and errors only")
    parser.add_argument("--status", type=Path, default=None, metavar="DIR",
                        help="render live fleet health from a campaign's "
                             "heartbeat shards (pass the results directory, "
                             "the results file, or the heartbeats directory) "
                             "and exit; safe while the campaign is running")
    parser.add_argument("--dead-after", type=float,
                        default=DEFAULT_STALE_AFTER, metavar="SECONDS",
                        help="--status: a worker silent this long mid-cell "
                             "is flagged dead? (idle workers become exited; "
                             f"default {DEFAULT_STALE_AFTER:.0f}s)")
    parser.add_argument("--straggler-factor", type=float,
                        default=DEFAULT_STRAGGLER_FACTOR, metavar="X",
                        help="--status: a cell open longer than X times the "
                             "fleet's median cell wall marks its worker a "
                             f"straggler (default {DEFAULT_STRAGGLER_FACTOR:g}x)")
    commands = parser.add_subparsers(dest="command", required=False)

    commands.add_parser("list", help="list scenarios and topology families")

    run = commands.add_parser("run", help="run a (scenario x technique x "
                                          "scale x seed) grid")
    run.add_argument("--scenarios", type=_csv,
                     default=["path-migration", "link-failure", "ecmp-rebalance"],
                     help="comma-separated scenario names")
    run.add_argument("--techniques", type=_csv, default=["barrier", "general"],
                     help="comma-separated technique names")
    run.add_argument("--scales", type=_int_csv, default=[1],
                     help="comma-separated integer scales")
    run.add_argument("--seeds", type=_int_csv, default=[1, 2],
                     help="comma-separated seeds")
    run.add_argument("--faults", type=_fault_csv, default=["none"],
                     help="comma-separated fault-plan strings, e.g. "
                          "'none,ack-loss(probability=0.3)' (quote the "
                          "parentheses; 'none' keeps a fault-free control "
                          "group)")
    run.add_argument("--recovery", type=_fault_csv, default=["off"],
                     dest="recoveries",
                     help="comma-separated recovery-policy strings, e.g. "
                          "'off,on' or 'off,on(max_attempts=6)' ('off' keeps "
                          "an unrecovered control group)")
    run.add_argument("--topology", default="auto",
                     help=f"topology family ({', '.join(TOPOLOGY_FAMILIES)}, "
                          "or 'auto' for each scenario's default)")
    run.add_argument("--flows", type=int, default=8, help="flows per cell")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: min(cpu, 8))")
    run.add_argument("--chunk-size", type=int, default=None,
                     help="cells dispatched per worker task (default: "
                          "auto, ~4 chunks per worker, max 8)")
    run.add_argument("--trace", action="store_true",
                     help="arm rule-lifecycle tracing on every cell and "
                          "write one Chrome-trace shard per cell (see "
                          "--trace-dir); the report gains an activation-gap "
                          "section")
    run.add_argument("--trace-dir", type=Path, default=None,
                     help="directory for per-cell trace shards (default: "
                          "'traces' next to the results file)")
    run.add_argument("--heartbeat-dir", type=Path, default=None,
                     help="directory for per-worker heartbeat shards read "
                          "by --status (default: 'heartbeats' next to the "
                          "results file)")
    run.add_argument("--cache", type=Path, default=None, metavar="STORE",
                     help="run-store directory (see python -m repro.store): "
                          "pending cells with a digest-verified record there "
                          "are emitted from the store instead of simulated")
    run.add_argument("--out", type=Path, default=Path(DEFAULT_RESULTS),
                     help="JSON-lines results file (appended; enables resume)")
    run.add_argument("--fresh", action="store_true",
                     help="delete an existing results file before running")
    run.add_argument("--quick", action="store_true",
                     help="ignore the axes and run one tiny smoke cell")
    run.add_argument("--no-report", action="store_true",
                     help="skip the aggregated report after the run")

    report = commands.add_parser("report", help="aggregate a results file")
    report.add_argument("--out", type=Path, default=Path(DEFAULT_RESULTS),
                        help="JSON-lines results file to aggregate")
    report.add_argument("--baseline", type=Path, default=None,
                        metavar="STORE_OR_RESULTS",
                        help="also render the differential resilience table "
                             "against a baseline (a run-store directory or "
                             "another results file): cells whose outcome or "
                             "digest changed, with a one-line explanation")
    return parser


def cmd_list() -> int:
    rows = [
        [name, SCENARIOS[name].default_topology, SCENARIOS[name].description]
        for name in available_scenarios()
    ]
    print(format_table(["scenario", "default topology", "description"], rows,
                       title="Registered scenarios"))
    print()
    fault_rows = [
        [name, get_fault(name).layer, get_fault(name).description]
        for name in available_faults()
    ]
    print(format_table(["fault", "layer", "description"], fault_rows,
                       title="Registered fault models (--faults axis)"))
    print()
    print("topology families:", ", ".join(TOPOLOGY_FAMILIES))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.quick:
        spec = CampaignSpec.quick()
        spec.trace = args.trace
    else:
        spec = CampaignSpec(
            scenarios=args.scenarios,
            techniques=args.techniques,
            scales=args.scales,
            seeds=args.seeds,
            faults=args.faults,
            recoveries=args.recoveries,
            topology=args.topology,
            flow_count=args.flows,
            trace=args.trace,
        )
    spec.validate()
    if args.fresh and args.out.exists():
        args.out.unlink()
    runner = CampaignRunner(spec, args.out, max_workers=args.workers,
                            chunk_size=args.chunk_size,
                            trace_dir=args.trace_dir,
                            heartbeat_dir=args.heartbeat_dir,
                            cache=args.cache)
    cells = spec.cells()
    logger.info(
        "campaign: %d cells (%d scenarios x %d techniques x %d faults "
        "x %d recoveries x %d scales x %d seeds), %d workers -> %s",
        len(cells), len(spec.scenarios), len(spec.techniques),
        len(spec.faults), len(spec.recoveries), len(spec.scales),
        len(spec.seeds), runner.max_workers, args.out,
    )
    if spec.trace and runner.trace_dir is not None:
        logger.info("tracing armed: shards -> %s", runner.trace_dir)
    logger.info("heartbeats -> %s (watch live: python -m repro.campaign "
                "--status %s)", runner.heartbeat_dir, args.out)
    if args.cache is not None:
        logger.info("cache armed: %s (cells with digest-verified store "
                    "records are not re-simulated)", args.cache)
    outcome = runner.run()
    logger.info("done: ran %d, cached %d (emitted from store), skipped %d "
                "(already complete), failed %d",
                outcome.ran, outcome.cached, outcome.skipped, outcome.failed)
    if not args.no_report:
        print()
        print(render_report(args.out, cached=outcome.cached))
    return 1 if outcome.failed else 0


def cmd_report(args: argparse.Namespace) -> int:
    print(render_report(args.out))
    if args.baseline is not None:
        from repro.campaign.report import render_differential_report

        print()
        print(render_differential_report(args.out, args.baseline))
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.campaign.status import render_status

    print(render_status(args.status, stale_after=args.dead_after,
                        straggler_factor=args.straggler_factor))
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(verbose=args.verbose, quiet=args.quiet)
    try:
        if args.status is not None:
            return cmd_status(args)
        if args.command is None:
            parser.error("a subcommand (list/run/report) or --status is "
                         "required")
        if args.command == "list":
            return cmd_list()
        if args.command == "run":
            return cmd_run(args)
        return cmd_report(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
