"""The parallel campaign runner.

Fans the cells of a :class:`~repro.campaign.grid.CampaignSpec` out across
worker processes (each simulation run is single-threaded pure Python, so
process-level parallelism is what buys wall-clock time) and appends one
JSON line per finished cell to the results file.  Records are keyed by the
cell's config hash: restarting the same campaign against the same file
skips every cell that already has an ``ok`` record, so an interrupted — or
killed — campaign resumes exactly where it left off.
"""

from __future__ import annotations

import json
import logging
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set

from repro.campaign import heartbeat
from repro.campaign.grid import CampaignCell, CampaignSpec
from repro.scenarios.engine import run_scenario

logger = logging.getLogger(__name__)


def run_cell(cell: CampaignCell,
             trace_dir: Optional[Path] = None) -> Dict[str, object]:
    """Run one grid cell; the unit of work shipped to worker processes.

    The cell runs through the unified session API
    (:meth:`~repro.session.spec.SessionSpec.run` via the scenario adapter)
    and its record carries the flat :meth:`~repro.session.record.RunRecord.summary`
    keys plus the session's canonical spec encoding under ``"session"``.

    Traced cells additionally get a per-switch ``activation_gaps`` summary
    in the record, and — when ``trace_dir`` is set — a Chrome-trace shard
    written to ``<trace_dir>/<cell_id>.trace.json`` (its path recorded under
    ``trace_path``).  The full event log never enters the JSONL record: one
    cell stays one short line.

    Never raises: failures come back as ``status: "error"`` records so one
    broken cell cannot take down the campaign (and is retried on resume).

    Every record also carries its telemetry: ``wall_s`` (seconds this cell
    took in its worker) and ``peak_rss_kb`` (the worker process's peak RSS
    so far — ``ru_maxrss`` is a high-water mark, so this ratchets upward
    across a worker's cells rather than resetting per cell).
    """
    record: Dict[str, object] = {
        "cell_id": cell.cell_id,
        "config": cell.config(),
        "worker_pid": os.getpid(),
    }
    started = heartbeat.wall_clock()
    try:
        result = run_scenario(cell.scenario, cell.technique,
                              cell.scenario_params())
        record.update(result.summary())
        record["session"] = dict(result.spec)
        record["status"] = "ok" if result.completed else "incomplete"
        if result.trace is not None:
            from repro.analysis.timeline import activation_gap_summary
            from repro.obs.export import write_chrome_trace

            record["activation_gaps"] = activation_gap_summary(result.trace)
            if trace_dir is not None:
                trace_dir = Path(trace_dir)
                trace_dir.mkdir(parents=True, exist_ok=True)
                shard = trace_dir / f"{cell.cell_id}.trace.json"
                write_chrome_trace(result.trace, shard)
                record["trace_path"] = str(shard)
    except Exception as error:  # noqa: BLE001 - isolate worker failures
        record["status"] = "error"
        record["error"] = f"{type(error).__name__}: {error}"
        record["traceback"] = traceback.format_exc()
    record["wall_s"] = round(heartbeat.wall_clock() - started, 3)
    record["peak_rss_kb"] = heartbeat.peak_rss_kb()
    return record


def run_cells_chunk(
    cells: List[CampaignCell],
    trace_dir: Optional[Path] = None,
    heartbeat_dir: Optional[Path] = None,
) -> List[Dict[str, object]]:
    """Run a chunk of grid cells in one worker task.

    Chunking amortises the executor's per-task pickling/IPC overhead over
    several simulations and lets the worker-process topology cache
    (:func:`repro.scenarios.generators.build_topology_cached`) pay off
    within a single task.  Cell isolation is unchanged: each cell still
    produces its own record, errors included.

    With ``heartbeat_dir`` set, the worker appends cell-start/cell-done
    beats to its own shard there (see :mod:`repro.campaign.heartbeat`), so
    ``python -m repro.campaign --status`` can watch the fleet mid-run.
    """
    beats = heartbeat.writer_for(heartbeat_dir)
    records: List[Dict[str, object]] = []
    for cell in cells:
        if beats is not None:
            beats.cell_started(cell.cell_id, cell.describe())
        record = run_cell(cell, trace_dir=trace_dir)
        if beats is not None:
            beats.cell_finished(cell.cell_id, str(record.get("status")),
                                float(record.get("wall_s", 0.0)))
        records.append(record)
    return records


def load_records(results_path: Path) -> List[Dict[str, object]]:
    """All parseable records of a JSON-lines results file (may be empty)."""
    records = []
    if not results_path.exists():
        return records
    with results_path.open("r", encoding="utf-8") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A half-written trailing line from a killed run; skip it —
                # its cell has no ok-record and will simply be re-run.
                continue
    return records


def encode_record(record: Dict[str, object],
                  cell: CampaignCell) -> "tuple[str, Dict[str, object]]":
    """JSON-encode a cell record, downgrading un-encodable ones to errors.

    A scenario returning metrics json cannot serialize must cost only its
    own cell — not abort the campaign loop with other futures in flight.
    """
    try:
        return json.dumps(record), record
    except TypeError as error:
        record = {
            "cell_id": cell.cell_id,
            "config": cell.config(),
            "status": "error",
            "error": f"unserializable result: {error}",
        }
        return json.dumps(record), record


def _terminate_partial_line(results_path: Path) -> None:
    """Newline-terminate a file whose last write was cut off by a kill.

    Without this, the first record appended on resume would merge into the
    dangling partial line and be lost to ``load_records``.
    """
    if not results_path.exists() or results_path.stat().st_size == 0:
        return
    with results_path.open("rb+") as handle:
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) != b"\n":
            handle.write(b"\n")


#: Record statuses that resume treats as final.  ``incomplete`` runs are
#: deterministic (seeded simulation hit its deadline) so re-running them can
#: only reproduce the same record; ``error`` cells are retried because they
#: may be environmental (a killed worker, a transient import failure).
FINAL_STATUSES = ("ok", "incomplete")


def completed_cell_ids(results_path: Path) -> Set[str]:
    """Cell ids with a final record in ``results_path`` (skipped on resume)."""
    return {
        record["cell_id"]
        for record in load_records(results_path)
        if record.get("status") in FINAL_STATUSES and "cell_id" in record
    }


@dataclass
class CampaignOutcome:
    """What one :meth:`CampaignRunner.run` invocation did."""

    total_cells: int
    skipped: int
    ran: int
    failed: int
    results_path: Path
    records: List[Dict[str, object]] = field(default_factory=list)
    #: Cells emitted verbatim from the run store's cache (never simulated).
    cached: int = 0


class CampaignRunner:
    """Expands a spec, skips finished cells, and fans the rest out."""

    def __init__(
        self,
        spec: CampaignSpec,
        results_path: Path,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        trace_dir: Optional[Path] = None,
        heartbeat_dir: Optional[Path] = None,
        cache: Optional[object] = None,
    ) -> None:
        self.spec = spec
        #: A :class:`repro.store.RunStore` (or its root path) consulted
        #: before dispatch: a pending cell whose ``cell_id`` maps to a
        #: digest-verified record in the store is emitted verbatim instead
        #: of simulated.  ``None`` disables caching.
        self.cache = cache
        self.results_path = Path(results_path)
        self.max_workers = max_workers or min(os.cpu_count() or 2, 8)
        #: Cells dispatched per worker task (``None``: derived from the
        #: pending-cell count so every worker gets a few chunks).
        self.chunk_size = chunk_size
        #: Where traced cells write their Chrome-trace shards (``None``:
        #: ``<results dir>/traces`` when the spec arms tracing).
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is None and spec.trace:
            self.trace_dir = self.results_path.parent / "traces"
        #: Where workers append their heartbeat shards; ``--status`` reads
        #: this directory live.  Defaults next to the results file.
        self.heartbeat_dir = (Path(heartbeat_dir) if heartbeat_dir is not None
                              else self.results_path.parent / "heartbeats")

    def pending_cells(self) -> List[CampaignCell]:
        """Grid cells without a successful record yet."""
        done = completed_cell_ids(self.results_path)
        return [cell for cell in self.spec.cells() if cell.cell_id not in done]

    def _chunk_size_for(self, pending_count: int) -> int:
        """Cells per worker task: ~4 chunks per worker, capped at 8 cells.

        Small enough that a killed run loses little and progress stays
        responsive, large enough to amortise executor overhead and reuse
        each worker's topology cache.
        """
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        per_worker = pending_count / max(1, self.max_workers * 4)
        return max(1, min(8, int(per_worker)))

    def _cache_store(self):
        """The :class:`~repro.store.RunStore` behind ``cache`` (if any)."""
        if self.cache is None:
            return None
        if isinstance(self.cache, (str, Path)):
            from repro.store import RunStore

            return RunStore(Path(self.cache))
        return self.cache

    def run(self, progress: Optional[Callable[[str], None]] = None) -> CampaignOutcome:
        """Run every pending cell; append one JSON line per finished cell.

        Lines are flushed as soon as each cell finishes, so a kill at any
        point loses at most in-flight cells — never completed ones.

        With a ``cache`` store attached, pending cells whose spec encoding
        already has a digest-verified record are emitted *verbatim* from
        the store — original telemetry included — so a fully cached re-run
        simulates nothing and aggregates to a byte-identical report.

        Progress goes through the module logger by default (INFO level), so
        parallel campaigns compose with the host application's logging
        configuration instead of interleaving bare prints; pass ``progress``
        to capture the messages directly (tests, custom UIs).
        """
        say = progress or logger.info
        cells = self.spec.cells()
        pending = self.pending_cells()
        skipped = len(cells) - len(pending)
        if skipped:
            say(f"resuming: {skipped}/{len(cells)} cells already done")
        cache_hits: List[tuple] = []
        store = self._cache_store()
        if store is not None and pending:
            uncached: List[CampaignCell] = []
            for cell in pending:
                hit = store.cached_record(cell.cell_id)
                if hit is None:
                    uncached.append(cell)
                else:
                    cache_hits.append((cell, hit))
            if cache_hits:
                say(f"cache: {len(cache_hits)}/{len(pending)} pending cells "
                    f"have digest-verified records in {store.root}")
            pending = uncached
        ran = failed = 0
        records: List[Dict[str, object]] = []
        started = heartbeat.wall_clock()
        if pending or cache_hits:
            self.results_path.parent.mkdir(parents=True, exist_ok=True)
            _terminate_partial_line(self.results_path)
            heartbeat.write_manifest(
                self.heartbeat_dir,
                total_cells=len(cells),
                pending=len(pending),
                workers=self.max_workers,
                results=str(self.results_path),
                cached=len(cache_hits),
            )
        if cache_hits:
            with self.results_path.open("a", encoding="utf-8") as sink:
                for cell, record in cache_hits:
                    line, record = encode_record(record, cell)
                    sink.write(line + "\n")
                    records.append(record)
                    say(f"[cache] {cell.describe()} "
                        f"-> {record.get('status')} (emitted from store)")
        if pending:
            chunk_size = self._chunk_size_for(len(pending))
            chunks = [pending[index:index + chunk_size]
                      for index in range(0, len(pending), chunk_size)]
            with self.results_path.open("a", encoding="utf-8") as sink, \
                    ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = {pool.submit(run_cells_chunk, chunk,
                                       self.trace_dir,
                                       self.heartbeat_dir): chunk
                           for chunk in chunks}
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining,
                                               return_when=FIRST_COMPLETED)
                    for future in finished:
                        chunk = futures[future]
                        try:
                            chunk_records = future.result()
                        except Exception as error:  # pool/pickling failure
                            chunk_records = [
                                {
                                    "cell_id": cell.cell_id,
                                    "config": cell.config(),
                                    "status": "error",
                                    "error": f"{type(error).__name__}: {error}",
                                }
                                for cell in chunk
                            ]
                        for cell, record in zip(chunk, chunk_records):
                            line, record = encode_record(record, cell)
                            sink.write(line + "\n")
                            records.append(record)
                            ran += 1
                            # "incomplete" is a measured outcome (a deadline
                            # legitimately missed — what many fault plans
                            # provoke on purpose), not a campaign failure.
                            if record.get("status") not in FINAL_STATUSES:
                                failed += 1
                            elapsed = heartbeat.wall_clock() - started
                            eta = elapsed / ran * (len(pending) - ran)
                            say(f"[{ran}/{len(pending)}] {cell.describe()} "
                                f"-> {record.get('status')} "
                                f"| elapsed {elapsed:,.0f}s eta {eta:,.0f}s")
                            logger.debug(
                                "cell %s: wall_s=%s peak_rss_kb=%s outcome=%s",
                                cell.cell_id, record.get("wall_s"),
                                record.get("peak_rss_kb"),
                                record.get("status"))
                        sink.flush()
        return CampaignOutcome(
            total_cells=len(cells),
            skipped=skipped,
            ran=ran,
            failed=failed,
            results_path=self.results_path,
            records=records,
            cached=len(cache_hits),
        )
