"""Parameter grids for scenario campaigns.

A :class:`CampaignSpec` names the axes of a sweep — scenarios, techniques,
fault plans, topology scales and seeds — and expands into the cross product of
:class:`CampaignCell` instances.  Every cell derives a stable ``cell_id``
from the SHA-1 of its canonical JSON configuration; the campaign runner
keys result records by that id, which is what makes interrupted campaigns
resumable without re-running finished cells.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.techniques.registry import available_techniques
from repro.faults.plan import NO_FAULTS, FaultPlan
from repro.recovery.policy import NO_RECOVERY, RecoveryPolicy
from repro.scenarios.base import ScenarioParams, available_scenarios


@dataclass(frozen=True)
class CampaignCell:
    """One point of the (scenario × technique × fault × scale × seed) grid."""

    scenario: str
    technique: str
    scale: int = 1
    seed: int = 1
    topology: str = "auto"
    flow_count: int = 8
    rate_pps: float = 250.0
    max_update_duration: float = 15.0
    #: Fault plan in compact string form (``"none"``: fault-free control run).
    fault: str = "none"
    #: Recovery policy in compact string form (``"off"``: the pre-recovery
    #: path); see :meth:`repro.recovery.RecoveryPolicy.from_string`.
    recovery: str = "off"
    #: Arm rule-lifecycle tracing for this cell (see :mod:`repro.obs`).
    trace: bool = False

    def config(self) -> Dict[str, object]:
        """The canonical, JSON-able configuration of this cell.

        The ``fault`` key is only present for faulted cells: fault-free
        configurations hash to the same ``cell_id`` as before the fault axis
        existed, so resuming a pre-fault-subsystem results file still skips
        its finished cells instead of re-running (and double-counting) them.
        ``trace`` follows the same only-when-armed rule — and because
        tracing never changes a cell's outcome, a traced cell_id staying
        distinct from its untraced twin is intentional: their records carry
        different payloads (the traced one has gap summaries and a shard).
        """
        config = {
            "scenario": self.scenario,
            "technique": self.technique,
            "scale": self.scale,
            "seed": self.seed,
            "topology": self.topology,
            "flow_count": self.flow_count,
            "rate_pps": self.rate_pps,
            "max_update_duration": self.max_update_duration,
        }
        if self.fault.lower() not in NO_FAULTS:
            config["fault"] = self.fault
        # Same only-when-armed rule: recovery-off cells hash to their
        # pre-recovery cell_id, so old results files still resume cleanly.
        if self.recovery.lower() not in NO_RECOVERY:
            config["recovery"] = self.recovery
        if self.trace:
            config["trace"] = True
        return config

    @property
    def cell_id(self) -> str:
        """Stable hash of the configuration (used for resume bookkeeping)."""
        canonical = json.dumps(self.config(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]

    def scenario_params(self) -> ScenarioParams:
        """The :class:`ScenarioParams` this cell runs with."""
        return ScenarioParams(
            topology=self.topology,
            scale=self.scale,
            seed=self.seed,
            flow_count=self.flow_count,
            rate_pps=self.rate_pps,
            max_update_duration=self.max_update_duration,
            # Passed through verbatim: an explicit "none" stays an explicit
            # fault-free control run even for scenarios (fault-sweep) that
            # arm a default mix when the axis is absent.
            faults=self.fault,
            # Likewise verbatim: an explicit "off" stays an unrecovered
            # control run even for scenarios (rolling-upgrade) that default
            # recovery on when the axis is absent.
            recovery=self.recovery,
            trace=self.trace,
        )

    def describe(self) -> str:
        """Short human-readable label for progress output."""
        label = (f"{self.scenario}/{self.technique} "
                 f"topo={self.topology} scale={self.scale} seed={self.seed}")
        if self.fault.lower() not in NO_FAULTS:
            label += f" fault={self.fault}"
        if self.recovery.lower() not in NO_RECOVERY:
            label += f" recovery={self.recovery}"
        if self.trace:
            label += " trace"
        return label


@dataclass
class CampaignSpec:
    """The axes of a campaign grid."""

    scenarios: List[str] = field(
        default_factory=lambda: ["path-migration", "link-failure", "ecmp-rebalance"]
    )
    techniques: List[str] = field(default_factory=lambda: ["barrier", "general"])
    scales: List[int] = field(default_factory=lambda: [1])
    seeds: List[int] = field(default_factory=lambda: [1, 2])
    #: Fault-plan strings (see :meth:`repro.faults.FaultPlan.from_string`);
    #: include ``"none"`` to keep a fault-free control group in the grid.
    faults: List[str] = field(default_factory=lambda: ["none"])
    #: Recovery-policy strings (see
    #: :meth:`repro.recovery.RecoveryPolicy.from_string`); include ``"off"``
    #: to keep an unrecovered control group next to the recovered cells.
    recoveries: List[str] = field(default_factory=lambda: ["off"])
    topology: str = "auto"
    flow_count: int = 8
    rate_pps: float = 250.0
    max_update_duration: float = 15.0
    #: Arm rule-lifecycle tracing on every cell (``--trace`` on the CLI);
    #: the runner then writes one Chrome-trace shard per cell.
    trace: bool = False

    def validate(self) -> None:
        """Reject empty axes and unknown scenario/technique/fault names early."""
        for axis_name in ("scenarios", "techniques", "scales", "seeds", "faults",
                          "recoveries"):
            if not getattr(self, axis_name):
                raise ValueError(f"campaign axis {axis_name!r} is empty")
        known = set(available_scenarios())
        unknown = [name for name in self.scenarios if name not in known]
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; available: {sorted(known)}"
            )
        valid_techniques = set(available_techniques())
        bad = [name for name in self.techniques if name not in valid_techniques]
        if bad:
            raise ValueError(
                f"unknown technique(s) {bad}; available: {sorted(valid_techniques)}"
            )
        for fault in self.faults:
            try:
                FaultPlan.from_string(fault).validate()
            # TypeError covers non-numeric parameter values ("probability=oops"
            # parses as a string and fails the model's range checks).
            except (KeyError, ValueError, TypeError) as error:
                raise ValueError(f"bad fault axis entry {fault!r}: {error}") from None
        for recovery in self.recoveries:
            try:
                RecoveryPolicy.from_string(recovery).validate()
            except (ValueError, TypeError) as error:
                raise ValueError(
                    f"bad recovery axis entry {recovery!r}: {error}"
                ) from None

    def cells(self) -> List[CampaignCell]:
        """The full cross product, in deterministic order."""
        self.validate()
        return [
            CampaignCell(
                scenario=scenario,
                technique=technique,
                scale=scale,
                seed=seed,
                topology=self.topology,
                flow_count=self.flow_count,
                rate_pps=self.rate_pps,
                max_update_duration=self.max_update_duration,
                fault=fault,
                recovery=recovery,
                trace=self.trace,
            )
            for scenario, technique, fault, recovery, scale, seed
            in itertools.product(
                self.scenarios, self.techniques, self.faults, self.recoveries,
                self.scales, self.seeds
            )
        ]

    @classmethod
    def quick(cls) -> "CampaignSpec":
        """A single tiny cell: the CI smoke configuration."""
        return cls(
            scenarios=["path-migration"],
            techniques=["general"],
            scales=[1],
            seeds=[1],
            flow_count=2,
        )


def cell_from_config(config: Dict[str, object]) -> CampaignCell:
    """Rebuild a cell from a result record's stored configuration."""
    return CampaignCell(**config)
