"""Per-worker heartbeat telemetry for campaign runs.

Each :class:`~concurrent.futures.ProcessPoolExecutor` worker appends one
JSON line per cell boundary to its own shard
(``<heartbeat dir>/worker-<pid>.heartbeat.jsonl``), so the fleet's health
is observable *while the campaign runs* without any coordination: the
``python -m repro.campaign --status`` monitor (see
:mod:`repro.campaign.status`) just re-reads the shards.  One shard per
worker pid means no cross-process locking; appends of one short line are
atomic enough on every filesystem the runner targets.

Shard lines carry ``event`` = ``worker-start`` / ``cell-start`` /
``cell-done``; ``cell-done`` lines accumulate the worker's outcome counts,
cells/s throughput and peak RSS.  The runner additionally writes one
``campaign.json`` manifest per run with the grid totals the monitor needs
for ETA math.

This module is the campaign side's one sanctioned wall-clock reader (RL002
allowlists it): heartbeats are *about* wall time, and nothing they measure
feeds back into simulation state.  The runner routes its own elapsed/ETA
arithmetic through :func:`wall_clock` for the same reason.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

#: Shard filename suffix (one shard per worker process).
SHARD_SUFFIX = ".heartbeat.jsonl"
#: The per-run manifest the status monitor reads for ETA math.
MANIFEST_NAME = "campaign.json"


def wall_clock() -> float:
    """Monotonic wall seconds (elapsed/ETA arithmetic)."""
    return time.perf_counter()


def wall_now() -> float:
    """Epoch wall seconds (heartbeat timestamps, last-seen ages)."""
    return time.time()


def peak_rss_kb() -> int:
    """This process's peak RSS in kilobytes (Linux ``ru_maxrss`` unit)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        rss //= 1024
    return int(rss)


class HeartbeatWriter:
    """One worker's append-only heartbeat shard."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.path = self.directory / f"worker-{self.pid}{SHARD_SUFFIX}"
        self.cells_done = 0
        self.outcomes: Dict[str, int] = {}
        self.started = wall_now()
        self._emit({"event": "worker-start"})

    def cell_started(self, cell_id: str, describe: str = "") -> None:
        payload: Dict[str, object] = {"event": "cell-start", "cell_id": cell_id}
        if describe:
            payload["cell"] = describe
        self._emit(payload)

    def cell_finished(self, cell_id: str, status: str, wall_s: float) -> None:
        self.cells_done += 1
        self.outcomes[status] = self.outcomes.get(status, 0) + 1
        elapsed = max(wall_now() - self.started, 1e-9)
        self._emit({
            "event": "cell-done",
            "cell_id": cell_id,
            "status": status,
            "wall_s": round(wall_s, 3),
            "cells_done": self.cells_done,
            "cells_per_s": round(self.cells_done / elapsed, 3),
            "outcomes": dict(self.outcomes),
            "peak_rss_kb": peak_rss_kb(),
        })

    def _emit(self, payload: Dict[str, object]) -> None:
        payload.setdefault("ts", round(wall_now(), 3))
        payload.setdefault("pid", self.pid)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")


#: Per-process writer cache: a worker reuses one shard across the many
#: chunks the runner ships it (keyed by directory so tests with several
#: campaigns in one process stay isolated).
_WRITERS: Dict[str, HeartbeatWriter] = {}


def writer_for(directory: Optional[Path]) -> Optional[HeartbeatWriter]:
    """The calling process's shard writer for ``directory`` (cached)."""
    if directory is None:
        return None
    key = f"{os.getpid()}:{directory}"
    writer = _WRITERS.get(key)
    if writer is None:
        writer = _WRITERS[key] = HeartbeatWriter(Path(directory))
    return writer


def write_manifest(directory: Path, *, total_cells: int, pending: int,
                   workers: int, results: str, cached: int = 0) -> Path:
    """Write the run manifest the ``--status`` monitor reads for ETA math.

    ``cached`` counts cells the runner emitted from its run store instead of
    simulating; ``pending`` counts only cells actually dispatched to
    workers, so the monitor's ETA stays a measure of simulation work.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    payload = {
        "started": round(wall_now(), 3),
        "total_cells": total_cells,
        "pending": pending,
        "workers": workers,
        "results": results,
        "cached": cached,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_manifest(directory: Path) -> Dict[str, object]:
    """The run manifest, or ``{}`` when none was written (old runs)."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return {}


def load_shards(directory: Path) -> Dict[int, List[Dict[str, object]]]:
    """All parseable heartbeat lines, grouped by worker pid."""
    shards: Dict[int, List[Dict[str, object]]] = {}
    directory = Path(directory)
    if not directory.is_dir():
        return shards
    for path in sorted(directory.glob(f"*{SHARD_SUFFIX}")):
        lines: List[Dict[str, object]] = []
        for raw in path.read_text(encoding="utf-8").splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError:
                continue  # a half-written trailing beat from a live worker
        if lines:
            shards[int(lines[0].get("pid", 0))] = lines
    return shards
