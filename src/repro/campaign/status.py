"""Live campaign fleet monitor: ``python -m repro.campaign --status``.

Reads the per-worker heartbeat shards a running (or finished) campaign
writes (see :mod:`repro.campaign.heartbeat`) and renders the fleet's
health: per-worker throughput, outcome counts and peak RSS, which cell
each worker is on right now, stragglers (a cell open for much longer than
the fleet's median cell wall), and workers that look dead (no beat for a
long time mid-cell).  Pure read-side: the monitor never touches the
results file or the workers, so it is safe to run while the campaign is
mid-flight — that is the point.

Every age/ETA computation takes an injectable ``now`` so tests can pin
time; the CLI passes the real clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.campaign.heartbeat import (
    SHARD_SUFFIX,
    load_manifest,
    load_shards,
    wall_now,
)

#: A worker whose last beat is older than this (seconds) while a cell is
#: open is flagged ``dead?``; with no cell open it is simply ``exited``.
DEFAULT_STALE_AFTER = 120.0
#: A cell open for longer than this multiple of the fleet's median
#: completed-cell wall marks its worker a ``straggler``.
DEFAULT_STRAGGLER_FACTOR = 4.0

#: Headers of the per-worker fleet table.
WORKER_HEADERS = ["worker", "state", "cells", "cells/s", "outcomes",
                  "rss [MB]", "current cell", "on it [s]", "last beat [s]"]


@dataclass
class WorkerStatus:
    """One worker's health, distilled from its heartbeat shard."""

    pid: int
    state: str = "idle"
    cells_done: int = 0
    cells_per_s: float = 0.0
    outcomes: Dict[str, int] = field(default_factory=dict)
    peak_rss_kb: int = 0
    current_cell: Optional[str] = None
    #: Seconds the current cell has been open (``None``: no open cell).
    open_for_s: Optional[float] = None
    #: Seconds since the worker's last beat of any kind.
    last_beat_age_s: float = 0.0
    #: Walls of this worker's completed cells (feeds the fleet median).
    completed_walls: List[float] = field(default_factory=list)


def resolve_heartbeat_dir(path: Path) -> Path:
    """The heartbeat directory behind any of the paths users pass.

    Accepts the heartbeat directory itself, the campaign results *directory*
    (containing a ``heartbeats/`` subdirectory), or the results *file* (the
    runner keeps heartbeats in a sibling ``heartbeats/`` directory).
    """
    path = Path(path)
    if path.is_dir():
        if any(path.glob(f"*{SHARD_SUFFIX}")) or (path / "campaign.json").exists():
            return path
        return path / "heartbeats"
    return path.parent / "heartbeats"


def worker_statuses(
    shards: Dict[int, List[Dict[str, object]]],
    now: float,
    stale_after: float = DEFAULT_STALE_AFTER,
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
) -> List[WorkerStatus]:
    """Per-worker health rows, sorted by pid.

    State ladder: a worker with an open cell is ``running``, promoted to
    ``straggler`` when the cell has been open longer than
    ``straggler_factor`` × the fleet's median completed-cell wall, and to
    ``dead?`` when it also has not beaten for ``stale_after`` seconds.
    Without an open cell it is ``idle`` (recent beat) or ``exited``.
    """
    statuses: List[WorkerStatus] = []
    for pid in sorted(shards):
        lines = shards[pid]
        status = WorkerStatus(pid=pid)
        open_cell: Optional[Dict[str, object]] = None
        for line in lines:
            event = line.get("event")
            if event == "cell-start":
                open_cell = line
            elif event == "cell-done":
                open_cell = None
                status.cells_done = int(line.get("cells_done", 0))
                status.cells_per_s = float(line.get("cells_per_s", 0.0))
                status.outcomes = dict(line.get("outcomes", {}))
                status.peak_rss_kb = int(line.get("peak_rss_kb", 0))
                status.completed_walls.append(float(line.get("wall_s", 0.0)))
        status.last_beat_age_s = max(0.0, now - float(lines[-1].get("ts", now)))
        if open_cell is not None:
            status.current_cell = str(open_cell.get("cell_id"))
            status.open_for_s = max(0.0, now - float(open_cell.get("ts", now)))
        statuses.append(status)

    walls = sorted(
        wall for status in statuses for wall in status.completed_walls)
    median_wall = walls[len(walls) // 2] if walls else None
    for status in statuses:
        if status.current_cell is not None:
            status.state = "running"
            if (median_wall is not None and status.open_for_s is not None
                    and status.open_for_s > straggler_factor * median_wall):
                status.state = "straggler"
            if status.last_beat_age_s > stale_after:
                status.state = "dead?"
        else:
            status.state = ("exited" if status.last_beat_age_s > stale_after
                            else "idle")
    return statuses


def _outcomes_cell(outcomes: Dict[str, int]) -> str:
    if not outcomes:
        return "-"
    return " ".join(f"{key}={outcomes[key]}" for key in sorted(outcomes))


def _worker_rows(statuses: List[WorkerStatus]) -> List[List[object]]:
    rows: List[List[object]] = []
    for status in statuses:
        rows.append([
            status.pid,
            status.state,
            status.cells_done,
            f"{status.cells_per_s:.2f}" if status.cells_per_s else "-",
            _outcomes_cell(status.outcomes),
            f"{status.peak_rss_kb / 1024.0:.0f}" if status.peak_rss_kb else "-",
            status.current_cell or "-",
            f"{status.open_for_s:.0f}" if status.open_for_s is not None else "-",
            f"{status.last_beat_age_s:.0f}",
        ])
    return rows


def render_status(
    path: Path,
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
) -> str:
    """The fleet-health view for one campaign's heartbeat directory."""
    heartbeat_dir = resolve_heartbeat_dir(Path(path))
    shards = load_shards(heartbeat_dir)
    if not shards:
        return (f"(no heartbeat shards under {heartbeat_dir}; is the campaign "
                "running with heartbeats enabled?)")
    if now is None:
        now = wall_now()
    manifest = load_manifest(heartbeat_dir)
    statuses = worker_statuses(shards, now, stale_after=stale_after,
                               straggler_factor=straggler_factor)

    done = sum(status.cells_done for status in statuses)
    throughput = sum(status.cells_per_s for status in statuses
                     if status.state in ("running", "straggler", "idle"))
    lines: List[str] = []
    total = manifest.get("total_cells")
    pending = manifest.get("pending")
    header = f"Campaign status — {done} cells done"
    if isinstance(pending, int):
        remaining = max(0, pending - done)
        header += f", {remaining} of {pending} pending remain"
        if isinstance(total, int):
            header += f" ({total} total in grid)"
        cached = manifest.get("cached")
        if isinstance(cached, int) and cached:
            header += f", {cached} from cache"
        if remaining and throughput > 0:
            header += f", ETA {remaining / throughput:,.0f}s"
    if throughput > 0:
        header += f" @ {throughput:.2f} cells/s"
    lines.append(header)
    if manifest.get("results"):
        age = now - float(manifest.get("started", now))
        lines.append(f"results: {manifest['results']} (started {age:,.0f}s ago,"
                     f" {manifest.get('workers', '?')} workers)")
    lines.append("")
    lines.append(format_table(WORKER_HEADERS, _worker_rows(statuses),
                              title="Workers"))

    flagged = [status for status in statuses
               if status.state in ("straggler", "dead?")]
    for status in flagged:
        lines.append("")
        lines.append(
            f"warning: worker {status.pid} is {status.state} — cell "
            f"{status.current_cell} open for {status.open_for_s:.0f}s "
            f"(last beat {status.last_beat_age_s:.0f}s ago)")
    return "\n".join(lines)
