"""Aggregation of campaign result files.

Campaign records store the unified flat keys of
:data:`repro.session.record.SUMMARY_KEYS` (``RunRecord.summary()`` output)
— one schema shared with every other run path — and this module feeds them
into the plain-text reporting machinery of :mod:`repro.analysis.report`:
one per-(scenario, technique) summary table over all cells, plus a
violation table for the scenarios that define safety metrics.  The
``digests`` column counts distinct result digests per group: for a grid
with one seed per group it doubles as a determinism check.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.campaign.runner import load_records
from repro.session.record import SUMMARY_KEYS  # noqa: F401 - the record schema

#: Scenario metric keys that count safety violations (summed per group).
VIOLATION_METRICS = (
    "http_bypassing_firewall",
    "residual_drained_deliveries",
)


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def aggregate(records: List[Dict[str, object]]) -> List[List[object]]:
    """Per-(scenario, technique) rows over every successful record."""
    groups: Dict[Tuple[str, str], List[Dict[str, object]]] = defaultdict(list)
    for record in records:
        if record.get("status") != "ok":
            continue
        groups[(record["scenario"], record["technique"])].append(record)

    rows: List[List[object]] = []
    for (scenario, technique), group in sorted(groups.items()):
        durations = [r["update_duration"] for r in group
                     if r.get("update_duration") is not None]
        update_times = [r["mean_update_time"] for r in group
                        if r.get("mean_update_time") is not None]
        dropped = [r.get("dropped_packets", 0) for r in group]
        digests = {r["digest"] for r in group if r.get("digest")}
        violations = 0
        for record in group:
            metrics = record.get("metrics") or {}
            violations += sum(int(metrics.get(key, 0)) for key in VIOLATION_METRICS)
        rows.append([
            scenario,
            technique,
            len(group),
            _mean(durations) if durations else "-",
            _mean(update_times) if update_times else "-",
            sum(dropped),
            violations,
            len(digests),
        ])
    return rows


def failures(records: List[Dict[str, object]]) -> List[List[object]]:
    """One row per non-ok record."""
    rows = []
    for record in records:
        if record.get("status") == "ok":
            continue
        config = record.get("config") or {}
        rows.append([
            config.get("scenario", "?"),
            config.get("technique", "?"),
            config.get("seed", "?"),
            record.get("status", "?"),
            str(record.get("error", ""))[:60],
        ])
    return rows


def render_report(results_path: Path) -> str:
    """The campaign's aggregated plain-text report."""
    records = load_records(results_path)
    if not records:
        return f"no campaign records in {results_path}"
    sections = [
        format_table(
            ["scenario", "technique", "cells", "mean duration [s]",
             "mean update time [s]", "dropped", "violations", "digests"],
            aggregate(records),
            title=f"Campaign report — {results_path} ({len(records)} records)",
        )
    ]
    failed = failures(records)
    if failed:
        sections.append(format_table(
            ["scenario", "technique", "seed", "status", "error"],
            failed,
            title="Failed cells",
        ))
    return "\n\n".join(sections)
