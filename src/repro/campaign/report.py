"""Aggregation of campaign result files.

Campaign records store the unified flat keys of
:data:`repro.session.record.SUMMARY_KEYS` (``RunRecord.summary()`` output)
— one schema shared with every other run path — and this module feeds them
into the plain-text reporting machinery of :mod:`repro.analysis.report`:
one per-(scenario, technique, fault) summary table over all cells, a
resilience table when any cell armed faults, plus a violation table for the
scenarios that define safety metrics.  The ``digests`` column counts
distinct result digests per group: for a grid with one seed per group it
doubles as a determinism check.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import (
    RESILIENCE_HEADERS,
    VIOLATION_METRICS,
    correctness_under_fault_rows,
    format_table,
)
from repro.campaign.runner import FINAL_STATUSES, load_records
from repro.faults.plan import NO_FAULTS
from repro.recovery.policy import NO_RECOVERY
from repro.session.record import SUMMARY_KEYS  # noqa: F401 - the record schema


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def aggregate(records: List[Dict[str, object]]) -> List[List[object]]:
    """Per-(scenario, technique, fault) rows over every successful record.

    The fault label is part of the group key so a faulted cell never merges
    with its fault-free control — the ``digests`` column stays a valid
    determinism check and the means are not cross-fault averages.
    """
    groups: Dict[Tuple[str, str, str], List[Dict[str, object]]] = defaultdict(list)
    for record in records:
        if record.get("status") != "ok":
            continue
        groups[(record["scenario"], record["technique"],
                _fault_label(record))].append(record)

    rows: List[List[object]] = []
    for (scenario, technique, fault), group in sorted(groups.items()):
        durations = [r["update_duration"] for r in group
                     if r.get("update_duration") is not None]
        update_times = [r["mean_update_time"] for r in group
                        if r.get("mean_update_time") is not None]
        dropped = [r.get("dropped_packets", 0) for r in group]
        digests = {r["digest"] for r in group if r.get("digest")}
        violations = 0
        for record in group:
            metrics = record.get("metrics") or {}
            violations += sum(int(metrics.get(key, 0)) for key in VIOLATION_METRICS)
        rows.append([
            scenario,
            technique,
            fault,
            len(group),
            _mean(durations) if durations else "-",
            _mean(update_times) if update_times else "-",
            sum(dropped),
            violations,
            len(digests),
        ])
    return rows


def _fault_label(record: Dict[str, object]) -> str:
    """The record's group label: fault plan, plus recovery policy when armed.

    A recovery-armed cell never merges with its unrecovered twin — the
    resilience table renders them as adjacent rows (same fault prefix), which
    is the recovered-vs-unrecovered comparison the campaign exists to show —
    and the ``digests`` determinism column never mixes the two populations.
    """
    config = record.get("config") or {}
    fault = str(config.get("fault") or "none")
    label = "none" if fault.lower() in NO_FAULTS else fault
    recovery = str(config.get("recovery") or "off")
    if recovery.lower() not in NO_RECOVERY:
        label += f" +recovery={recovery}"
    return label


def has_fault_axis(records: List[Dict[str, object]]) -> bool:
    """Whether any record ran with an armed fault plan."""
    return any(_fault_label(record) != "none" for record in records)


def resilience(records: List[Dict[str, object]]) -> List[List[object]]:
    """Per-(fault, technique) correctness rows over every finished record.

    Unlike :func:`aggregate`, ``incomplete`` records are *included*: an
    update missing its deadline is precisely the failure mode most fault
    models provoke, so dropping those runs would hide the result.
    """
    groups: Dict[Tuple[str, str], List[Dict[str, object]]] = defaultdict(list)
    for record in records:
        if record.get("status") not in FINAL_STATUSES:
            continue
        groups[(_fault_label(record), record["technique"])].append(record)
    return correctness_under_fault_rows(groups)


def render_resilience_report(results_path: Path) -> str:
    """The technique × fault correctness table of a campaign's results."""
    records = load_records(results_path)
    rows = resilience(records)
    if not rows:
        return f"no finished campaign records in {results_path}"
    return format_table(
        RESILIENCE_HEADERS, rows,
        title=f"Resilience report — correctness under fault ({results_path})",
    )


def has_trace_axis(records: List[Dict[str, object]]) -> bool:
    """Whether any record carries a traced activation-gap summary."""
    return any(record.get("activation_gaps") for record in records)


def activation_gaps(records: List[Dict[str, object]]) -> List[List[object]]:
    """Per-(technique, fault) activation-gap rows over every traced record.

    Aggregates each record's per-switch gap summary (see
    :func:`repro.analysis.timeline.activation_gap_summary`) across cells and
    switches: total rules, unsafe early acknowledgments, rules never
    activated, and the worst/mean finite gap in milliseconds.  This is the
    resilience table's time axis — not just *whether* a technique stayed
    correct under a fault, but by how much its acks led or trailed the
    hardware.
    """
    groups: Dict[Tuple[str, str], List[Dict[str, object]]] = defaultdict(list)
    for record in records:
        if record.get("status") not in FINAL_STATUSES:
            continue
        gaps = record.get("activation_gaps")
        if not gaps:
            continue
        groups[(record["technique"], _fault_label(record))].append(gaps)

    rows: List[List[object]] = []
    for (technique, fault), summaries in sorted(groups.items()):
        rules = early = never = 0
        means: List[float] = []
        worst: Optional[float] = None
        for summary in summaries:
            for stats in summary.values():
                rules += int(stats.get("rules", 0))
                early += int(stats.get("early", 0))
                never += int(stats.get("never", 0))
                if "mean" in stats:
                    means.append(float(stats["mean"]))
                if "min" in stats:
                    value = float(stats["min"])
                    worst = value if worst is None else min(worst, value)
        rows.append([
            technique,
            fault,
            rules,
            early,
            never,
            f"{_mean(means) * 1000.0:+.2f}" if means else "-",
            f"{worst * 1000.0:+.2f}" if worst is not None else "-",
        ])
    return rows


#: Headers of the activation-gap (trace) table.
ACTIVATION_GAP_HEADERS = [
    "technique", "fault", "rules", "early acks", "never active",
    "mean gap [ms]", "worst gap [ms]",
]


def has_health_telemetry(records: List[Dict[str, object]]) -> bool:
    """Whether any record carries per-cell runtime telemetry (``wall_s``)."""
    return any(record.get("wall_s") is not None for record in records)


#: Headers of the run-health table.
RUN_HEALTH_HEADERS = [
    "worker pid", "cells", "ok", "incomplete", "error",
    "wall [s]", "mean wall [s]", "peak rss [MB]",
]


def run_health(records: List[Dict[str, object]]) -> List[List[object]]:
    """Per-worker runtime rows over every record carrying telemetry.

    Groups by the pid each record ran under, so an unbalanced fleet (one
    worker eating all the slow cells, one worker ballooning in RSS) shows
    up directly in the report — the after-the-fact complement of the live
    ``--status`` monitor.
    """
    groups: Dict[int, List[Dict[str, object]]] = defaultdict(list)
    for record in records:
        if record.get("wall_s") is None:
            continue
        groups[int(record.get("worker_pid", 0))].append(record)

    rows: List[List[object]] = []
    for pid, group in sorted(groups.items()):
        walls = [float(r["wall_s"]) for r in group]
        statuses = [str(r.get("status")) for r in group]
        rss = max(int(r.get("peak_rss_kb", 0)) for r in group)
        rows.append([
            pid or "?",
            len(group),
            statuses.count("ok"),
            statuses.count("incomplete"),
            len(group) - statuses.count("ok") - statuses.count("incomplete"),
            f"{sum(walls):.1f}",
            f"{sum(walls) / len(walls):.2f}",
            f"{rss / 1024.0:.0f}" if rss else "-",
        ])
    return rows


def slowest_cells(records: List[Dict[str, object]],
                  top: int = 5) -> List[List[object]]:
    """The ``top`` slowest cells by recorded wall seconds, descending."""
    timed = [record for record in records if record.get("wall_s") is not None]
    timed.sort(key=lambda r: (-float(r["wall_s"]), str(r.get("cell_id"))))
    rows: List[List[object]] = []
    for record in timed[:max(0, top)]:
        config = record.get("config") or {}
        rows.append([
            config.get("scenario", "?"),
            config.get("technique", "?"),
            config.get("seed", "?"),
            record.get("status", "?"),
            f"{float(record['wall_s']):.2f}",
        ])
    return rows


def failures(records: List[Dict[str, object]]) -> List[List[object]]:
    """One row per non-ok record."""
    rows = []
    for record in records:
        if record.get("status") == "ok":
            continue
        config = record.get("config") or {}
        rows.append([
            config.get("scenario", "?"),
            config.get("technique", "?"),
            config.get("seed", "?"),
            record.get("status", "?"),
            str(record.get("error", ""))[:60],
        ])
    return rows


#: Headers of the ``--baseline`` differential resilience table.
DIFFERENTIAL_HEADERS = [
    "scenario", "technique", "fault", "seed", "outcome", "digest",
    "what changed",
]


def baseline_records(baseline: Path) -> Dict[str, Dict[str, object]]:
    """``cell_id -> record`` from a results file *or* a run-store directory.

    A directory with an ``objects/`` layout is read as a
    :class:`~repro.store.RunStore` (its stored campaign summaries carry
    their cell ids); anything else is treated as a JSONL results file.
    """
    baseline = Path(baseline)
    if baseline.is_dir() and (baseline / "objects").is_dir():
        from repro.store import RunStore

        out: Dict[str, Dict[str, object]] = {}
        for obj in RunStore(baseline).iter_objects():
            summary = obj.get("summary")
            if summary and summary.get("cell_id"):
                out[str(summary["cell_id"])] = summary
        return out
    return {
        str(record["cell_id"]): record
        for record in load_records(baseline)
        if record.get("status") in FINAL_STATUSES and "cell_id" in record
    }


def differential(
    records: List[Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
) -> Tuple[List[List[object]], Dict[str, int]]:
    """Changed-cell rows plus the unchanged/new/missing accounting.

    A cell is *changed* when its outcome status or digest differs from the
    baseline record of the same ``cell_id``; the last column carries the
    diff tool's one-line explanation of what moved.
    """
    from repro.analysis.diff import diff_runs

    counts = {"unchanged": 0, "changed": 0, "new": 0, "missing": 0}
    rows: List[List[object]] = []
    seen: set = set()
    current = [record for record in records
               if record.get("status") in FINAL_STATUSES
               and record.get("cell_id")]
    current.sort(key=lambda r: (str(r.get("scenario")), str(r.get("technique")),
                                _fault_label(r), str(r.get("seed"))))
    for record in current:
        cell_id = str(record["cell_id"])
        seen.add(cell_id)
        base = baseline.get(cell_id)
        prefix = [record.get("scenario", "?"), record.get("technique", "?"),
                  _fault_label(record), record.get("seed", "?")]
        if base is None:
            counts["new"] += 1
            rows.append(prefix + [str(record.get("status")), "-",
                                  "new cell (not in baseline)"])
            continue
        same_status = base.get("status") == record.get("status")
        same_digest = base.get("digest") == record.get("digest")
        if same_status and same_digest:
            counts["unchanged"] += 1
            continue
        counts["changed"] += 1
        outcome = (str(record.get("status")) if same_status
                   else f"{base.get('status')} -> {record.get('status')}")
        digest = ("=" if same_digest
                  else f"{base.get('digest')} -> {record.get('digest')}")
        explanation = diff_runs(base, record, left_label="baseline",
                                right_label="current").explain()
        rows.append(prefix + [outcome, digest, explanation])
    counts["missing"] = sum(1 for cell_id in baseline if cell_id not in seen)
    return rows, counts


def render_differential_report(results_path: Path, baseline_path: Path) -> str:
    """The differential resilience table against a baseline store/results."""
    records = load_records(results_path)
    if not records:
        return f"no campaign records in {results_path}"
    baseline = baseline_records(Path(baseline_path))
    if not baseline:
        return f"no baseline records in {baseline_path}"
    rows, counts = differential(records, baseline)
    summary = (f"{counts['unchanged']} unchanged, {counts['changed']} "
               f"changed, {counts['new']} new, {counts['missing']} only in "
               f"baseline")
    title = (f"Differential resilience — {results_path} vs "
             f"{baseline_path} ({summary})")
    if not rows:
        return f"{title}\n(every matched cell has an identical outcome)"
    return format_table(DIFFERENTIAL_HEADERS, rows, title=title)


def render_report(results_path: Path, cached: int = 0) -> str:
    """The campaign's aggregated plain-text report.

    ``cached`` is the just-finished run's store-cache hit count (only the
    ``run`` subcommand knows it); the standalone ``report`` subcommand
    renders with the default ``0`` so re-aggregating a results file stays
    byte-identical no matter how its cells were produced.
    """
    records = load_records(results_path)
    if not records:
        return f"no campaign records in {results_path}"
    sections = [
        format_table(
            ["scenario", "technique", "fault", "cells", "mean duration [s]",
             "mean update time [s]", "dropped", "violations", "digests"],
            aggregate(records),
            title=f"Campaign report — {results_path} ({len(records)} records)",
        )
    ]
    if has_fault_axis(records):
        sections.append(format_table(
            RESILIENCE_HEADERS,
            resilience(records),
            title="Resilience — correctness under fault (incomplete runs included)",
        ))
    if has_trace_axis(records):
        sections.append(format_table(
            ACTIVATION_GAP_HEADERS,
            activation_gaps(records),
            title="Activation gaps — ack vs hardware activation "
                  "(traced cells; negative = unsafe early ack)",
        ))
    if has_health_telemetry(records):
        health_title = ("Run health — per-worker runtime "
                        "(RSS ratchets per worker)")
        if cached:
            health_title += (f"; {cached} cells emitted from the store "
                             "cache (telemetry from their original runs)")
        sections.append(format_table(
            RUN_HEALTH_HEADERS,
            run_health(records),
            title=health_title,
        ))
        sections.append(format_table(
            ["scenario", "technique", "seed", "status", "wall [s]"],
            slowest_cells(records),
            title="Slowest cells",
        ))
    failed = failures(records)
    if failed:
        sections.append(format_table(
            ["scenario", "technique", "seed", "status", "error"],
            failed,
            title="Non-ok cells (incomplete = update missed its deadline)",
        ))
    return "\n\n".join(sections)
