"""Benchmark execution: wall-clock timing, event counting and peak RSS.

Every benchmark is a plain function ``fn(scale)`` (``scale`` is ``"quick"``
or ``"full"``) that runs a seeded, deterministic workload and returns a
dictionary with an optional ``events`` count (kernel callbacks, lookups,
packets — whatever the benchmark's unit of work is) plus any JSON-able
metadata.  The harness adds timing and memory measurements around it.

Peak RSS is read from ``resource.getrusage`` (no third-party dependency);
``ru_maxrss`` is a process-lifetime high-water mark, so per-benchmark values
are the peak *observed so far*, not the peak attributable to one benchmark.
"""

from __future__ import annotations

import gc
import resource
import sys
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence


class PhaseProfiler:
    """Accumulates per-phase wall time inside one benchmark run.

    The harness installs one around each benchmark; benchmark bodies mark
    their phases with :func:`profiled_phase`.  Re-entering the same phase
    name accumulates (loops profile naturally).
    """

    __slots__ = ("phases",)

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {}

    def record(self, name: str, elapsed: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + elapsed


#: The active profiler, installed by :func:`run_spec` for the duration of one
#: benchmark.  ``None`` outside the harness, which makes ``profiled_phase``
#: a plain no-op there — benchmark functions stay callable standalone.
_PROFILER: Optional[PhaseProfiler] = None


@contextmanager
def profiled_phase(name: str) -> Iterator[None]:
    """Attribute the enclosed block's wall time to phase ``name``.

    No-op (beyond one global read) when no profiler is installed, so
    benchmark bodies can mark phases unconditionally.
    """
    profiler = _PROFILER
    if profiler is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        profiler.record(name, time.perf_counter() - start)


@dataclass
class BenchSpec:
    """One registered benchmark."""

    name: str
    fn: Callable[[str], Dict[str, object]]
    description: str = ""
    #: Reference benchmarks calibrate machine speed and are excluded from
    #: aggregate speedup / regression accounting.
    is_reference: bool = False


@dataclass
class BenchResult:
    """Measurements of one benchmark run."""

    name: str
    wall_s: float
    events: Optional[int] = None
    events_per_sec: Optional[float] = None
    peak_rss_kb: int = 0
    #: Wall time divided by the reference benchmark's wall time on the same
    #: machine — the unit used for cross-machine regression comparisons.
    normalized: Optional[float] = None
    #: Per-phase wall-time split (seconds) from :func:`profiled_phase`
    #: markers inside the benchmark body; empty for unmarked benchmarks.
    phases: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form."""
        return asdict(self)


def _peak_rss_kb() -> int:
    """Process peak RSS in kilobytes (Linux ``ru_maxrss`` unit)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        rss //= 1024
    return int(rss)


def run_spec(spec: BenchSpec, scale: str = "quick") -> BenchResult:
    """Run one benchmark and measure it."""
    global _PROFILER
    gc.collect()
    profiler = PhaseProfiler()
    _PROFILER = profiler
    start = time.perf_counter()
    try:
        outcome = spec.fn(scale) or {}
    finally:
        _PROFILER = None
    wall = time.perf_counter() - start
    events = outcome.pop("events", None)
    events_per_sec = None
    if events is not None and wall > 0:
        events_per_sec = events / wall
    return BenchResult(
        name=spec.name,
        wall_s=wall,
        events=events,
        events_per_sec=events_per_sec,
        peak_rss_kb=_peak_rss_kb(),
        phases={name: round(value, 6)
                for name, value in profiler.phases.items()},
        meta=dict(outcome),
    )


def run_suite(
    specs: Sequence[BenchSpec],
    scale: str = "quick",
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run the suite in order; reference benchmarks first for normalization."""
    say = progress or (lambda _message: None)
    selected = [spec for spec in specs if only is None or spec.name in only]
    # Run references first so every subsequent result can be normalized.
    selected.sort(key=lambda spec: not spec.is_reference)
    reference_wall: Optional[float] = None
    results: List[BenchResult] = []
    for spec in selected:
        say(f"running {spec.name} ({scale}) ...")
        result = run_spec(spec, scale)
        if spec.is_reference and reference_wall is None:
            reference_wall = result.wall_s
        if reference_wall and reference_wall > 0:
            result.normalized = result.wall_s / reference_wall
        results.append(result)
        say(
            f"  {result.wall_s * 1000:8.1f} ms"
            + (f"  {result.events_per_sec:12.0f} events/s"
               if result.events_per_sec else "")
            + f"  rss={result.peak_rss_kb} kB"
        )
    return results
