"""Baseline comparison and regression detection.

Reports are compared on *normalized* wall time (benchmark wall divided by
the reference calibration loop's wall on the same machine) when both sides
have it, so a baseline committed from one machine remains meaningful on CI
runners with different absolute speed.  Raw wall time is the fallback.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import BenchResult

#: Default regression threshold: fail when a benchmark is more than 25%
#: slower than the committed baseline (normalized units).
DEFAULT_THRESHOLD = 0.25


@dataclass
class BenchDelta:
    """One benchmark's current-vs-baseline comparison."""

    name: str
    baseline: float
    current: float
    #: ``baseline / current`` in normalized units — > 1 means faster now.
    speedup: float
    regressed: bool
    digest_changed: bool = False


@dataclass
class BenchComparison:
    """Outcome of comparing a run against a baseline."""

    deltas: List[BenchDelta] = field(default_factory=list)
    #: Benchmarks present on only one side (ignored for pass/fail).
    unmatched: List[str] = field(default_factory=list)

    @property
    def aggregate_speedup(self) -> Optional[float]:
        """Geometric-mean speedup across matched benchmarks."""
        ratios = [delta.speedup for delta in self.deltas if delta.speedup > 0]
        if not ratios:
            return None
        return math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))

    @property
    def regressions(self) -> List[BenchDelta]:
        """Benchmarks beyond the regression threshold."""
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def digest_changes(self) -> List[BenchDelta]:
        """Benchmarks whose deterministic result digest changed."""
        return [delta for delta in self.deltas if delta.digest_changed]

    @property
    def ok(self) -> bool:
        """Whether the run passes the regression gate."""
        return not self.regressions

    def render(self) -> str:
        """Human-readable comparison table."""
        lines = [
            f"{'benchmark':<24} {'baseline':>10} {'current':>10} {'speedup':>8}"
        ]
        for delta in self.deltas:
            flags = " REGRESSION" if delta.regressed else ""
            if delta.digest_changed:
                flags += " DIGEST-CHANGED"
            lines.append(
                f"{delta.name:<24} {delta.baseline:>10.4f} "
                f"{delta.current:>10.4f} {delta.speedup:>7.2f}x{flags}"
            )
        aggregate = self.aggregate_speedup
        if aggregate is not None:
            lines.append(f"{'aggregate (geomean)':<24} {'':>10} {'':>10} "
                         f"{aggregate:>7.2f}x")
        if self.unmatched:
            lines.append(f"(no baseline entry: {', '.join(self.unmatched)})")
        return "\n".join(lines)


def _cost(entry: Dict[str, object], use_normalized: bool) -> Optional[float]:
    value = entry.get("normalized") if use_normalized else entry.get("wall_s")
    return float(value) if value is not None else None


def compare_results(
    current: Sequence[BenchResult],
    baseline_entries: Sequence[Dict[str, object]],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Compare a fresh run against a baseline report's result entries."""
    baseline_by_name = {str(entry.get("name")): entry for entry in baseline_entries}
    comparison = BenchComparison()
    for result in current:
        entry = baseline_by_name.pop(result.name, None)
        if entry is None:
            comparison.unmatched.append(result.name)
            continue
        current_dict = result.as_dict()
        use_normalized = (entry.get("normalized") is not None
                          and result.normalized is not None)
        baseline_cost = _cost(entry, use_normalized)
        current_cost = _cost(current_dict, use_normalized)
        if baseline_cost is None or current_cost is None or current_cost <= 0:
            comparison.unmatched.append(result.name)
            continue
        baseline_digest = (entry.get("meta") or {}).get("digest")
        current_digest = result.meta.get("digest")
        comparison.deltas.append(
            BenchDelta(
                name=result.name,
                baseline=baseline_cost,
                current=current_cost,
                speedup=baseline_cost / current_cost,
                regressed=current_cost > baseline_cost * (1.0 + threshold),
                digest_changed=(baseline_digest is not None
                                and current_digest is not None
                                and baseline_digest != current_digest),
            )
        )
    comparison.unmatched.extend(sorted(baseline_by_name))
    return comparison


def load_baseline(path: Path, scale: str) -> Optional[List[Dict[str, object]]]:
    """The baseline result entries for ``scale``, or ``None`` if absent.

    The baseline file stores one report per scale:
    ``{"quick": {"results": [...]}, "full": {"results": [...]}}``.
    """
    path = Path(path)
    if not path.exists():
        return None
    payload = json.loads(path.read_text(encoding="utf-8"))
    section = payload.get(scale)
    if not section:
        return None
    return list(section.get("results", []))
