"""The benchmark suite: seeded workloads covering every hot layer.

Benchmarks are deterministic (fixed seeds) so that, besides timing, their
result digests double as an end-to-end determinism check: an optimization
that changes *what* a simulation computes — not just how fast — shows up as
a digest mismatch against the committed baseline.

Scales:

* ``quick`` — seconds-level total, used by the CI smoke job,
* ``full``  — the scale reported in ``BENCH_<rev>.json`` for PR-to-PR
  comparisons (``python -m repro.bench`` without ``--quick``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.bench.harness import BenchSpec, profiled_phase

#: (quick, full) workload sizes, per benchmark.
_KERNEL_PROCESSES = {"quick": 50, "full": 100}
_KERNEL_STEPS_EACH = {"quick": 2000, "full": 8000}
_LOOKUP_RULES = {"quick": 120, "full": 240}
_LOOKUP_PACKETS = {"quick": 20000, "full": 80000}
_PACKET_OUT_COUNT = {"quick": 1500, "full": 6000}
_FIG7_FLOWS = {"quick": 12, "full": 60}
_SCENARIO_FLOWS = {"quick": 4, "full": 8}


def _digest(payload: str) -> str:
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


# -- reference -----------------------------------------------------------------
def bench_reference(scale: str) -> Dict[str, object]:
    """Pure-Python calibration loop used to normalize machine speed."""
    iterations = 2_000_000 if scale == "quick" else 4_000_000
    total = 0
    for index in range(iterations):
        total += index & 1023
    return {"events": iterations, "checksum": total}


# -- kernel -------------------------------------------------------------------
def bench_kernel_steps(scale: str) -> Dict[str, object]:
    """Steady-state stepping cost: many processes sleeping in a loop."""
    from repro.sim.kernel import Simulator

    processes = _KERNEL_PROCESSES[scale]
    steps_each = _KERNEL_STEPS_EACH[scale]
    sim = Simulator()
    done = [0]

    def sleeper(interval: float):
        for _ in range(steps_each):
            yield interval
        done[0] += 1

    with profiled_phase("setup"):
        for index in range(processes):
            sim.process(sleeper(0.001 + index * 1e-6), name=f"sleeper-{index}")
    with profiled_phase("run"):
        sim.run()
    assert done[0] == processes
    return {
        "events": processes * steps_each,
        "final_time": round(sim.now, 9),
        "kernel": sim.stats(),
    }


def bench_kernel_callbacks(scale: str) -> Dict[str, object]:
    """Raw callback scheduling/dispatch throughput (no processes)."""
    from repro.sim.kernel import Simulator

    count = 200_000 if scale == "quick" else 600_000
    sim = Simulator()
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    batch = getattr(sim, "schedule_many", None)
    with profiled_phase("schedule"):
        if batch is not None:
            batch((index * 1e-6, tick) for index in range(count))
        else:  # pre-optimization kernels lack the bulk API
            for index in range(count):
                sim.schedule_callback(index * 1e-6, tick)
    with profiled_phase("dispatch"):
        sim.run()
    assert fired[0] == count
    return {"events": count, "kernel": sim.stats()}


# -- data plane ----------------------------------------------------------------
def _build_lookup_table(rules: int):
    from repro.openflow.actions import OutputAction
    from repro.openflow.constants import FlowModCommand
    from repro.openflow.flowtable import FlowTable
    from repro.openflow.match import Match
    from repro.openflow.messages import FlowMod
    from repro.packet.addresses import int_to_ip, ip_to_int

    table = FlowTable(mode="priority")
    src_base = ip_to_int("10.1.0.0")
    dst_base = ip_to_int("10.2.0.0")
    for index in range(rules):
        if index % 5 == 4:
            # Prefix rule: a /24 around this source block.
            match = Match(ip_src=(int_to_ip((src_base + index) & ~0xFF), 24))
        else:
            match = Match(
                ip_src=int_to_ip(src_base + index),
                ip_dst=int_to_ip(dst_base + index),
            )
        table.apply_flowmod(
            FlowMod(match, [OutputAction(1 + index % 4)], priority=100,
                    command=FlowModCommand.ADD),
            now=0.0,
        )
    table.apply_flowmod(
        FlowMod(Match(), [OutputAction(9)], priority=1,
                command=FlowModCommand.ADD),
        now=0.0,
    )
    return table, src_base, dst_base


def bench_flowtable_lookup(scale: str) -> Dict[str, object]:
    """Per-packet classification over a mixed exact/prefix/wildcard table."""
    from repro.packet.addresses import int_to_ip
    from repro.packet.packet import make_ip_packet

    rules = _LOOKUP_RULES[scale]
    lookups = _LOOKUP_PACKETS[scale]
    with profiled_phase("setup"):
        table, src_base, dst_base = _build_lookup_table(rules)
        packets = [
            make_ip_packet(
                int_to_ip(src_base + index % (rules + 8)),
                int_to_ip(dst_base + index % (rules + 8)),
            )
            for index in range(64)
        ]
    hits = 0
    with profiled_phase("lookup"):
        for index in range(lookups):
            entry = table.lookup(packets[index % 64])
            if entry is not None:
                hits += 1
    return {"events": lookups, "hits": hits, "rules": len(table)}


# -- experiments ----------------------------------------------------------------
def bench_microbench_packet_out(scale: str) -> Dict[str, object]:
    """Section 5.2 PacketOut micro-benchmark on the hardware switch model."""
    from repro.experiments.microbench import MicrobenchParams, measure_packet_out_rate

    params = MicrobenchParams(packet_out_count=_PACKET_OUT_COUNT[scale])
    rate = measure_packet_out_rate(params)
    return {
        "events": params.packet_out_count,
        "packet_out_rate": round(rate, 3),
    }


def bench_fig7_probing(scale: str) -> Dict[str, object]:
    """End-to-end Figure 7 run (three probing techniques, full stack)."""
    from repro.experiments.common import EndToEndParams
    from repro.experiments.fig7_probing import run_fig7

    params = EndToEndParams(flow_count=_FIG7_FLOWS[scale])
    result = run_fig7(params)
    payload = repr(sorted(
        (name, res.dropped_packets, res.update_pairs())
        for name, res in result.results.items()
    ))
    total_packets = sum(
        stat.packets_sent for res in result.results.values() for stat in res.stats
    )
    return {
        "events": total_packets or None,
        "digest": _digest(payload),
        "dropped": {name: res.dropped_packets
                    for name, res in sorted(result.results.items())},
        # Unified RunRecord content hashes, per configuration: the CI bench
        # job asserts these are present (sessions end to end) and unchanged
        # runs reproduce them exactly.
        "run_digests": {name: res.digest()
                        for name, res in sorted(result.results.items())},
    }


def bench_scenario_migration(scale: str) -> Dict[str, object]:
    """One campaign-style scenario cell (path migration on leaf-spine)."""
    from repro.scenarios.base import ScenarioParams
    from repro.scenarios.engine import run_scenario

    params = ScenarioParams(
        flow_count=_SCENARIO_FLOWS[scale], seed=3, max_update_duration=10.0
    )
    result = run_scenario("path-migration", "general", params)
    payload = repr((
        result.dropped_packets,
        result.completed,
        [(stat.flow_id, stat.last_old_path, stat.first_new_path,
          stat.broken_time, stat.packets_sent, stat.packets_received)
         for stat in result.stats],
    ))
    packets = sum(stat.packets_sent for stat in result.stats)
    return {
        "events": packets or None,
        "digest": _digest(payload),
        "dropped": result.dropped_packets,
        "completed": result.completed,
        "run_digest": result.digest(),
    }


BENCHMARKS: List[BenchSpec] = [
    BenchSpec("reference", bench_reference,
              "pure-Python calibration loop (normalizes machine speed)",
              is_reference=True),
    BenchSpec("kernel-steps", bench_kernel_steps,
              "process stepping: many sleeping processes"),
    BenchSpec("kernel-callbacks", bench_kernel_callbacks,
              "raw callback schedule + dispatch throughput"),
    BenchSpec("flowtable-lookup", bench_flowtable_lookup,
              "flow-table classification, mixed exact/prefix/wildcard rules"),
    BenchSpec("microbench-packet-out", bench_microbench_packet_out,
              "Section 5.2 PacketOut rate micro-benchmark"),
    BenchSpec("fig7-probing", bench_fig7_probing,
              "end-to-end Figure 7 (three probing techniques)"),
    BenchSpec("scenario-migration", bench_scenario_migration,
              "campaign scenario cell: path migration, general probing"),
]


def benchmark_names() -> List[str]:
    """Registered benchmark names, suite order."""
    return [spec.name for spec in BENCHMARKS]
