"""Persistent benchmark harness for the simulation core.

``python -m repro.bench`` runs the suite in :mod:`repro.bench.suite`,
writes a ``BENCH_<rev>.json`` report (per-benchmark wall time, events/sec
and peak RSS) and compares the run against the committed baseline in
``benchmarks/BASELINE.json``, failing on regressions beyond a configurable
threshold.  See the README section "Benchmarking & performance".
"""

from repro.bench.compare import BenchComparison, compare_results, load_baseline
from repro.bench.harness import BenchResult, run_suite
from repro.bench.suite import BENCHMARKS, benchmark_names

__all__ = [
    "BENCHMARKS",
    "BenchComparison",
    "BenchResult",
    "benchmark_names",
    "compare_results",
    "load_baseline",
    "run_suite",
]
