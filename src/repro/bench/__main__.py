"""``python -m repro.bench`` — run the benchmark suite and gate regressions.

Examples::

    python -m repro.bench                 # full suite, compare vs baseline
    python -m repro.bench --quick         # CI smoke scale
    python -m repro.bench --update-baseline
    python -m repro.bench --only kernel-steps --only flowtable-lookup
    python -m repro.bench --history       # perf trajectory over committed
                                          # BENCH_*.json snapshots (no run)
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    compare_results,
    load_baseline,
)
from repro.bench.harness import run_suite
from repro.bench.history import (
    DEFAULT_GATE_DROP,
    gate_history,
    load_history,
    render_history,
)
from repro.bench.suite import BENCHMARKS, benchmark_names

#: The committed baseline every run is compared against.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "benchmarks" / "BASELINE.json"


def _revision() -> str:
    """Short git revision of the working tree, or ``local``."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return output or "local"
    except Exception:  # noqa: BLE001 - git is optional at bench time
        return "local"


def _report(results, scale: str) -> dict:
    return {
        "scale": scale,
        "revision": _revision(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": [result.as_dict() for result in results],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the repro benchmark suite and compare against the "
                    "committed baseline.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced CI-smoke scale instead of the full suite")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="run only the named benchmark (repeatable); "
                             f"known: {', '.join(benchmark_names())}")
    parser.add_argument("--out", type=Path, default=None,
                        help="report path (default: ./BENCH_<rev>.json)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file to compare against "
                             "(default: benchmarks/BASELINE.json)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="regression threshold as a fraction "
                             "(default: 0.25 = fail when >25%% slower)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run into the baseline file instead "
                             "of failing on regressions")
    parser.add_argument("--list", action="store_true",
                        help="list benchmarks and exit")
    parser.add_argument("--history", action="store_true",
                        help="skip running the suite; render the perf "
                             "trajectory over every committed BENCH_*.json "
                             "snapshot (geomean trend, per-workload "
                             "attribution) and gate unexplained drops")
    parser.add_argument("--history-dir", type=Path, default=None,
                        help="snapshot directory for --history "
                             "(default: the baseline file's directory)")
    parser.add_argument("--gate-drop", type=float, default=DEFAULT_GATE_DROP,
                        help="--history gate: fail on a geomean drop beyond "
                             "this fraction between consecutive same-scale "
                             "snapshots with no 'notes' explanation "
                             "(default: 0.15)")
    args = parser.parse_args(argv)

    if args.history:
        directory = args.history_dir or args.baseline.parent
        history = load_history(directory)
        print(render_history(history, max_drop=args.gate_drop))
        return 1 if gate_history(history, max_drop=args.gate_drop) else 0

    if args.list:
        for spec in BENCHMARKS:
            kind = " (reference)" if spec.is_reference else ""
            print(f"{spec.name:<24} {spec.description}{kind}")
        return 0

    unknown = set(args.only or []) - set(benchmark_names())
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(sorted(unknown))}")

    scale = "quick" if args.quick else "full"
    results = run_suite(BENCHMARKS, scale=scale, only=args.only, progress=print)
    report = _report(results, scale)

    out_path = args.out or Path.cwd() / f"BENCH_{report['revision']}.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote snapshot {out_path.resolve()}")

    if args.update_baseline:
        baseline_payload = {}
        if args.baseline.exists():
            baseline_payload = json.loads(args.baseline.read_text(encoding="utf-8"))
        baseline_payload[scale] = report
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(baseline_payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"updated baseline {args.baseline} [{scale}]")
        return 0

    baseline_entries = load_baseline(args.baseline, scale)
    if baseline_entries is None:
        print(f"no baseline for scale {scale!r} at {args.baseline}; "
              "skipping comparison (use --update-baseline to create one)")
        return 0
    # --only runs are partial: compare what ran, never fail on the rest.
    comparison = compare_results(results, baseline_entries,
                                 threshold=args.threshold)
    print()
    print(comparison.render())
    for delta in comparison.digest_changes:
        print(f"WARNING: {delta.name}: deterministic result digest changed "
              "vs baseline (same seeds should give same results)")
    if not comparison.ok:
        names = ", ".join(delta.name for delta in comparison.regressions)
        print(f"FAIL: regression beyond {args.threshold:.0%} in: {names}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
