"""Perf-trajectory analytics over committed benchmark snapshots.

``python -m repro.bench --history`` reads every ``benchmarks/BENCH_*.json``
snapshot plus ``BASELINE.json`` and renders the *trajectory*: the
normalized-geomean speedup of each committed revision against the baseline,
with per-workload attribution of every move (which benchmark moved, by how
much, at which rev).  A single-run comparison answers "did I regress
against the baseline"; the history answers "when did ``kernel-steps`` get
2x faster, and what did the rev that slowed ``flowtable-lookup`` buy us".

All arithmetic uses the same normalized-cost convention as
:mod:`repro.bench.compare` (workload wall divided by the reference
calibration loop's wall on the same machine), so snapshots committed from
different machines stay comparable.  Snapshots are chained *per scale*
(quick snapshots never compare against full ones) and sorted by their
recorded timestamp.

The CI gate (:func:`gate_history`) fails on an *unexplained* geomean drop:
a snapshot slower than its same-scale predecessor beyond the threshold and
carrying no top-level ``"notes"`` key explaining why the slowdown was
accepted.  Annotating the snapshot is the escape hatch — silent
regressions are the bug class this gate exists for.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: A workload whose speedup-vs-baseline ratio changes by more than this
#: fraction between consecutive snapshots is named as a mover.
MOVER_THRESHOLD = 0.05

#: Default CI gate: fail when a snapshot's geomean is more than this
#: fraction slower than its same-scale predecessor with no explanation.
DEFAULT_GATE_DROP = 0.15


def _geomean(values: Sequence[float]) -> Optional[float]:
    ratios = [value for value in values if value > 0]
    if not ratios:
        return None
    return math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))


def _cost(entry: Dict[str, object]) -> Optional[float]:
    """Normalized cost of one result entry, raw wall as the fallback."""
    for key in ("normalized", "wall_s"):
        value = entry.get(key)
        if value is not None and float(value) > 0:
            return float(value)
    return None


def _speedups(entries: Sequence[Dict[str, object]],
              baseline_entries: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Per-workload ``baseline / current`` ratios (> 1 means faster)."""
    baseline_by_name = {str(entry.get("name")): entry
                        for entry in baseline_entries}
    speedups: Dict[str, float] = {}
    for entry in entries:
        reference = baseline_by_name.get(str(entry.get("name")))
        if reference is None:
            continue
        current_cost = _cost(entry)
        baseline_cost = _cost(reference)
        if current_cost is None or baseline_cost is None:
            continue
        speedups[str(entry.get("name"))] = baseline_cost / current_cost
    return speedups


@dataclass
class Snapshot:
    """One committed ``BENCH_<rev>.json`` with its baseline-relative view."""

    path: Path
    revision: str
    timestamp: str
    scale: str
    #: Per-workload speedup vs the same-scale baseline.
    speedups: Dict[str, float] = field(default_factory=dict)
    #: Optional human explanation committed with the snapshot; its presence
    #: waives the gate for this snapshot's drop.
    notes: Optional[str] = None

    @property
    def geomean(self) -> Optional[float]:
        return _geomean(list(self.speedups.values()))


@dataclass
class Mover:
    """One workload's move between two consecutive snapshots."""

    name: str
    previous: float
    current: float

    @property
    def change(self) -> float:
        """Fractional ratio change; negative means the workload slowed."""
        return self.current / self.previous - 1.0

    def describe(self) -> str:
        return (f"{self.name} {self.previous:.2f}x -> {self.current:.2f}x "
                f"({self.change:+.0%})")


def movers(previous: Snapshot, current: Snapshot,
           threshold: float = MOVER_THRESHOLD) -> List[Mover]:
    """Workloads whose baseline-relative ratio moved between two snapshots,
    largest absolute move first."""
    moved: List[Mover] = []
    for name in sorted(set(previous.speedups) & set(current.speedups)):
        mover = Mover(name, previous.speedups[name], current.speedups[name])
        if abs(mover.change) > threshold:
            moved.append(mover)
    moved.sort(key=lambda mover: (-abs(mover.change), mover.name))
    return moved


@dataclass
class BenchHistory:
    """Everything under one ``benchmarks/`` directory, ready to analyse."""

    directory: Path
    #: Baseline result entries, per scale.
    baseline: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    baseline_revision: str = "?"
    #: Snapshots in timestamp order (all scales interleaved).
    snapshots: List[Snapshot] = field(default_factory=list)

    def chain(self, scale: str) -> List[Snapshot]:
        """The timestamp-ordered snapshots of one scale."""
        return [snap for snap in self.snapshots if snap.scale == scale]

    def predecessor(self, snapshot: Snapshot) -> Optional[Snapshot]:
        """The previous same-scale snapshot, or ``None`` for the first."""
        chain = self.chain(snapshot.scale)
        index = chain.index(snapshot)
        return chain[index - 1] if index > 0 else None


def load_history(directory: Path) -> BenchHistory:
    """Parse ``BASELINE.json`` and every ``BENCH_*.json`` under ``directory``."""
    directory = Path(directory)
    history = BenchHistory(directory=directory)

    baseline_path = directory / "BASELINE.json"
    if baseline_path.exists():
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
        for scale, report in payload.items():
            history.baseline[scale] = list(report.get("results", []))
            history.baseline_revision = str(report.get("revision", "?"))

    for path in sorted(directory.glob("BENCH_*.json")):
        report = json.loads(path.read_text(encoding="utf-8"))
        scale = str(report.get("scale", "full"))
        snapshot = Snapshot(
            path=path,
            revision=str(report.get("revision", path.stem[6:])),
            timestamp=str(report.get("timestamp", "")),
            scale=scale,
            speedups=_speedups(report.get("results", []),
                               history.baseline.get(scale, [])),
            notes=report.get("notes"),
        )
        history.snapshots.append(snapshot)
    history.snapshots.sort(key=lambda snap: (snap.timestamp, snap.revision))
    return history


@dataclass
class GateFailure:
    """One snapshot that dropped beyond the gate with no explanation."""

    snapshot: Snapshot
    previous: Snapshot
    drop: float

    def describe(self) -> str:
        culprits = movers(self.previous, self.snapshot)
        blame = ("; movers: " + ", ".join(m.describe() for m in culprits[:3])
                 if culprits else "")
        return (f"{self.snapshot.revision} [{self.snapshot.scale}]: geomean "
                f"{self.previous.geomean:.2f}x -> {self.snapshot.geomean:.2f}x "
                f"({-self.drop:.0%}) with no 'notes' explanation{blame}")


def gate_history(history: BenchHistory,
                 max_drop: float = DEFAULT_GATE_DROP) -> List[GateFailure]:
    """Unexplained geomean drops along each same-scale snapshot chain.

    A drop is *explained* — and waived — when the slower snapshot carries a
    top-level ``"notes"`` string saying why it was accepted.
    """
    failures: List[GateFailure] = []
    for snapshot in history.snapshots:
        previous = history.predecessor(snapshot)
        if previous is None or snapshot.notes:
            continue
        before, after = previous.geomean, snapshot.geomean
        if before is None or after is None or before <= 0:
            continue
        drop = 1.0 - after / before
        if drop > max_drop:
            failures.append(GateFailure(snapshot=snapshot, previous=previous,
                                        drop=drop))
    return failures


def _trend_rows(history: BenchHistory) -> List[Tuple[Snapshot, str, str]]:
    """(snapshot, delta-vs-predecessor, top-mover) triples in render order."""
    rows: List[Tuple[Snapshot, str, str]] = []
    for snapshot in history.snapshots:
        previous = history.predecessor(snapshot)
        delta = "-"
        top = "-"
        if previous is not None and previous.geomean and snapshot.geomean:
            delta = f"{snapshot.geomean / previous.geomean - 1.0:+.1%}"
            culprits = movers(previous, snapshot)
            if culprits:
                top = culprits[0].describe()
        rows.append((snapshot, delta, top))
    return rows


def render_history(history: BenchHistory,
                   max_drop: float = DEFAULT_GATE_DROP) -> str:
    """The perf trajectory: geomean trend table plus per-rev attribution."""
    from repro.analysis.report import format_table

    if not history.snapshots:
        return (f"(no BENCH_*.json snapshots under {history.directory}; "
                "run python -m repro.bench to create one)")
    if not history.baseline:
        return (f"(no BASELINE.json under {history.directory}; the history "
                "needs the baseline as its common denominator)")

    rows: List[List[object]] = []
    for snapshot, delta, top in _trend_rows(history):
        geomean = snapshot.geomean
        rows.append([
            snapshot.revision,
            snapshot.timestamp[:10] or "?",
            snapshot.scale,
            f"{geomean:.2f}x" if geomean is not None else "-",
            delta,
            top,
        ])
    sections = [format_table(
        ["rev", "date", "scale", "geomean", "vs prev", "top mover"],
        rows,
        title=(f"Perf trajectory — {len(history.snapshots)} snapshots vs "
               f"baseline {history.baseline_revision} "
               f"({history.directory})"),
    )]

    attribution: List[str] = []
    for snapshot in history.snapshots:
        previous = history.predecessor(snapshot)
        if previous is None:
            continue
        culprits = movers(previous, snapshot)
        if culprits:
            attribution.append(f"{previous.revision} -> {snapshot.revision} "
                               f"[{snapshot.scale}]:")
            attribution.extend(f"  {mover.describe()}" for mover in culprits)
    if attribution:
        sections.append("Workload attribution (moves > "
                        f"{MOVER_THRESHOLD:.0%} between consecutive "
                        "same-scale snapshots):\n" + "\n".join(attribution))

    failures = gate_history(history, max_drop=max_drop)
    if failures:
        sections.append("GATE FAILURES (unexplained geomean drop > "
                        f"{max_drop:.0%}):\n"
                        + "\n".join(f"  {f.describe()}" for f in failures))
    else:
        sections.append(f"gate: ok (no unexplained geomean drop > "
                        f"{max_drop:.0%} along any same-scale chain)")
    return "\n\n".join(sections)
