"""The unified experiment-session API.

One declarative way to run any update-acknowledgment experiment::

    from repro.session import SessionSpec
    from repro.experiments.common import migration_session, EndToEndParams

    spec = migration_session("general", EndToEndParams.quick())
    record = spec.run()                    # -> RunRecord
    print(record.dropped_packets, record.digest())

* :class:`SessionSpec` — topology provider + :class:`Workload` + plan
  builder + technique + :class:`StackSpec`/:class:`SessionKnobs`;
* :class:`RunRecord` — the single result schema every run path produces,
  with one canonical serializer (``as_dict``/``from_dict`` round-trip), a
  flat ``summary()`` for campaign files, and a stable ``digest()``;
* :func:`build_control_stack` — the controller/RUM wiring, driven by the
  technique registry of :mod:`repro.core.techniques.registry`.

The pre-existing entry points (``run_path_migration``, ``run_rule_install``,
``repro.scenarios.engine.run_scenario``, campaign cells, bench workloads)
are thin adapters over this API.
"""

from repro.session.engine import run_session
from repro.session.record import RECORD_SCHEMA, SUMMARY_KEYS, RunRecord
from repro.session.spec import (
    ActivationProbe,
    SessionKnobs,
    SessionSpec,
    StackSpec,
    Workload,
)
from repro.session.stack import ControlStack, build_control_stack

__all__ = [
    "ActivationProbe",
    "ControlStack",
    "RECORD_SCHEMA",
    "RunRecord",
    "SUMMARY_KEYS",
    "SessionKnobs",
    "SessionSpec",
    "StackSpec",
    "Workload",
    "build_control_stack",
    "run_session",
]
