"""The typed experiment-session specification.

A :class:`SessionSpec` is the one declarative description of "run this
update workload against this topology with this acknowledgment technique and
measure it": topology provider + :class:`Workload` + plan builder +
technique + :class:`StackSpec`/:class:`SessionKnobs`.  ``SessionSpec.run()``
executes it through the single engine in :mod:`repro.session.engine` and
returns a :class:`~repro.session.record.RunRecord`.

The historical entry points — ``run_path_migration``, ``run_rule_install``,
``repro.scenarios.engine.run_scenario`` and the campaign runner — are thin
adapters that build one of these specs, so a new technique or workload
registered once is immediately runnable from every path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.controller.update_plan import UpdatePlan
from repro.core.techniques.registry import RegisteredTechnique, resolve_technique
from repro.faults.plan import FaultPlan
from repro.net.network import Network
from repro.recovery.policy import RecoveryPolicy
from repro.net.topology import Topology
from repro.net.traffic import FlowSpec

#: Builds the topology the session runs on.
TopologyProvider = Callable[[], Topology]
#: Produces the application flows given the built network.
FlowProvider = Callable[[Network], List[FlowSpec]]
#: Installs pre-update forwarding state.
Preinstaller = Callable[[Network, List[FlowSpec]], None]
#: Builds the dependency-ordered update the controller executes.
PlanBuilder = Callable[[Network, List[FlowSpec]], UpdatePlan]
#: Returns what marks a delivery as "new path": one switch name for all
#: flows, a per-flow mapping, or ``None``/empty to skip flow statistics.
MarkerProvider = Callable[[Network, List[FlowSpec]], Union[str, Mapping[str, str], None]]
#: Extracts workload-specific metrics from the finished run.
MetricsHook = Callable[[Network, UpdatePlan, object], Dict[str, object]]


@dataclass
class Workload:
    """The traffic and pre-update state side of a session."""

    flows: FlowProvider
    preinstall: Optional[Preinstaller] = None
    #: Whether a constant-rate traffic generator drives the flows (the
    #: rule-install benchmark runs without data-plane traffic).
    traffic: bool = True
    markers: Optional[MarkerProvider] = None
    #: Count dropped packets network-wide (scenario engine behaviour) instead
    #: of over the tracked flows only (path-migration behaviour).
    dropped_from_monitor: bool = False


@dataclass
class StackSpec:
    """How the control stack above the switches is assembled."""

    rum_overrides: Dict[str, object] = field(default_factory=dict)
    with_barrier_layer: bool = False
    buffer_after_barrier: bool = False


@dataclass
class SessionKnobs:
    """Timing and windowing knobs shared by every session kind."""

    seed: int = 7
    #: Seconds of simulation (traffic warm-up) before the update starts.
    warmup: float = 0.0
    #: Seconds of traffic kept running after the update finishes.
    grace: float = 0.0
    #: Trailing simulation time after traffic stops (or, for traffic-less
    #: sessions, after the update loop ends) so in-flight events settle.
    settle: float = 0.05
    #: Granularity of the executor-completion polling loop.
    poll_interval: float = 0.1
    #: Stop waiting for the update after this many simulated seconds.
    max_update_duration: float = 15.0
    #: When set, run for exactly this many simulated seconds after the update
    #: starts instead of polling for plan completion — for workloads measured
    #: over a fixed observation window (the Figure 2 firewall bypass).
    run_for: Optional[float] = None
    #: Bound K on unconfirmed modifications.
    max_unconfirmed: int = 16
    #: Controller barrier frequency when a reliable barrier layer is stacked.
    barrier_every: int = 10
    #: Nominal per-flow packet rate (sets the expected inter-packet gap used
    #: to turn delivery gaps into broken time).
    rate_pps: float = 250.0
    #: Controller-side recovery policy (retransmits + crash resync); ``None``
    #: keeps the pre-recovery code paths byte-identical.  See
    #: :mod:`repro.recovery`.
    recovery: Optional["RecoveryPolicy"] = None
    #: Arm the sim-profiler for this run: the engine installs a collecting
    #: :class:`~repro.obs.profiler.Profiler` on the kernel's event-observer
    #: hook and the record carries the resulting
    #: :class:`~repro.obs.profiler.ProfileReport`.  Profiling only observes
    #: — profiled and unprofiled runs of the same spec produce identical
    #: digests.
    profile: bool = False


@dataclass
class ActivationProbe:
    """Which rules to correlate data-plane vs control-plane activation for."""

    switch: str
    #: Restrict to plan operations with this role (``None``: every operation
    #: on :attr:`switch`).
    role: Optional[str] = None

    def xids(self, plan: UpdatePlan) -> List[int]:
        """The FlowMod xids of the operations this probe covers."""
        operations = (plan.by_role(self.role) if self.role
                      else plan.operations.values())
        return [op.flowmod.xid for op in operations if op.switch == self.switch]


@dataclass
class SessionSpec:
    """One declarative experiment session; run it with :meth:`run`."""

    technique: Union[str, RegisteredTechnique]
    topology: TopologyProvider
    workload: Workload
    plan_builder: PlanBuilder
    stack: StackSpec = field(default_factory=StackSpec)
    knobs: SessionKnobs = field(default_factory=SessionKnobs)
    #: Faults armed against the network for this run (``None`` or an empty
    #: plan: the byte-identical fault-free path).  See :mod:`repro.faults`.
    faults: Optional[FaultPlan] = None
    activation_probe: Optional[ActivationProbe] = None
    metrics: Optional[MetricsHook] = None
    #: Arm rule-lifecycle tracing for this run: the engine installs a
    #: collecting tracer and the record carries the resulting
    #: :class:`~repro.obs.events.TraceLog`.  Tracing only observes — traced
    #: and untraced runs of the same spec produce identical digests.
    trace: bool = False
    #: Session kind recorded on the result (``"path-migration"``, ...).
    kind: str = "session"
    #: Extra labels merged into the record (``scenario``, ``scale``, ...).
    labels: Dict[str, object] = field(default_factory=dict)

    def resolved_technique(self) -> RegisteredTechnique:
        """The registry entry for :attr:`technique`."""
        return resolve_technique(self.technique)

    def config(self) -> Dict[str, object]:
        """Canonical JSON-able encoding of the spec (record provenance).

        Callables (topology/workload/plan builders) are code, not data, so
        the encoding carries the declarative parts: kind, technique, labels,
        stack and knobs.  Adapters put their own reconstruction parameters
        into :attr:`labels`.
        """
        config: Dict[str, object] = {
            "kind": self.kind,
            "technique": self.resolved_technique().name,
            "labels": dict(self.labels),
            "stack": {
                "rum_overrides": {key: _jsonable(value)
                                  for key, value in self.stack.rum_overrides.items()},
                "with_barrier_layer": self.stack.with_barrier_layer,
                "buffer_after_barrier": self.stack.buffer_after_barrier,
            },
            "knobs": self._knobs_config(),
            # An empty plan normalises to None: both mean the fault-free path.
            "faults": (self.faults.as_dict()  # repro: noqa(RL005): faults predates only-when-armed; dropping the None key would orphan every persisted campaign resume config
                       if self.faults is not None and not self.faults.empty()
                       else None),
        }
        # Key present only when armed, so trace-off configs stay byte-identical
        # to configs produced before tracing existed (same pattern as faults).
        if self.trace:
            config["trace"] = True
        return config

    def _knobs_config(self) -> Dict[str, object]:
        """JSON form of the knobs; optional keys exist only when armed.

        An absent recovery policy and a disabled one are both "no recovery",
        and a ``profile: False`` knob is "no profiler": omitting both keys
        keeps knob encodings byte-identical to configs produced before those
        subsystems existed.
        """
        knobs = asdict(self.knobs)
        if knobs.get("recovery") is None:
            knobs.pop("recovery", None)
        if not knobs.get("profile"):
            knobs.pop("profile", None)
        return knobs

    def run(self):
        """Execute the session; returns a :class:`~repro.session.record.RunRecord`."""
        from repro.session.engine import run_session

        return run_session(self)


def _jsonable(value: object) -> object:
    """JSON-safe encoding of a RUM override value (enums become strings)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
