"""The one experiment-session engine.

Every run path of the repro — the fig*/table1 experiment scripts, the
scenario engine, ``python -m repro.campaign`` and ``python -m repro.bench``
— executes through :func:`run_session`.  The sequence of simulation-visible
steps is the exact superset of what the three historical engines did, in the
same order, so for a fixed seed the results (and their digests) are
byte-identical with the pre-session code:

1. build topology and network, create flows, preinstall forwarding state;
2. wire the control stack (RUM proxy chain unless the technique is null);
3. start the network, the stack, and — if the workload has traffic — a
   seeded constant-rate traffic generator;
4. build the update plan, execute it through a windowed
   :class:`~repro.controller.update_plan.PlanExecutor`, polling until the
   plan completes or the deadline passes;
5. let traffic drain through the grace window, then settle;
6. post-process: per-flow update statistics, activation-delay correlation,
   workload metrics — all into one :class:`~repro.session.record.RunRecord`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.activation import ActivationDelays, activation_delays
from repro.analysis.flowstats import (
    flow_update_stats,
    mean_update_time,
    total_dropped,
    update_completion_time,
)
from repro.controller.update_plan import PlanExecutor
from repro.faults.plan import ArmedFaults, arm_fault_plan
from repro.net.network import Network
from repro.net.traffic import TrafficGenerator
from repro.obs import profiler as obs_profiler
from repro.obs.profiler import Profiler, install_profiler, uninstall_profiler
from repro.obs.tracer import Tracer, install_tracer, uninstall_tracer
from repro.recovery.manager import RecoveryManager
from repro.session.record import RunRecord
from repro.session.spec import SessionSpec
from repro.session.stack import build_control_stack
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRandom

#: Sampling period of the metrics probe in traced runs (simulated seconds).
#: Fine enough to resolve per-rule queues at the default control latencies,
#: coarse enough that a traced session stays a few hundred samples.
_TRACE_SAMPLE_INTERVAL = 0.01


def run_session(spec: SessionSpec) -> RunRecord:
    """Execute one :class:`SessionSpec` and return its :class:`RunRecord`.

    When :attr:`~repro.session.spec.SessionSpec.trace` is set, a collecting
    tracer is installed for the duration of the run and the resulting
    :class:`~repro.obs.events.TraceLog` rides on the record.  When
    :attr:`~repro.session.spec.SessionKnobs.profile` is set, a collecting
    :class:`~repro.obs.profiler.Profiler` is installed the same way and the
    record carries its :class:`~repro.obs.profiler.ProfileReport`.  Both
    only *observe* — every instrumentation site is read-only and the
    periodic metrics probe mutates no simulation state — so a traced or
    profiled run computes the same outcome (and digest) as the identical
    bare run.
    """
    tracer: Optional[Tracer] = None
    profiler: Optional[Profiler] = None
    try:
        if spec.trace:
            tracer = install_tracer(Tracer(
                technique=spec.resolved_technique().name,
                kind=spec.kind,
                seed=spec.knobs.seed,
            ))
        if spec.knobs.profile:
            profiler = install_profiler(Profiler(
                technique=spec.resolved_technique().name,
                kind=spec.kind,
                seed=spec.knobs.seed,
            ))
        return _run_session(spec, tracer=tracer, profiler=profiler)
    finally:
        if profiler is not None:
            uninstall_profiler()
        if tracer is not None:
            uninstall_tracer()


def _metrics_probe(tracer: Tracer, sim: Simulator, network: Network,
                   stack) -> None:
    """One reading of the sampled gauges (runs on the simulated clock)."""
    now = sim.now
    tracer.gauge("controller.pending_acks", now,
                 float(stack.controller.pending_acks()))
    if stack.rum is not None:
        tracer.gauge("rum.unconfirmed", now,
                     float(stack.rum.unconfirmed_count()))
    switches = network.switches.values()
    tracer.gauge("switch.pending_dataplane_ops", now,
                 float(sum(sw.controlplane.pending_dataplane_ops
                           for sw in switches)))
    tracer.gauge("dataplane.occupancy", now,
                 float(sum(sw.dataplane.occupancy() for sw in switches)))
    tracer.gauge("net.dropped_packets", now,
                 float(network.monitor.total_dropped()))
    tracer.gauge("kernel.pending_events", now, float(sim.pending_count))


def _run_session(spec: SessionSpec, tracer: Optional[Tracer],
                 profiler: Optional[Profiler] = None) -> RunRecord:
    technique = spec.resolved_technique()
    knobs = spec.knobs
    workload = spec.workload

    # 1. Topology, network, flows, pre-update forwarding state ----------------
    sim = Simulator()
    # The kernel binds its observer locally at each run() entry, so the
    # profiler must tap the event stream before the first sim.run below.
    if profiler is not None:
        profiler.attach(sim)
    pr = obs_profiler.PROFILER
    if pr.active:
        pr.phase("setup")
    rng = SeededRandom(knobs.seed)
    topology = spec.topology()
    network = Network(sim, topology, seed=knobs.seed)
    flows = workload.flows(network)
    if workload.preinstall is not None:
        workload.preinstall(network, flows)

    # 2. Control stack ---------------------------------------------------------
    stack = build_control_stack(
        sim,
        network,
        technique,
        rum_config=technique.rum_config(**spec.stack.rum_overrides),
        with_barrier_layer=spec.stack.with_barrier_layer,
        buffer_after_barrier=spec.stack.buffer_after_barrier,
    )
    stack.prepare()
    network.start()
    stack.start()

    # Metrics sampling on the simulated clock (traced runs only).  The probe
    # only reads state, so it cannot perturb the run; it must be cancelled
    # before the record is built or an unbounded run would never drain.
    probe = None
    if tracer is not None:
        probe = sim.every(
            _TRACE_SAMPLE_INTERVAL,
            lambda: _metrics_probe(tracer, sim, network, stack),
        )

    # 2b. Fault plan -----------------------------------------------------------
    # Arms nothing when the spec carries no (or an empty) plan, keeping the
    # fault-free event sequence — and therefore every digest — byte-identical.
    armed: Optional[ArmedFaults] = None
    if spec.faults is not None and not spec.faults.empty():
        armed = arm_fault_plan(sim, network, spec.faults, default_seed=knobs.seed)

    # 2c. Recovery ---------------------------------------------------------------
    # Only an *active* policy constructs a manager; with ``recovery`` unset
    # (or disabled) the controller's ``recovery`` attribute stays ``None``
    # and every send/ack path is byte-identical to the pre-recovery code.
    recovery: Optional[RecoveryManager] = None
    if knobs.recovery is not None and knobs.recovery.active:
        recovery = RecoveryManager(sim, stack.controller, network,
                                   policy=knobs.recovery)
        recovery.attach()
        if stack.rum is not None:
            # A crash also wipes RUM's deployment rules (probe catches);
            # without them back a restored neighbourhood cannot confirm
            # anything, so re-seed them before the shadow replay runs.
            stack.controller.reconnect_handlers.append(
                stack.rum.reinstall_deployment)

    # 3. Traffic ----------------------------------------------------------------
    traffic: Optional[TrafficGenerator] = None
    if workload.traffic and flows:
        traffic = TrafficGenerator(sim, flows, rng=rng.fork("traffic"))
        traffic.start()

    # 4. Update plan -------------------------------------------------------------
    if pr.active:
        pr.phase("update")
    plan = spec.plan_builder(network, flows)
    executor = PlanExecutor(
        sim,
        stack.controller,
        plan,
        max_unconfirmed=knobs.max_unconfirmed,
        barrier_every=knobs.barrier_every,
        ignore_dependencies=technique.ignore_dependencies,
    )
    if knobs.warmup > 0:
        sim.run(until=knobs.warmup)
    executor.start()
    if knobs.run_for is not None:
        # Fixed observation window: the workload is measured over wall time,
        # not until the plan completes.
        sim.run(until=knobs.warmup + knobs.run_for)
    else:
        deadline = knobs.warmup + knobs.max_update_duration
        while not executor.done.triggered and sim.now < deadline:
            sim.run(until=min(sim.now + knobs.poll_interval, deadline))
    completed = executor.done.triggered

    # 5. Grace window / settling -------------------------------------------------
    if pr.active:
        pr.phase("drain")
    if traffic is not None:
        stop_at = sim.now + knobs.grace
        traffic.stop_all(stop_at)
        sim.run(until=stop_at + knobs.settle)
    else:
        sim.run(until=sim.now + knobs.settle)

    if probe is not None:
        probe.cancel()

    # 6. Post-processing -----------------------------------------------------------
    if pr.active:
        pr.phase("analyze")
    markers = workload.markers(network, flows) if workload.markers else None
    stats = []
    if markers:
        stats = flow_update_stats(
            network.monitor,
            new_path_switch=markers,
            update_start=knobs.warmup,
            expected_interval=1.0 / knobs.rate_pps,
        )
    dropped = (network.monitor.total_dropped() if workload.dropped_from_monitor
               else total_dropped(stats))

    activation: Optional[ActivationDelays] = None
    probe = spec.activation_probe
    if probe is not None and stack.rum is not None:
        activation = activation_delays(
            network.switch(probe.switch),
            stack.rum.confirmation_times(probe.switch),
            technique=technique.name,
            xids=probe.xids(plan),
        )

    metrics = spec.metrics(network, plan, executor) if spec.metrics else {}
    acknowledged = sum(1 for op in plan.operations.values() if op.acked)
    duration = executor.duration
    rum_technique = stack.rum.technique if stack.rum is not None else None

    labels = dict(spec.labels)
    record = RunRecord(
        kind=spec.kind,
        technique=technique.name,
        spec=spec.config(),
        scenario=labels.get("scenario"),
        topology=topology.name,
        seed=knobs.seed,
        scale=labels.get("scale"),
        update_start=knobs.warmup,
        update_duration=duration,
        completed=completed,
        flows_run=len(flows),
        plan_size=len(plan),
        acknowledged_rules=acknowledged,
        usable_rate=(acknowledged / duration) if duration else None,
        dropped_packets=dropped,
        mean_update_time=mean_update_time(stats),
        completion_time=update_completion_time(stats),
        stats=stats,
        activation=activation,
        metrics=metrics,
        rum_description=(stack.rum.describe() if stack.rum is not None
                         else technique.name),
        barrier_layer_held=(stack.barrier_layer.barriers_held
                            if stack.barrier_layer else 0),
        rum_probe_rule_updates=getattr(rum_technique, "probe_rule_updates_sent", 0),
        rum_probes_injected=getattr(rum_technique, "probes_injected", 0),
        fault_events=armed.counters() if armed is not None else {},
        recovery=recovery.report() if recovery is not None else {},
    )
    if tracer is not None:
        record.trace = tracer.finish(meta={
            "topology": topology.name,
            "faults": (spec.faults.to_string()
                       if spec.faults is not None else "none"),
            "kernel": sim.stats(),
        })
    if profiler is not None:
        record.profile = profiler.finish(meta={
            "topology": topology.name,
            "kernel": sim.stats(),
        })
    return record
