"""Control-stack wiring shared by every session.

Moved here from ``repro.experiments.common`` (which still re-exports both
names): the session engine is the one place that builds controller + proxy
chains now, and the technique registry — not string comparisons against a
``NO_WAIT`` sentinel — decides whether a RUM proxy is interposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.controller.base import AckMode, Controller
from repro.core.barrier_layer import ReliableBarrierLayer
from repro.core.config import RumConfig
from repro.core.rum import RumLayer
from repro.core.techniques.registry import RegisteredTechnique, resolve_technique
from repro.net.network import Network
from repro.core.proxy import chain_proxies
from repro.sim.kernel import Simulator


@dataclass
class ControlStack:
    """The RUM proxy chain and controller attached to a network's switches."""

    controller: Controller
    rum: Optional[RumLayer] = None
    barrier_layer: Optional[ReliableBarrierLayer] = None

    def prepare(self) -> None:
        """Pre-start setup (probe catch rules etc.); call before the network starts."""
        if self.rum is not None:
            self.rum.prepare()

    def start(self) -> None:
        """Start the proxy processes; call after the network has started."""
        if self.rum is not None:
            self.rum.start()


def build_control_stack(
    sim: Simulator,
    network: Network,
    technique: Union[str, RegisteredTechnique],
    *,
    rum_config: Optional[RumConfig] = None,
    with_barrier_layer: bool = False,
    buffer_after_barrier: bool = False,
) -> ControlStack:
    """Wire a controller — and, if the technique uses RUM, a proxy chain —
    onto every switch of ``network``.

    ``technique`` is a registry name or a :class:`RegisteredTechnique`; null
    techniques (``no-wait``) get a direct controller-to-switch connection
    with :data:`AckMode.NONE`.  Returns the stack with the controller already
    connected to all switches; the caller is responsible for calling
    :meth:`ControlStack.prepare` before and :meth:`ControlStack.start` after
    ``network.start()``.
    """
    entry = resolve_technique(technique)
    rum: Optional[RumLayer] = None
    barrier_layer: Optional[ReliableBarrierLayer] = None
    if entry.uses_rum:
        rum = RumLayer(sim, rum_config or entry.rum_config())
        layers = [rum]
        if with_barrier_layer:
            barrier_layer = ReliableBarrierLayer(
                sim, buffer_after_barrier=buffer_after_barrier
            )
            layers.append(barrier_layer)
        endpoints = chain_proxies(network, layers)
        ack_mode = AckMode.BARRIER if with_barrier_layer else AckMode.RUM_CONFIRMATION
    else:
        endpoints = {name: network.controller_endpoint(name)
                     for name in network.switch_names()}
        ack_mode = AckMode.NONE
    controller = Controller(sim, ack_mode=ack_mode)
    for switch_name, endpoint in endpoints.items():
        controller.connect_switch(switch_name, endpoint)
    return ControlStack(controller=controller, rum=rum, barrier_layer=barrier_layer)
