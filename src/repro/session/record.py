"""The unified result schema of experiment sessions.

:class:`RunRecord` supersedes the three result dataclasses the repo grew in
its first PRs — ``EndToEndResult`` (path migration), ``RuleInstallResult``
(the Section 5.2 benchmark) and ``ScenarioRunResult`` (the scenario engine)
— plus the ad-hoc dict records the campaign runner flattened out of them.
One schema means one serializer: :meth:`RunRecord.as_dict` is the canonical
JSON form (it round-trips exactly through :meth:`RunRecord.from_dict`),
:meth:`RunRecord.summary` is the flat view stored in campaign JSONL files
and rendered by the report tables, and :meth:`RunRecord.digest` is the
stable content hash the benchmark suite pins for determinism checks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.activation import ActivationDelays
from repro.analysis.flowstats import FlowUpdateStats
from repro.obs.events import TraceLog
from repro.obs.profiler import ProfileReport

#: Schema version stamped into serialized records.
RECORD_SCHEMA = 1

#: Payload keys excluded from :func:`outcome_digest` (and therefore from
#: :meth:`RunRecord.digest`).  ``spec`` is provenance; the rest are the
#: armed-only keys — serialized only when their subsystem ran, and
#: *observations* of the run rather than its outcome — so an armed run stays
#: digest-comparable with its disarmed twin and with records produced before
#: the subsystem existed.  The run store's ``verify`` recomputes digests
#: through this same constant; lint rule RL009 insists every conditionally
#: serialized field lands here, so the next armed-only field cannot silently
#: skew digests.
DIGEST_EXCLUDED_KEYS = ("spec", "fault_events", "recovery", "trace", "profile")

#: The flat keys every :meth:`RunRecord.summary` contains — what campaign
#: result files store per cell and what the report tables read.
SUMMARY_KEYS = (
    "kind",
    "scenario",
    "technique",
    "topology",
    "scale",
    "seed",
    "flows",
    "plan_size",
    "update_duration",
    "completed",
    "dropped_packets",
    "mean_update_time",
    "completion_time",
    "tracked_flows",
    "max_broken_time",
    "metrics",
    "faults",
    "recovery",
    "digest",
)


def _activation_to_dict(activation: Optional[ActivationDelays]) -> Optional[Dict]:
    if activation is None:
        return None
    return {
        "technique": activation.technique,
        "per_rule": {
            str(xid): list(values) for xid, values in activation.per_rule.items()
        },
    }


def _activation_from_dict(payload: Optional[Dict]) -> Optional[ActivationDelays]:
    if payload is None:
        return None
    return ActivationDelays(
        technique=payload.get("technique", ""),
        per_rule={
            int(xid): tuple(values)
            for xid, values in (payload.get("per_rule") or {}).items()
        },
    )


@dataclass
class RunRecord:
    """Everything one experiment session produced.

    Fields that a particular session kind does not measure keep their
    neutral defaults (``rule-install`` sessions have no flow stats; pure
    migration sessions have no usable-rate), so every consumer reads one
    schema instead of three.
    """

    #: Session kind: ``"path-migration"``, ``"rule-install"``, ``"scenario"``.
    kind: str = "session"
    technique: str = ""
    #: Canonical JSON encoding of the :class:`~repro.session.spec.SessionSpec`
    #: that produced this record (provenance; stored in campaign files).
    spec: Dict[str, object] = field(default_factory=dict)
    #: Scenario registry name for scenario sessions, ``None`` otherwise.
    scenario: Optional[str] = None
    topology: str = ""
    seed: int = 0
    scale: Optional[int] = None

    #: Simulated time at which the update plan was started.
    update_start: float = 0.0
    #: Wall (simulated) duration of the update plan, ``None`` if never done.
    update_duration: Optional[float] = None
    #: Whether the plan finished within its deadline (it may still have
    #: completed later, during the grace window; ``update_duration`` then
    #: records the actual time).
    completed: bool = True

    flows_run: int = 0
    plan_size: int = 0
    #: Plan operations acknowledged by the end of the run.
    acknowledged_rules: int = 0
    #: Acknowledged operations per second of update duration (Table 1).
    usable_rate: Optional[float] = None

    dropped_packets: int = 0
    mean_update_time: Optional[float] = None
    completion_time: Optional[float] = None
    stats: List[FlowUpdateStats] = field(default_factory=list)
    activation: Optional[ActivationDelays] = None
    #: Scenario- or workload-specific numbers (JSON-able values only).
    metrics: Dict[str, object] = field(default_factory=dict)

    rum_description: str = ""
    barrier_layer_held: int = 0
    rum_probe_rule_updates: int = 0
    rum_probes_injected: int = 0
    #: ``"<fault>.<event>" -> count`` of injected-fault activations, summed
    #: over target switches (empty for fault-free runs).
    fault_events: Dict[str, int] = field(default_factory=dict)
    #: Convergence accounting of the recovery subsystem
    #: (:meth:`repro.recovery.manager.RecoveryManager.report`); empty when
    #: the session armed no recovery manager.
    recovery: Dict[str, object] = field(default_factory=dict)
    #: Rule-lifecycle trace collected when the spec armed tracing
    #: (``None`` otherwise); see :mod:`repro.obs`.
    trace: Optional[TraceLog] = None
    #: Per-callback/per-phase attribution collected when the knobs armed
    #: profiling (``None`` otherwise); see :mod:`repro.obs.profiler`.
    profile: Optional[ProfileReport] = None

    # -- legacy accessors (pre-session result classes) -----------------------
    @property
    def duration(self) -> Optional[float]:
        """Alias of :attr:`update_duration` (``RuleInstallResult`` name)."""
        return self.update_duration

    def update_pairs(self) -> List[Tuple[Optional[float], Optional[float]]]:
        """``(last old-path, first new-path)`` pairs, per flow (Figure 6/7 axes)."""
        return [(entry.last_old_path, entry.first_new_path) for entry in self.stats]

    def broken_times(self) -> List[float]:
        """Per-flow broken times (Figure 1b input)."""
        return [entry.broken_time for entry in self.stats]

    @property
    def max_broken_time(self) -> float:
        """Longest per-flow outage observed during the update."""
        return max(self.broken_times(), default=0.0)

    # -- the one serializer ---------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form; :meth:`from_dict` round-trips it exactly.

        ``fault_events`` is only present when faults actually fired: keeping
        the key out of fault-free payloads keeps their :meth:`digest` values
        identical to records produced before the fault subsystem existed.
        """
        payload = {
            "schema": RECORD_SCHEMA,
            "kind": self.kind,
            "technique": self.technique,
            "spec": dict(self.spec),
            "scenario": self.scenario,
            "topology": self.topology,
            "seed": self.seed,
            "scale": self.scale,
            "update_start": self.update_start,
            "update_duration": self.update_duration,
            "completed": self.completed,
            "flows_run": self.flows_run,
            "plan_size": self.plan_size,
            "acknowledged_rules": self.acknowledged_rules,
            "usable_rate": self.usable_rate,
            "dropped_packets": self.dropped_packets,
            "mean_update_time": self.mean_update_time,
            "completion_time": self.completion_time,
            "stats": [asdict(entry) for entry in self.stats],
            "activation": _activation_to_dict(self.activation),
            "metrics": dict(self.metrics),
            "rum_description": self.rum_description,
            "barrier_layer_held": self.barrier_layer_held,
            "rum_probe_rule_updates": self.rum_probe_rule_updates,
            "rum_probes_injected": self.rum_probes_injected,
        }
        if self.fault_events:
            payload["fault_events"] = dict(self.fault_events)
        # Same pattern: the key exists only when a recovery manager ran, so
        # recovery-off payloads (and digests) match pre-recovery records.
        if self.recovery:
            payload["recovery"] = dict(self.recovery)
        # Like fault_events: only present when tracing was armed, so
        # trace-off payloads stay byte-identical to pre-tracing records.
        if self.trace is not None and self.trace:
            payload["trace"] = self.trace.as_dict()
        # And when profiling was armed, so profile-off payloads stay
        # byte-identical to pre-profiler records.
        if self.profile is not None and self.profile:
            payload["profile"] = self.profile.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        """Rebuild a record from :meth:`as_dict` output (or a JSON round trip)."""
        schema = payload.get("schema", RECORD_SCHEMA)
        if schema != RECORD_SCHEMA:
            raise ValueError(
                f"record schema {schema!r} is not supported "
                f"(this build reads schema {RECORD_SCHEMA})"
            )
        return cls(
            kind=payload.get("kind", "session"),
            technique=payload.get("technique", ""),
            spec=dict(payload.get("spec") or {}),
            scenario=payload.get("scenario"),
            topology=payload.get("topology", ""),
            seed=payload.get("seed", 0),
            scale=payload.get("scale"),
            update_start=payload.get("update_start", 0.0),
            update_duration=payload.get("update_duration"),
            completed=payload.get("completed", True),
            flows_run=payload.get("flows_run", 0),
            plan_size=payload.get("plan_size", 0),
            acknowledged_rules=payload.get("acknowledged_rules", 0),
            usable_rate=payload.get("usable_rate"),
            dropped_packets=payload.get("dropped_packets", 0),
            mean_update_time=payload.get("mean_update_time"),
            completion_time=payload.get("completion_time"),
            stats=[FlowUpdateStats(**entry) for entry in payload.get("stats") or []],
            activation=_activation_from_dict(payload.get("activation")),
            metrics=dict(payload.get("metrics") or {}),
            rum_description=payload.get("rum_description", ""),
            barrier_layer_held=payload.get("barrier_layer_held", 0),
            rum_probe_rule_updates=payload.get("rum_probe_rule_updates", 0),
            rum_probes_injected=payload.get("rum_probes_injected", 0),
            fault_events=dict(payload.get("fault_events") or {}),
            recovery=dict(payload.get("recovery") or {}),
            trace=(TraceLog.from_dict(payload["trace"])
                   if payload.get("trace") else None),
            profile=(ProfileReport.from_dict(payload["profile"])
                     if payload.get("profile") else None),
        )

    def summary(self) -> Dict[str, object]:
        """Flat, bounded-size view (campaign result files, report tables).

        Keys are :data:`SUMMARY_KEYS`; unlike :meth:`as_dict` this drops the
        per-flow and per-rule detail, so one campaign cell is one short JSON
        line no matter how many flows the cell ran.
        """
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "technique": self.technique,
            "topology": self.topology,
            "scale": self.scale,
            "seed": self.seed,
            "flows": self.flows_run,
            "plan_size": self.plan_size,
            "update_duration": self.update_duration,
            "completed": self.completed,
            "dropped_packets": self.dropped_packets,
            "mean_update_time": self.mean_update_time,
            "completion_time": self.completion_time,
            "tracked_flows": len(self.stats),
            "max_broken_time": self.max_broken_time,
            "metrics": dict(self.metrics),
            "faults": dict(self.fault_events),
            "recovery": dict(self.recovery),
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """Stable content hash of the simulation-determined outcome.

        Covers what the simulation computed (timings, per-flow stats,
        per-rule activation delays, metrics) but not the
        :data:`DIGEST_EXCLUDED_KEYS` — provenance (:attr:`spec`) and the
        armed-only observation payloads — nor OpenFlow xids (which come from
        a process-global counter), so the same seeded workload produces the
        same digest no matter which entry point built the session or what
        ran before it in the process.
        """
        return outcome_digest(self.as_dict())


def outcome_digest(payload: Dict[str, object]) -> str:
    """The digest of an :meth:`RunRecord.as_dict` payload.

    Module-level so the run store's ``verify`` can recheck stored payloads
    without round-tripping them through :class:`RunRecord`; this is the one
    place the :data:`DIGEST_EXCLUDED_KEYS` are stripped before hashing.
    """
    payload = dict(payload)
    for key in DIGEST_EXCLUDED_KEYS:
        payload.pop(key, None)
    activation = payload.get("activation")
    if activation is not None:
        # Per-rule delays are keyed by process-global xids; hash the sorted
        # delay multiset so the digest is xid-independent.
        payload["activation"] = {
            "technique": activation["technique"],
            "delays": sorted(activation["per_rule"].values()),
        }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:16]
