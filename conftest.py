"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. on offline machines where ``pip install -e .`` cannot build an editable
wheel); the canonical installation path is still ``pip install -e .`` /
``python setup.py develop``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
