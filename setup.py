"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` also works on environments whose setuptools/pip
combination cannot build PEP 660 editable wheels (e.g. offline machines
without the ``wheel`` package) by falling back to the legacy
``setup.py develop`` path::

    pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
