#!/usr/bin/env python3
"""Sweep the sequential-probing overhead trade-off (cf. Table 1).

The controller performs a burst of rule modifications on the hardware switch
with a bounded number of unconfirmed modifications (K); RUM updates its probe
rule after every N real modifications.  Larger N amortises the probing
overhead (higher usable rate) at the price of coarser, later confirmations —
this script prints both sides of that trade-off, plus the general-probing
numbers for comparison.

Run with::

    python examples/probe_overhead_sweep.py [rule_count]
"""

import sys

from repro.analysis.report import format_table
from repro.experiments.common import RuleInstallParams, run_rule_install


def main(rule_count: int = 400) -> None:
    params = RuleInstallParams(rule_count=rule_count, max_unconfirmed=50)
    print(f"installing {rule_count} rules with at most {params.max_unconfirmed} unconfirmed ...")
    barrier = run_rule_install("barrier", params)
    rows = []
    for batch in (1, 2, 5, 10, 20):
        result = run_rule_install(
            "sequential", params.scaled(rum_overrides={"probe_batch": batch})
        )
        summary = result.activation.summary()
        rows.append([
            f"sequential, probe after {batch}",
            f"{result.usable_rate:.0f}",
            f"{100 * result.usable_rate / barrier.usable_rate:.0f}%",
            result.rum_probe_rule_updates,
            f"{summary.p90 * 1000:.0f}",
            result.activation.negative_count,
        ])
    general = run_rule_install("general", params)
    rows.append([
        "general probing",
        f"{general.usable_rate:.0f}",
        f"{100 * general.usable_rate / barrier.usable_rate:.0f}%",
        0,
        f"{general.activation.summary().p90 * 1000:.0f}",
        general.activation.negative_count,
    ])
    rows.append([
        "barriers (unsafe reference)",
        f"{barrier.usable_rate:.0f}",
        "100%",
        0,
        f"{barrier.activation.summary().p90 * 1000:.0f}",
        barrier.activation.negative_count,
    ])
    print()
    print(format_table(
        ["configuration", "usable rate [mods/s]", "vs barriers",
         "probe rule updates", "p90 ack delay [ms]", "rules acked early"],
        rows,
        title="Probing overhead vs acknowledgment quality (cf. Table 1 / Figure 8)",
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
