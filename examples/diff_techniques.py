#!/usr/bin/env python3
"""Differential run analytics: where exactly do two techniques part ways?

The paper's argument is inherently differential — the same rule update is
safe when acknowledgments are confirmed in the data plane and unsafe when
a timeout merely *assumes* activation.  This example runs the same
``path-migration`` workload under a ``delay-spike`` fault twice — once
with the static-timeout technique (``timeout``), once with RUM's general
probing (``general``) — stores both traced runs in a content-addressed
run store, and diffs them: summary deltas (drops, broken time), per-switch
activation-gap movement, and the **first divergent lifecycle event**,
named with its simulated time, switch and phase.

Equivalent CLI, given two stored runs::

    python -m repro.store --store runstore diff <digestA> <digestB>

Run with::

    python examples/diff_techniques.py
"""

import tempfile
from pathlib import Path

from repro.analysis.diff import diff_runs, render_run_diff
from repro.scenarios import ScenarioParams, run_scenario
from repro.store import RunStore

FAULTS = "delay-spike(probability=0.4)"


def traced_run(technique: str):
    params = ScenarioParams(flow_count=4, seed=7, trace=True, faults=FAULTS,
                            max_update_duration=5.0)
    return run_scenario("path-migration", technique, params)


def main() -> None:
    left = traced_run("timeout")
    right = traced_run("general")

    # Content-addressed storage: each run is keyed by its outcome digest,
    # so re-running this example re-uses (and re-verifies) the same objects.
    store = RunStore(Path(tempfile.mkdtemp(prefix="runstore-")))
    left_digest = store.put_record(left.as_dict())
    right_digest = store.put_record(right.as_dict())
    print(f"stored timeout run  -> {left_digest}")
    print(f"stored general run  -> {right_digest}")
    print(f"store verify        -> {store.verify() or 'clean'}")
    print()

    diff = diff_runs(left.as_dict(), right.as_dict(),
                     left_label="timeout", right_label="general")
    print(render_run_diff(diff))
    print()
    # The one-line verdict: under the delay spike, the timeout technique
    # acks rules the hardware has not activated yet; the first divergence
    # names the switch and phase where the techniques' histories split.
    print(f"verdict: {diff.explain()}")


if __name__ == "__main__":
    main()
