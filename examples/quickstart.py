#!/usr/bin/env python3
"""Quickstart: put RUM between a controller and a buggy hardware switch.

The script builds the paper's triangle topology (two software switches, one
hardware switch whose barrier replies precede data-plane visibility), inserts
the RUM acknowledgment layer configured for general probing, installs a
handful of rules on the hardware switch, and prints — per rule — when the
switch's data plane actually started forwarding packets according to it and
when the controller received RUM's confirmation.  The confirmation is never
early; swap ``general`` for ``barrier`` below to watch the unsafe baseline.

Run with::

    python examples/quickstart.py [technique]
"""

import sys

from repro.analysis.activation import activation_delays
from repro.controller import AckMode, Controller
from repro.core import RumLayer, config_for_technique
from repro.net import Network, triangle_topology
from repro.openflow import FlowMod, Match, OutputAction
from repro.packet.addresses import int_to_ip
from repro.sim import Simulator


def main(technique: str = "general") -> None:
    sim = Simulator()
    network = Network(sim, triangle_topology(), seed=1)

    # RUM transparently interposes on every switch's control channel.
    rum = RumLayer(sim, config_for_technique(technique))
    rum.attach_network(network)

    controller = Controller(sim, ack_mode=AckMode.RUM_CONFIRMATION)
    for switch_name in network.switch_names():
        controller.connect_switch(switch_name, rum.controller_endpoint(switch_name))

    rum.prepare()
    network.start()
    rum.start()

    # Install 30 forwarding rules on the hardware switch S2.
    out_port = network.port_between("S2", "S3")
    flowmods = [
        FlowMod(
            Match(ip_src=int_to_ip(0x0A000001 + index), ip_dst="10.0.128.1"),
            [OutputAction(out_port)],
            priority=100,
        )
        for index in range(30)
    ]
    acks = [controller.send_flowmod("S2", flowmod) for flowmod in flowmods]
    sim.run(until=5.0)

    delays = activation_delays(
        network.switch("S2"), rum.confirmation_times("S2"), technique=technique,
        xids=[flowmod.xid for flowmod in flowmods],
    )
    print(f"technique: {rum.describe()}")
    print(f"acknowledged rules: {sum(1 for ack in acks if ack.acked)}/{len(acks)}")
    print("rule  data-plane active [s]  controller ack [s]  delay [ms]")
    for index, flowmod in enumerate(flowmods):
        applied, acked, delay = delays.per_rule[flowmod.xid]
        print(f"{index:4d}  {applied:20.4f}  {acked:18.4f}  {delay * 1000:10.1f}")
    verdict = "never early" if delays.never_negative else (
        f"EARLY for {delays.negative_count} rules (unsafe!)"
    )
    print(f"\nacknowledgments were {verdict}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "general")
