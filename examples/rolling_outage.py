#!/usr/bin/env python3
"""Recovery quickstart: a rolling crash wave with and without recovery.

A staggered switch-crash wave rolls through pod 0 of a fat-tree — the
shape of a rolling upgrade gone wrong — while a path migration is in
flight.  Every technique runs the same outage twice: once with the
controller-side recovery subsystem armed (shadow-table resync on reconnect
plus retransmission of un-acked FlowMods) and once without.  The resilience
table's `recovered`/`reinstalled` columns then show the headline: with
recovery on, every wiped rule is reinstalled and post-restart packet loss
collapses; with recovery off, restored switches forward nothing ever again.

Equivalent campaign CLI (adds process-level parallelism and resume)::

    python -m repro.campaign run --scenarios rolling-upgrade \
        --techniques barrier,general,no-wait \
        --faults 'rolling(switch-crash(restart_after=0.2)@pod:0,stagger=0.15,at=0.4)' \
        --recovery 'off,on'

Run with::

    python examples/rolling_outage.py
"""

from repro.analysis.report import (
    RESILIENCE_HEADERS,
    correctness_under_fault_rows,
    format_table,
)
from repro.scenarios import ScenarioParams, run_scenario

TECHNIQUES = ("barrier", "general", "no-wait")
RECOVERY_MODES = ("off", "on")


def main() -> None:
    groups = {}
    for technique in TECHNIQUES:
        for recovery in RECOVERY_MODES:
            record = run_scenario(
                "rolling-upgrade", technique,
                ScenarioParams(flow_count=6, seed=7, recovery=recovery))
            label = f"{record.metrics['fault_plan']} +recovery={recovery}"
            groups.setdefault((label, technique), []).append(record.summary())
            report = record.recovery
            print(f"{technique:8s} recovery={recovery:3s} "
                  f"dropped={record.dropped_packets:5d} "
                  f"reinstalled={report.get('rules_reinstalled', 0):3d} "
                  f"reconverged={report.get('reconverged', '-')}")

    print()
    print(format_table(
        RESILIENCE_HEADERS,
        correctness_under_fault_rows(groups),
        title="Rolling pod-0 crash wave — recovery on vs off (seed 7)",
    ))


if __name__ == "__main__":
    main()
