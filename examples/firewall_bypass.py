#!/usr/bin/env python3
"""The Figure 2 motivation scenario: a transient firewall bypass.

Switch B must send HTTP traffic from the untrusted host through a firewall
(rule Z) and everything else directly to the server (rule Y); switch A is
only allowed to start forwarding (rule X) once both B rules are in place.
When B acknowledges rules before its data plane applies them — and rule Z is
additionally hit by one of the multi-second installation corner cases the
paper describes — the controller flips X too early and HTTP packets reach
the server without inspection.  With RUM's data-plane acknowledgments the
flip waits and the hole never opens.

Run with::

    python examples/firewall_bypass.py
"""

from repro.analysis.report import format_table
from repro.experiments.fig2_firewall import run_firewall_once


def main() -> None:
    print("running the firewall update with barrier acknowledgments ...")
    with_barriers = run_firewall_once("barrier", duration=2.5)
    print("running the firewall update with RUM general probing ...")
    with_rum = run_firewall_once("general", duration=2.5)

    rows = []
    for run in (with_barriers, with_rum):
        rows.append([
            run.technique,
            run.bypassed_packets,
            run.violations["http_packets_at_firewall"],
            run.violations["bulk_packets_delivered"],
        ])
    print()
    print(format_table(
        ["acknowledgments", "HTTP packets bypassing firewall",
         "HTTP packets inspected", "bulk packets delivered"],
        rows,
        title="Transient security hole during the update (cf. Figure 2)",
    ))
    print()
    if with_barriers.bypassed_packets and not with_rum.bypassed_packets:
        print("barrier acknowledgments opened a transient hole; RUM kept the policy intact.")
    else:
        print("unexpected outcome - inspect the runs above.")


if __name__ == "__main__":
    main()
