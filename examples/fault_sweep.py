#!/usr/bin/env python3
"""Fault-injection quickstart: sweep ack-loss probability across techniques.

The paper's point is that acknowledgments cannot be trusted; this example
makes that quantitative.  The same migration workload runs under increasing
barrier-ack loss, once per acknowledgment technique, and the resilience
table shows who still completes the update and at what cost: the barrier
technique stalls as soon as acks go missing, while RUM's general probing —
which confirms rules in the data plane, not on the control channel — keeps
finishing with zero loss.

Equivalent campaign CLI (adds processes-level parallelism and resume)::

    python -m repro.campaign run --scenarios fault-sweep \
        --techniques barrier,general,no-wait \
        --faults 'none,ack-loss(probability=0.25),ack-loss(probability=0.75)'

Run with::

    python examples/fault_sweep.py
"""

from repro.analysis.report import (
    RESILIENCE_HEADERS,
    correctness_under_fault_rows,
    format_table,
)
from repro.faults import FaultPlan
from repro.scenarios import ScenarioParams, run_scenario

TECHNIQUES = ("barrier", "general", "no-wait")
ACK_LOSS_PROBABILITIES = (0.0, 0.25, 0.5, 1.0)


def main() -> None:
    groups = {}
    for probability in ACK_LOSS_PROBABILITIES:
        plan = FaultPlan.from_string(
            f"ack-loss(probability={probability})" if probability else "none")
        for technique in TECHNIQUES:
            record = run_scenario(
                "fault-sweep", technique,
                ScenarioParams(flow_count=6, seed=7, max_update_duration=5.0,
                               faults=plan.to_string()))
            groups.setdefault((plan.to_string(), technique), []).append(
                record.summary())
            print(f"ack-loss p={probability:<5} {technique:8s} "
                  f"completed={str(record.completed):5s} "
                  f"dropped={record.dropped_packets:4d} "
                  f"fault_events={sum(record.fault_events.values())}")

    print()
    print(format_table(
        RESILIENCE_HEADERS,
        correctness_under_fault_rows(groups),
        title="Correctness under ack loss (fault-sweep scenario, seed 7)",
    ))


if __name__ == "__main__":
    main()
