#!/usr/bin/env python3
"""Scenario & campaign quickstart.

Runs one scenario directly through the engine, then sweeps a small
(scenario x technique x seed) grid through the parallel campaign runner and
prints the aggregated report.  Equivalent CLI::

    python -m repro.campaign list
    python -m repro.campaign run --scenarios path-migration,link-failure \
        --techniques barrier,general --seeds 1,2 --out /tmp/demo.jsonl

Run with::

    python examples/scenario_campaign.py [results.jsonl]
"""

import sys
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec, render_report
from repro.scenarios import ScenarioParams, available_scenarios, run_scenario


def _fmt(seconds) -> str:
    """Format an optional duration (None when a run missed its deadline)."""
    return f"{seconds:.3f}s" if seconds is not None else "n/a"


def main(results_path: Path) -> None:
    print("registered scenarios:", ", ".join(available_scenarios()))

    print("\n-- single run: path migration on a generated fat-tree --")
    params = ScenarioParams(topology="fat-tree", scale=1, flow_count=8)
    for technique in ("barrier", "general"):
        result = run_scenario("path-migration", technique, params)
        print(f"{technique:8s} duration={_fmt(result.update_duration)} "
              f"dropped={result.dropped_packets} "
              f"mean_update={_fmt(result.mean_update_time)}")

    print("\n-- campaign: 2 scenarios x 2 techniques x 2 seeds --")
    spec = CampaignSpec(
        scenarios=["path-migration", "link-failure"],
        techniques=["barrier", "general"],
        seeds=[1, 2],
        flow_count=6,
    )
    outcome = CampaignRunner(spec, results_path).run(progress=print)
    print(f"\nran {outcome.ran}, skipped {outcome.skipped} "
          f"(re-running this script resumes from {results_path})")
    print()
    print(render_report(results_path))


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else Path("scenario-campaign.jsonl"))
